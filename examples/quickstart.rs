//! Quickstart: build an HPBD deployment, swap pages to remote memory, read
//! them back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the smallest end-to-end tour of the public API: a simulated
//! InfiniBand fabric, one HPBD client + two memory servers, and direct
//! block I/O against the device (no VM on top yet — see the other examples
//! for full paging scenarios).

use hpbd_suite::blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
use hpbd_suite::hpbd::ClusterBuilder;
use hpbd_suite::netmodel::Calibration;
use hpbd_suite::simcore::Engine;
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    // 1. A deterministic event engine and the 2005 testbed calibration.
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());

    // 2. An HPBD deployment: client node + 2 memory servers x 8 MiB.
    let cluster = ClusterBuilder::new()
        .servers(2)
        .per_server_capacity(8 << 20)
        .build(&engine, cal);
    let device = &cluster.client;
    println!(
        "device `{}`: {} MiB across {} memory servers",
        device.name(),
        device.capacity() >> 20,
        device.server_count()
    );

    // 3. Write a page of 0x42s at offset 64 KiB (this is what the kernel's
    //    swap path does with dirty pages).
    let page = new_buffer(4096);
    page.borrow_mut().fill(0x42);
    let wrote = Rc::new(Cell::new(false));
    {
        let wrote = wrote.clone();
        device.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            64 * 1024,
            page,
            move |result| {
                result.expect("write served by the memory server");
                wrote.set(true);
            },
        )));
    }
    engine.run_until_idle();
    assert!(wrote.get());
    println!("swap-out complete at t = {}", engine.now());

    // 4. Read it back (a page fault's swap-in).
    let readback = new_buffer(4096);
    device.submit(IoRequest::single(Bio::new(
        IoOp::Read,
        64 * 1024,
        readback.clone(),
        |result| result.expect("read served"),
    )));
    engine.run_until_idle();
    assert!(readback.borrow().iter().all(|&b| b == 0x42));
    println!("swap-in complete at t = {}", engine.now());

    // 5. What actually happened, per the paper's protocol.
    let client = device.stats();
    let server = cluster.servers[0].stats();
    println!("\nclient: {client:#?}");
    println!("server[0]: {server:#?}");
    println!(
        "\nthe server PULLED the swap-out with RDMA READ ({}) and PUSHED the \
         swap-in with RDMA WRITE ({}) — server-initiated RDMA, paper §4.2.1",
        server.rdma_reads, server.rdma_writes
    );
}
