//! Dynamic cooperative memory — the paper's future work, working.
//!
//! ```text
//! cargo run --release --example dynamic_memory
//! ```
//!
//! A memory server's host decides it wants part of its exported memory
//! back mid-run. It sends a revocation notice; the HPBD client migrates
//! the affected chunks to spare capacity on the other servers, deferring
//! application I/O to those chunks for the migration window — the
//! application never notices beyond a brief stall.

use hpbd_suite::blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
use hpbd_suite::hpbd::{ClusterBuilder, HpbdConfig};
use hpbd_suite::netmodel::Calibration;
use hpbd_suite::simcore::Engine;
use std::rc::Rc;

fn main() {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let config = HpbdConfig {
        chunk_bytes: 256 * 1024,
        spare_chunks: 8,
        ..HpbdConfig::default()
    };
    let cluster = ClusterBuilder::new()
        .config(config)
        .servers(3)
        .per_server_capacity(4 << 20)
        .build(&engine, cal);
    println!("3 memory servers x 4 MiB, 8 spare chunks of 256 KiB each\n");

    // The application stores data across server 0's extent.
    for i in 0..256u64 {
        let buf = new_buffer(4096);
        buf.borrow_mut().fill((i % 199) as u8 + 1);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            i * 4096,
            buf,
            |r| r.unwrap(),
        )));
    }
    engine.run_until_idle();
    println!("t={}: 1 MiB of pages stored on server 0", engine.now());

    // Server 0's host reclaims its first megabyte.
    cluster.servers[0].revoke(0, 1 << 20);
    engine.run_until_idle();
    let stats = cluster.client.stats();
    println!(
        "t={}: revocation handled — {} chunks migrated to spare capacity",
        engine.now(),
        stats.migrations
    );

    // Every page still reads back correctly (now from other servers).
    for i in 0..256u64 {
        let buf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            i * 4096,
            buf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(buf.borrow().iter().all(|&b| b == (i % 199) as u8 + 1));
    }
    println!("t={}: all 256 pages verified after migration", engine.now());
    for (i, s) in cluster.servers.iter().enumerate() {
        let st = s.stats();
        println!(
            "server {i}: requests={} stored={}B served={}B",
            st.requests, st.bytes_in, st.bytes_out
        );
    }
}
