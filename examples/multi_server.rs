//! Multi-server HPBD: distribute the swap area over several memory servers
//! and run two applications concurrently — the paper's Figures 9 and 10
//! territory.
//!
//! ```text
//! cargo run --release --example multi_server
//! ```
//!
//! Shows (a) the blocking (non-striped) distribution of the swap area
//! across server extents, (b) a request that splits at an extent boundary,
//! and (c) two concurrent quicksort instances sharing the dual-CPU client
//! through the task scheduler.

use hpbd_suite::blockdev::BlockDevice;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};

fn main() {
    const MB: u64 = 1 << 20;

    // Two quicksort instances, each 8 MiB, against 8 MiB of local memory
    // and four 5 MiB memory servers (swap sized so the datasets span all
    // four extents of the blocking distribution).
    let config = ScenarioConfig::new(8 * MB, 20 * MB, SwapKind::Hpbd { servers: 4 });
    let scenario = Scenario::build(&config);

    let cluster = scenario.hpbd.as_ref().expect("HPBD scenario");
    println!(
        "swap area: {} MiB over {} servers (blocking distribution, {} MiB extents)\n",
        cluster.client.capacity() >> 20,
        cluster.client.server_count(),
        (cluster.client.capacity() / cluster.client.server_count() as u64) >> 20,
    );

    let elements = 2 << 20; // 8 MiB per instance
    let (a, b, report) = scenario.run_qsort_pair(elements, 7);
    println!("instance A finished at {:>8.3}s", a.as_secs_f64());
    println!("instance B finished at {:>8.3}s", b.as_secs_f64());
    println!(
        "makespan            {:>8.3}s\n",
        report.elapsed.as_secs_f64()
    );

    let stats = cluster.client.stats();
    println!("client driver:");
    println!("  physical requests     {}", stats.phys_requests);
    println!("  extent-split requests {}", stats.split_requests);
    println!("  flow-control stalls   {}", stats.flow_stalls);
    println!("  pool waits            {}", stats.pool_waits);
    for (i, server) in cluster.servers.iter().enumerate() {
        let s = server.stats();
        println!(
            "server {i}: requests={} rdma-reads={} rdma-writes={} wakeups={}",
            s.requests, s.rdma_reads, s.rdma_writes, s.wakeups
        );
    }
    let busy = cluster
        .servers
        .iter()
        .filter(|s| s.stats().requests > 0)
        .count();
    println!(
        "\n{busy}/4 servers saw traffic: swap slots are allocated next-fit through\n\
         the extents of the blocking distribution, and requests crossing an extent\n\
         boundary split into per-server physical requests (paper §4.2.5)."
    );
    assert!(busy >= 3, "the datasets should span most extents");
}
