//! Sort a dataset twice the size of local memory by paging to remote
//! memory servers — the paper's headline scenario (Figure 7) end to end.
//!
//! ```text
//! cargo run --release --example remote_sort
//! ```
//!
//! A quicksort instance runs over [`vmsim`]'s paged memory with only half
//! its dataset's worth of local frames; the overflow lives in the memory
//! of two remote servers reached through HPBD. The same run is repeated on
//! the local disk to show what remote memory buys.

use hpbd_suite::netmodel::Transport;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};

fn main() {
    const MB: u64 = 1 << 20;
    let elements = 4 << 20; // 16 MiB of i32s
    let local_mem = 8 * MB; // half the dataset
    let swap = 32 * MB;

    println!("quicksort: {elements} elements (16 MiB) with 8 MiB local memory\n");

    let mut rows = Vec::new();
    let configs = [
        ("HPBD x2 servers", SwapKind::Hpbd { servers: 2 }),
        (
            "NBD over IPoIB",
            SwapKind::Nbd {
                transport: Transport::IpoIb,
            },
        ),
        ("local disk", SwapKind::Disk),
    ];
    for (name, kind) in configs {
        let scenario = Scenario::build(&ScenarioConfig::new(local_mem, swap, kind));
        let report = scenario.run_qsort(elements, 2005);
        println!(
            "{name:>16}: {:>8.3}s   (swap-outs {}, swap-ins {}, major faults {})",
            report.elapsed.as_secs_f64(),
            report.vm.swap_outs,
            report.vm.swap_ins,
            report.vm.major_faults
        );
        rows.push((name, report.elapsed.as_secs_f64()));
    }

    let hpbd = rows[0].1;
    let disk = rows[2].1;
    println!(
        "\nremote memory over InfiniBand beats disk paging by {:.1}x on this run",
        disk / hpbd
    );
    println!("(the sortedness of every run is verified inside run_qsort)");
}
