//! Run the Barnes-Hut N-body simulation on paged memory over HPBD — the
//! paper's scientific-application scenario (Figure 8).
//!
//! ```text
//! cargo run --release --example barnes_hut
//! ```
//!
//! Unlike quicksort, Barnes-Hut pages lightly: its footprint (bodies +
//! octree) only slightly exceeds local memory, so the choice of swap
//! device moves the runtime much less — exactly the contrast the paper
//! draws between Figures 7 and 8.

use hpbd_suite::workloads::barnes::BarnesParams;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};

fn main() {
    const MB: u64 = 1 << 20;
    let params = BarnesParams {
        bodies: 16384, // ~4.2 MiB of bodies + octree
        iterations: 3,
        seed: 1995, // SPLASH-2's year
        ..BarnesParams::default()
    };
    println!(
        "Barnes-Hut: {} bodies, {} time steps\n",
        params.bodies, params.iterations
    );

    for (name, local_mem, kind) in [
        ("plenty of memory", 64 * MB, SwapKind::LocalOnly),
        ("HPBD, tight memory", 4 * MB, SwapKind::Hpbd { servers: 1 }),
        ("disk, tight memory", 4 * MB, SwapKind::Disk),
    ] {
        let scenario = Scenario::build(&ScenarioConfig::new(local_mem, 64 * MB, kind));
        let report = scenario.run_barnes(params.clone());
        println!(
            "{name:>20}: {:>8.3}s  (swap-outs {}, swap-ins {})",
            report.elapsed.as_secs_f64(),
            report.vm.swap_outs,
            report.vm.swap_ins
        );
    }

    println!(
        "\nBarnes does not perform intensive swapping for its relatively small\n\
         incremental memory usage, so the improvement is less evident (paper §6.3.1)."
    );
}
