//! # hpbd-suite — umbrella crate for the HPBD reproduction
//!
//! Re-exports every crate in the workspace so examples and integration tests
//! can use one dependency. See `README.md` for the tour and `DESIGN.md` for
//! the system inventory.
#![forbid(unsafe_code)]

pub use blockdev;
pub use hpbd;
pub use ibsim;
pub use nbd;
pub use netmodel;
pub use simcore;
pub use simfault;
pub use simtrace;
pub use tcpsim;
pub use vmsim;
pub use workloads;
