//! Differential oracle for the `SwapBackend` redesign: routing vmsim's
//! swap I/O through the `BlockBackend` adapter must reproduce the
//! pre-redesign runs *byte-identically* — virtual time, event count, the
//! full metrics rendering, and the entire trace buffer.
//!
//! The baseline in `tests/data/block_backend_baseline.txt` was blessed at
//! the commit immediately before the trait landed (same scenarios, same
//! seeds, the old `Rc<RequestQueue>` plumbing). Re-bless only when a
//! deliberate, understood change shifts the figures:
//!
//! ```text
//! BLESS_BLOCK_BACKEND=1 cargo test -q --test block_backend_differential
//! ```

use hpbd_suite::simcore::Tracer;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::fmt::Write as _;

const MB: u64 = 1 << 20;
const BASELINE_PATH: &str = "tests/data/block_backend_baseline.txt";

fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf29ce484222325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// One scenario's complete observable fingerprint, rendered as text so a
/// baseline diff is reviewable. The trace buffer is folded to a hash (it
/// runs to megabytes) but over the `Debug` form of every event, so any
/// reordering or attribute drift shows up.
fn fingerprint(
    label: &str,
    config: &ScenarioConfig,
    run: impl Fn(&Scenario) -> RunOutcome,
) -> String {
    let mut config = config.clone();
    let tracer = Tracer::enabled();
    config.tracer = Some(tracer.clone());
    let scenario = Scenario::build(&config);
    let outcome = run(&scenario);
    let events = tracer.snapshot();
    let mut trace_text = String::new();
    for e in &events {
        let _ = writeln!(trace_text, "{e:?}");
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {label} ==");
    let _ = writeln!(out, "elapsed_ns {}", outcome.elapsed_ns);
    let _ = writeln!(out, "engine_events {}", outcome.engine_events);
    let _ = writeln!(out, "trace_events {}", events.len());
    let _ = writeln!(out, "trace_fnv {:#018x}", fnv(trace_text.as_bytes()));
    let _ = writeln!(out, "metrics:");
    out.push_str(&outcome.metrics_text);
    out
}

struct RunOutcome {
    elapsed_ns: u64,
    engine_events: u64,
    metrics_text: String,
}

fn outcome_of(report: &hpbd_suite::workloads::RunReport) -> RunOutcome {
    RunOutcome {
        elapsed_ns: report.elapsed.as_nanos(),
        engine_events: report.events,
        metrics_text: report.metrics.render_text(),
    }
}

/// The two scenarios the issue pins: a fig5-style testswap cell and a
/// fig9-style concurrent-quicksort pair, both on the HPBD block path.
fn render_all() -> String {
    let mut out = String::new();

    // fig5-style: sequential testswap writes through 2 HPBD servers.
    let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
    out.push_str(&fingerprint("fig5-testswap-hpbd2", &config, |s| {
        outcome_of(&s.run_testswap(1_500_000))
    }));

    // fig9-style: two concurrent quicksort instances, batching on, same
    // knobs as the figure harness (window 0 = same-tick coalescing).
    let mut config = ScenarioConfig::new(4 * MB, 32 * MB, SwapKind::Hpbd { servers: 4 });
    config.hpbd.batching = true;
    config.hpbd.merge_window_ns = 0;
    out.push_str(&fingerprint("fig9-qsort-pair-hpbd4", &config, |s| {
        outcome_of(&s.run_qsort_pair(512 * 1024, 1234).2)
    }));

    // disk cell: the block path over the seek-model disk, readahead and
    // elevator merging exercised without the fabric.
    let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Disk);
    out.push_str(&fingerprint("fig5-testswap-disk", &config, |s| {
        outcome_of(&s.run_testswap(1_000_000))
    }));

    out
}

#[test]
fn block_backend_is_byte_identical_to_blessed_baseline() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = manifest.join(BASELINE_PATH);
    let got = render_all();
    if std::env::var_os("BLESS_BLOCK_BACKEND").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), got.len());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); bless it with BLESS_BLOCK_BACKEND=1",
            path.display()
        )
    });
    assert_eq!(
        want, got,
        "BlockBackend run diverged from the pre-redesign baseline"
    );
}
