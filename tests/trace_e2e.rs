//! End-to-end observability tests: a quicksort-over-HPBD scenario traced
//! twice must export byte-identical Chrome trace files, and the exported
//! document must be well-formed Chrome trace-event JSON with spans from
//! every instrumented layer.

use hpbd_suite::simcore::TraceSession;
use hpbd_suite::simtrace::json;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::collections::BTreeSet;

const MB: u64 = 1 << 20;

/// Run a small quicksort over a 2-server HPBD swap device with tracing on
/// and return the exported Chrome trace document plus the virtual elapsed
/// time.
fn traced_qsort_run(seed: u64) -> (String, u64) {
    let mut session = TraceSession::new(true);
    let mut config = ScenarioConfig::new(2 * MB, 32 * MB, SwapKind::Hpbd { servers: 2 });
    config.tracer = Some(session.tracer_for("HPBD-2"));
    let scenario = Scenario::build(&config);
    let report = scenario.run_qsort(1 << 20, seed);
    assert!(
        report.vm.swap_ins > 0,
        "workload must page to exercise the stack"
    );
    (session.to_chrome_json(), report.elapsed.as_nanos())
}

#[test]
fn same_seed_runs_export_identical_trace_files() {
    let (doc_a, elapsed_a) = traced_qsort_run(7);
    let (doc_b, elapsed_b) = traced_qsort_run(7);
    assert_eq!(elapsed_a, elapsed_b, "virtual time must be deterministic");

    // Round-trip through real files, as the bench binaries do.
    let dir = std::env::temp_dir();
    let pa = dir.join("hpbd-trace-e2e-a.json");
    let pb = dir.join("hpbd-trace-e2e-b.json");
    std::fs::write(&pa, &doc_a).unwrap();
    std::fs::write(&pb, &doc_b).unwrap();
    let bytes_a = std::fs::read(&pa).unwrap();
    let bytes_b = std::fs::read(&pb).unwrap();
    let _ = std::fs::remove_file(&pa);
    let _ = std::fs::remove_file(&pb);
    assert!(!bytes_a.is_empty());
    assert_eq!(
        bytes_a, bytes_b,
        "same-seed trace files must be byte-identical"
    );
}

#[test]
fn exported_trace_is_valid_chrome_trace_event_json() {
    let (doc, _) = traced_qsort_run(11);
    let value = json::parse(&doc).expect("trace must be well-formed JSON");
    let root = value.as_object().expect("root must be an object");
    let events = root["traceEvents"].as_array().expect("traceEvents array");
    assert!(!events.is_empty());

    let mut components = BTreeSet::new();
    for event in events {
        let obj = event.as_object().expect("every event is an object");
        let ph = obj["ph"].as_string().expect("ph is a string");
        assert!(
            matches!(ph, "X" | "i" | "M"),
            "unexpected event phase {ph:?}"
        );
        assert!(obj.contains_key("pid"), "events carry a pid");
        match ph {
            "X" => {
                // Complete events: timestamp + duration, both present.
                assert!(obj["ts"].as_f64().is_some());
                assert!(obj["dur"].as_f64().expect("dur") >= 0.0);
            }
            "i" => {
                assert!(obj["ts"].as_f64().is_some());
                assert_eq!(obj["s"].as_string(), Some("t"), "instant scope");
            }
            "M" => {
                if obj["name"].as_string() == Some("thread_name") {
                    let args = obj["args"].as_object().expect("metadata args");
                    components.insert(args["name"].as_string().unwrap().to_string());
                }
            }
            _ => unreachable!(),
        }
    }
    // The quicksort scenario swaps over HPBD: client, server, verbs layer,
    // block layer and VM must all contribute spans.
    for component in ["hpbd", "hpbd_server", "ibsim", "blockdev", "vmsim"] {
        assert!(
            components.contains(component),
            "missing component {component:?}; got {components:?}"
        );
    }
    assert!(
        components.len() >= 4,
        "expected spans from at least 4 components, got {components:?}"
    );
}
