//! Tests for the load-bearing mechanisms behind the figures: 2.4-style
//! reclaim throttling, HCA multi-QP costs, readahead policy, and CPU
//! contention between application quanta and kernel work.

use hpbd_suite::netmodel::{Calibration, Node};
use hpbd_suite::simcore::Engine;
use hpbd_suite::vmsim::{AddressSpace, BlockBackend, PagedVec, Vm, VmConfig};
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::rc::Rc;

const MB: u64 = 1 << 20;

fn vm_with_ram_swap(frames: usize, swap_pages: u64) -> (Engine, Vm) {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let node = Node::new("client", 0, 2);
    let mut config = VmConfig::for_memory(frames as u64 * 4096);
    config.total_frames = frames;
    let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
    let backend = BlockBackend::over_ramdisk(&engine, &cal, &node, swap_pages * 4096, "swap");
    vm.add_swap_backend(backend, 0);
    (engine, vm)
}

#[test]
fn throttling_fires_under_streaming_dirtying() {
    // Dirty pages far faster than kswapd's small batch can drain: the
    // allocating task must hit synchronous-reclaim episodes.
    let (_engine, vm) = vm_with_ram_swap(64, 2048);
    let space = AddressSpace::new(&vm);
    let v: PagedVec<i64> = PagedVec::new(&space, 256 * 1024); // 4x memory
    for i in 0..v.len() {
        v.set(i, i as i64);
    }
    let stats = vm.stats();
    assert!(
        stats.throttles > 0,
        "streaming writes must throttle: {stats:?}"
    );
    assert!(stats.swap_outs > 0);
}

#[test]
fn throttle_episodes_advance_time_by_device_roundtrips() {
    // The same dirty stream against a zero-latency-ish ramdisk vs a padded
    // version of it: virtual time must scale with the device.
    let run = |frames: usize| {
        let (engine, vm) = vm_with_ram_swap(frames, 2048);
        let space = AddressSpace::new(&vm);
        let v: PagedVec<i64> = PagedVec::new(&space, 128 * 1024);
        for i in 0..v.len() {
            v.set(i, 1);
        }
        (engine.now(), vm.stats().throttles)
    };
    let (t_pressured, throttles) = run(48);
    let (t_roomy, _) = run(4096);
    assert!(throttles > 0);
    assert!(
        t_pressured > t_roomy,
        "throttled run must be slower: {t_pressured} vs {t_roomy}"
    );
}

#[test]
fn hca_scheduling_penalty_scales_with_connected_qps() {
    use hpbd_suite::ibsim::Fabric;
    use hpbd_suite::simcore::SimTime;
    let cal = Rc::new(Calibration::cluster_2005());
    let wqe = |n_peers: usize| {
        let engine = Engine::new();
        let fabric = Fabric::new(engine.clone(), cal.clone());
        let hub = fabric.add_node("hub");
        let mut _qps = Vec::new();
        for i in 0..n_peers {
            let peer = fabric.add_node(format!("peer-{i}"));
            let (a, b, c, d) = (
                hub.create_cq(),
                hub.create_cq(),
                peer.create_cq(),
                peer.create_cq(),
            );
            _qps.push(fabric.connect(&hub, &a, &b, &peer, &c, &d));
        }
        // Cost of one WQE on the hub HCA after warmup of qp 1.
        hub.hca().process_wqe(SimTime::ZERO, 1);
        let t0 = hub.hca().process_wqe(SimTime::ZERO, 1);
        let t1 = hub.hca().process_wqe(t0, 1);
        (t1 - t0).as_nanos()
    };
    let few = wqe(4);
    let many = wqe(16);
    assert!(
        many > few,
        "a 16-QP population must cost more per WQE: {many} vs {few}"
    );
    assert_eq!(
        many - few,
        8 * cal.hca.qp_sched_ns_per_excess,
        "penalty is per excess QP beyond the context cache"
    );
}

#[test]
fn readahead_override_controls_cluster_reads() {
    let run = |ra: Option<usize>| {
        let mut config = ScenarioConfig::new(MB, 32 * MB, SwapKind::Hpbd { servers: 1 });
        config.readahead_pages = ra;
        let scenario = Scenario::build(&config);
        let space = AddressSpace::new(&scenario.vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 1 << 20); // 4 MiB
        for i in 0..v.len() {
            v.set(i, i as i32);
        }
        for i in 0..v.len() {
            assert_eq!(v.get(i), i as i32);
        }
        scenario.vm.stats()
    };
    let with_ra = run(None); // 2.4 default: 8 pages
    let without = run(Some(1));
    assert!(with_ra.readaheads > 0, "default readahead active");
    assert_eq!(without.readaheads, 0, "override disables readahead");
    assert!(
        without.major_faults > with_ra.major_faults,
        "sequential sweep without readahead faults more"
    );
}

#[test]
fn io_latency_reported_per_direction() {
    let config = ScenarioConfig::new(MB, 32 * MB, SwapKind::Hpbd { servers: 1 });
    let scenario = Scenario::build(&config);
    let report = scenario.run_qsort(512 * 1024, 5);
    let (r_mean, r_max, r_n) = report.read_latency_us;
    let (w_mean, w_max, w_n) = report.write_latency_us;
    assert!(r_n > 0 && w_n > 0, "both directions saw traffic");
    assert!(r_mean > 0.0 && w_mean > 0.0);
    assert!(r_max >= r_mean && w_max >= w_mean);
    // HPBD service times live in the tens-to-hundreds of µs band.
    assert!(
        (10.0..2_000.0).contains(&r_mean),
        "read mean {r_mean}us out of band"
    );
}
