//! Randomized invariant tests over the core data structures.
//!
//! Formerly proptest-based; now driven by the suite's own deterministic
//! [`SimRng`] so the tests build offline and every failure reproduces
//! from its printed case seed.

use hpbd_suite::hpbd::PoolAllocator;
use hpbd_suite::hpbd::SimBufferPool;
use hpbd_suite::simcore::{Engine, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Run `f` over `cases` generated inputs, each seeded reproducibly.
fn for_cases(cases: u64, mut f: impl FnMut(u64, &mut SimRng)) {
    for case in 0..cases {
        let mut rng = SimRng::new(0x70_5E_ED ^ (case * 0x9E37_79B9));
        f(case, &mut rng);
    }
}

// ---------------------------------------------------------------------------
// Buffer pool allocator: conservation, coalescing, no overlap.
// ---------------------------------------------------------------------------

#[test]
fn pool_allocator_invariants() {
    const SIZE: u64 = 1 << 20;
    for_cases(256, |case, rng| {
        let ops = 1 + rng.below(200);
        let mut pool = PoolAllocator::new(SIZE);
        let mut live: Vec<hpbd_suite::hpbd::pool::PoolBuf> = Vec::new();
        for _ in 0..ops {
            if rng.below(2) == 0 {
                let len = 1 + rng.below(64 * 1024 - 1);
                if let Some(buf) = pool.alloc(len) {
                    for other in &live {
                        let disjoint = buf.offset + buf.len <= other.offset
                            || other.offset + other.len <= buf.offset;
                        assert!(disjoint, "case {case}: overlap {buf:?} vs {other:?}");
                    }
                    live.push(buf);
                }
            } else if !live.is_empty() {
                let i = rng.below(live.len() as u64) as usize;
                let buf = live.swap_remove(i);
                pool.free(buf);
            }
            pool.check_invariants();
            let live_bytes: u64 = live.iter().map(|b| b.len).sum();
            assert_eq!(
                pool.free_bytes() + live_bytes,
                SIZE,
                "case {case}: byte conservation"
            );
        }
        // Free everything: the pool must coalesce back to one extent.
        for buf in live.drain(..) {
            pool.free(buf);
        }
        pool.check_invariants();
        assert_eq!(pool.free_bytes(), SIZE);
        assert_eq!(pool.fragments(), 1, "case {case}: merge-on-free coalesces");
    });
}

/// After any load, a drained SimBufferPool serves queued waiters FIFO and
/// ends with all bytes back.
#[test]
fn sim_pool_serves_all_waiters() {
    for_cases(256, |case, rng| {
        let sizes: Vec<u64> = (0..1 + rng.below(63))
            .map(|_| 1 + rng.below(1023))
            .collect();
        let pool = Rc::new(SimBufferPool::new(4096));
        let served: Rc<RefCell<Vec<usize>>> = Rc::default();
        let held: Rc<RefCell<Vec<hpbd_suite::hpbd::pool::PoolBuf>>> = Rc::default();
        for (i, &len) in sizes.iter().enumerate() {
            let served = served.clone();
            let held = held.clone();
            pool.alloc(len, move |buf| {
                served.borrow_mut().push(i);
                held.borrow_mut().push(buf);
            });
        }
        // Free everything granted so far, repeatedly, until quiescent.
        let mut guard = 0;
        while pool.queued_waiters() > 0 {
            let bufs: Vec<_> = held.borrow_mut().drain(..).collect();
            assert!(
                !bufs.is_empty(),
                "case {case}: waiters but nothing to free: deadlock"
            );
            for b in bufs {
                pool.free(b);
            }
            guard += 1;
            assert!(guard < 1000, "case {case}: no forward progress");
        }
        for b in held.borrow_mut().drain(..) {
            pool.free(b);
        }
        // Everyone served exactly once, in FIFO order.
        let served = served.borrow();
        assert_eq!(served.len(), sizes.len());
        let mut sorted = served.clone();
        sorted.sort_unstable();
        assert_eq!(&*served, &sorted, "case {case}: FIFO service order");
        assert_eq!(pool.free_bytes(), 4096);
    });
}

// ---------------------------------------------------------------------------
// Engine: time never runs backwards, ties keep submission order.
// ---------------------------------------------------------------------------

#[test]
fn engine_executes_in_nondecreasing_time_order() {
    for_cases(64, |case, rng| {
        let times: Vec<u64> = (0..1 + rng.below(200)).map(|_| rng.below(10_000)).collect();
        let engine = Engine::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            let eng = engine.clone();
            engine.schedule_at(SimTime(t), move || {
                log.borrow_mut().push((eng.now().as_nanos(), i));
            });
        }
        engine.run_until_idle();
        let log = log.borrow();
        assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time went backwards");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: tie broke submission order");
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Wire protocol: roundtrip for arbitrary field values; corruption is
// always detected.
// ---------------------------------------------------------------------------

#[test]
fn hpbd_request_roundtrip() {
    use hpbd_suite::hpbd::proto::{PageOp, PageRequest};
    for_cases(256, |_case, rng| {
        let req = PageRequest::new(
            rng.next_u64(),
            if rng.below(2) == 0 {
                PageOp::Write
            } else {
                PageOp::Read
            },
            rng.next_u64(),
            1 + rng.below(1 << 20),
            rng.next_u32(),
            rng.next_u64(),
            rng.next_u64(),
        );
        assert_eq!(PageRequest::decode(req.encode()), Ok(req));
    });
}

#[test]
fn hpbd_request_detects_any_single_byte_corruption() {
    use hpbd_suite::hpbd::proto::PageRequest;
    let req = PageRequest::new(
        7,
        hpbd_suite::hpbd::proto::PageOp::Write,
        123456,
        4096,
        9,
        8192,
        31,
    );
    // Exhaustive: every bit of every signed header byte past the magic.
    for flip_byte in 4usize..hpbd_suite::hpbd::proto::REQUEST_WIRE_SIZE {
        for flip_bit in 0u8..8 {
            let mut raw = req.encode().to_vec();
            raw[flip_byte] ^= 1 << flip_bit;
            let decoded = PageRequest::decode(raw.into());
            assert!(
                decoded.is_err(),
                "byte {flip_byte} bit {flip_bit}: checksum must catch the flip"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Paged memory: random access sequences round-trip under pressure.
// ---------------------------------------------------------------------------

#[test]
fn paged_vec_matches_reference_vec() {
    use hpbd_suite::netmodel::{Calibration, Node};
    use hpbd_suite::vmsim::{AddressSpace, BlockBackend, PagedVec, Vm, VmConfig};

    for_cases(12, |case, rng| {
        let frames = 24 + rng.below(40) as usize;
        let writes: Vec<(usize, i32)> = (0..1 + rng.below(400))
            .map(|_| (rng.below(32 * 1024) as usize, rng.next_u32() as i32))
            .collect();

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend = BlockBackend::over_ramdisk(&engine, &cal, &node, 64 << 20, "swap");
        vm.add_swap_backend(backend, 0);

        let space = AddressSpace::new(&vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 32 * 1024);
        let mut reference = vec![0i32; 32 * 1024];
        for &(i, val) in &writes {
            v.set(i, val);
            reference[i] = val;
        }
        for &(i, _) in &writes {
            assert_eq!(v.get(i), reference[i], "case {case}: index {i}");
        }
    });
}

// ---------------------------------------------------------------------------
// Block-layer merging: no bio lost, no bio duplicated, extents exact.
// ---------------------------------------------------------------------------

#[test]
fn request_queue_completes_every_bio_exactly_once() {
    use hpbd_suite::blockdev::{new_buffer, Bio, IoOp, RamDiskDevice, RequestQueue};
    use hpbd_suite::netmodel::{Calibration, Node};
    use std::collections::BTreeSet;

    for_cases(32, |case, rng| {
        let mut pages = BTreeSet::new();
        for _ in 0..1 + rng.below(127) {
            pages.insert(rng.below(512));
        }

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            4 << 20,
            "ram",
        ));
        let queue = RequestQueue::new(engine.clone(), cal, node, dev);
        let completions: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &p in &pages {
            let completions = completions.clone();
            queue.submit(Bio::new(
                IoOp::Write,
                p * 4096,
                new_buffer(4096),
                move |r| {
                    r.unwrap();
                    completions.borrow_mut().push(p);
                },
            ));
        }
        queue.flush();
        engine.run_until_idle();
        let mut got = completions.borrow().clone();
        got.sort_unstable();
        let want: Vec<u64> = pages.iter().copied().collect();
        assert_eq!(got, want, "case {case}: every bio completes exactly once");

        // The dispatch log covers exactly the submitted pages, merged.
        let log = queue.dispatch_log();
        let total: u64 = log.borrow().iter().map(|r| r.len).sum();
        assert_eq!(total, pages.len() as u64 * 4096);
        for rec in log.borrow().iter() {
            assert!(rec.len <= 128 * 1024, "case {case}: cap respected");
        }
    });
}

// ---------------------------------------------------------------------------
// VM invariants under random access patterns and tight memory.
// ---------------------------------------------------------------------------

#[test]
fn vm_invariants_hold_under_random_paging() {
    use hpbd_suite::netmodel::{Calibration, Node};
    use hpbd_suite::vmsim::{BlockBackend, Vm, VmConfig};

    for_cases(16, |_case, rng| {
        let frames = 24 + rng.below(24) as usize;
        let accesses: Vec<(u64, bool)> = (0..1 + rng.below(300))
            .map(|_| (rng.below(256), rng.below(2) == 0))
            .collect();

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let backend = BlockBackend::over_ramdisk(&engine, &cal, &node, 8 << 20, "swap");
        vm.add_swap_backend(backend, 0);

        let asid = vm.new_asid();
        for (i, &(vpn, write)) in accesses.iter().enumerate() {
            let _buf = vm.page_blocking(asid, vpn, write);
            if i % 16 == 0 {
                vm.check_invariants();
            }
        }
        engine.run_until_idle();
        vm.check_invariants();
    });
}

// ---------------------------------------------------------------------------
// tcpsim: the stream is exactly the concatenation of sends, however the
// receiver chunks its reads.
// ---------------------------------------------------------------------------

#[test]
fn tcp_stream_preserves_byte_sequence() {
    use hpbd_suite::netmodel::{Calibration, Node};
    for_cases(24, |case, rng| {
        let sends: Vec<usize> = (0..1 + rng.below(19))
            .map(|_| 1 + rng.below(4999) as usize)
            .collect();
        let read_chunks: Vec<usize> = (0..1 + rng.below(39))
            .map(|_| 1 + rng.below(3999) as usize)
            .collect();

        let engine = Engine::new();
        let cal = Calibration::cluster_2005();
        let model = Rc::new(cal.ipoib.clone());
        let a = Node::new("a", 0, 2);
        let b = Node::new("b", 1, 2);
        let (ca, cb) = hpbd_suite::tcpsim::connect(&engine, model, &a, &b);

        // Send a deterministic byte pattern split into arbitrary messages.
        let total: usize = sends.iter().sum();
        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let mut at = 0;
        for &n in &sends {
            ca.send(bytes::Bytes::copy_from_slice(&payload[at..at + n]));
            at += n;
        }
        // Read it back in arbitrary chunk sizes (bounded by what was sent).
        let received: Rc<RefCell<Vec<u8>>> = Rc::default();
        let mut requested = 0usize;
        for &n in &read_chunks {
            let n = n.min(total - requested);
            if n == 0 {
                break;
            }
            requested += n;
            let received = received.clone();
            cb.recv(n, move |chunk| {
                received.borrow_mut().extend_from_slice(&chunk)
            });
        }
        engine.run_until_idle();
        let received = received.borrow();
        assert_eq!(
            &received[..],
            &payload[..requested],
            "case {case}: stream must be the exact concatenation of sends"
        );
    });
}

// ---------------------------------------------------------------------------
// ibsim: random RDMA traffic matches a plain reference buffer.
// ---------------------------------------------------------------------------

#[test]
fn rdma_ops_match_reference_model() {
    use hpbd_suite::ibsim::{Fabric, Qp, RemoteSlice, WorkKind, WorkRequest};
    use hpbd_suite::netmodel::Calibration;
    for_cases(16, |case, rng| {
        let ops: Vec<(bool, u64, u64)> = (0..1 + rng.below(39))
            .map(|_| (rng.below(2) == 0, rng.below(32), 1 + rng.below(8191)))
            .collect();

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (qp, _qp_b) = fabric.connect(&a, &acq, &arcq, &b, &bcq, &brcq);
        let qp = Qp::from(qp);

        const REGION: u64 = 64 * 1024;
        let local = a.hca().register(REGION as usize);
        let remote = b.hca().register(REGION as usize);
        let mut ref_local = vec![0u8; REGION as usize];
        let mut ref_remote = vec![0u8; REGION as usize];

        for (i, &(is_write, page, len)) in ops.iter().enumerate() {
            let offset = (page * 2048).min(REGION - 1);
            let len = len.min(REGION - offset);
            if is_write {
                // Fill local with a marker, RDMA-write to remote.
                let marker = (i % 251) as u8 + 1;
                let data = vec![marker; len as usize];
                local.write(offset as usize, &data);
                ref_local[offset as usize..(offset + len) as usize].fill(marker);
                let mut chain = qp.chain();
                chain.push(WorkRequest {
                    wr_id: i as u64,
                    kind: WorkKind::RdmaWrite {
                        local: local.slice(offset, len),
                        remote: RemoteSlice {
                            rkey: remote.rkey(),
                            offset,
                            len,
                        },
                    },
                    solicited: false,
                });
                chain.post().expect("post");
                engine.run_until_idle();
                ref_remote[offset as usize..(offset + len) as usize].fill(marker);
            } else {
                let mut chain = qp.chain();
                chain.push(WorkRequest {
                    wr_id: i as u64,
                    kind: WorkKind::RdmaRead {
                        local: local.slice(offset, len),
                        remote: RemoteSlice {
                            rkey: remote.rkey(),
                            offset,
                            len,
                        },
                    },
                    solicited: false,
                });
                chain.post().expect("post");
                engine.run_until_idle();
                let src = &ref_remote[offset as usize..(offset + len) as usize];
                ref_local[offset as usize..(offset + len) as usize].copy_from_slice(src);
            }
            // All completions must be successes.
            while let Some(c) = acq.poll() {
                assert_eq!(c.status, hpbd_suite::ibsim::WcStatus::Success);
            }
        }
        assert_eq!(
            local.to_vec(),
            ref_local,
            "case {case}: local region diverged"
        );
        assert_eq!(
            remote.to_vec(),
            ref_remote,
            "case {case}: remote region diverged"
        );
    });
}

// ---------------------------------------------------------------------------
// Quicksort over the full stack: always sorted, for random shapes.
// ---------------------------------------------------------------------------

#[test]
fn quicksort_sorts_under_any_memory_pressure() {
    use hpbd_suite::vmsim::AddressSpace;
    use hpbd_suite::workloads::qsort::QsortTask;
    use hpbd_suite::workloads::{Scenario, ScenarioConfig, Scheduler, SwapKind};

    for_cases(6, |_case, rng| {
        let elements = 1 + rng.below(40_000) as usize;
        let frames_kb = 64 + rng.below(448);
        let seed = rng.next_u64();
        let servers = 1 + rng.below(3) as usize;

        let config = ScenarioConfig::new(frames_kb * 1024, 16 << 20, SwapKind::Hpbd { servers });
        let scenario = Scenario::build(&config);
        let space = AddressSpace::new(&scenario.vm);
        let mut task = QsortTask::new(&space, elements, seed, 4, "prop-qsort");
        Scheduler::new(scenario.engine.clone(), 2).run_one(&mut task);
        assert!(
            task.is_sorted(),
            "sortedness violated: n={elements} seed={seed}"
        );
    });
}
