//! Property-based tests over the core data structures and invariants.

use hpbd_suite::hpbd::PoolAllocator;
use hpbd_suite::hpbd::SimBufferPool;
use hpbd_suite::simcore::{Engine, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Buffer pool allocator: conservation, coalescing, no overlap.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PoolOp {
    Alloc(u64),
    FreeNth(usize),
}

fn pool_ops() -> impl Strategy<Value = Vec<PoolOp>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..64 * 1024).prop_map(PoolOp::Alloc),
            (0usize..64).prop_map(PoolOp::FreeNth),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any interleaving of allocs and frees keeps the free list sorted,
    /// coalesced, in-bounds and byte-conserving, and live allocations never
    /// overlap.
    #[test]
    fn pool_allocator_invariants(ops in pool_ops()) {
        const SIZE: u64 = 1 << 20;
        let mut pool = PoolAllocator::new(SIZE);
        let mut live: Vec<hpbd_suite::hpbd::pool::PoolBuf> = Vec::new();
        for op in ops {
            match op {
                PoolOp::Alloc(len) => {
                    if let Some(buf) = pool.alloc(len) {
                        // No overlap with any live allocation.
                        for other in &live {
                            let disjoint = buf.offset + buf.len <= other.offset
                                || other.offset + other.len <= buf.offset;
                            prop_assert!(disjoint, "overlap {buf:?} vs {other:?}");
                        }
                        live.push(buf);
                    }
                }
                PoolOp::FreeNth(i) => {
                    if !live.is_empty() {
                        let buf = live.swap_remove(i % live.len());
                        pool.free(buf);
                    }
                }
            }
            pool.check_invariants();
            let live_bytes: u64 = live.iter().map(|b| b.len).sum();
            prop_assert_eq!(pool.free_bytes() + live_bytes, SIZE, "byte conservation");
        }
        // Free everything: the pool must coalesce back to one extent.
        for buf in live.drain(..) {
            pool.free(buf);
        }
        pool.check_invariants();
        prop_assert_eq!(pool.free_bytes(), SIZE);
        prop_assert_eq!(pool.fragments(), 1, "merge-on-free must fully coalesce");
    }

    /// After any load, a drained SimBufferPool serves queued waiters FIFO
    /// and ends with all bytes back.
    #[test]
    fn sim_pool_serves_all_waiters(sizes in prop::collection::vec(1u64..1024, 1..64)) {
        let pool = Rc::new(SimBufferPool::new(4096));
        let served: Rc<RefCell<Vec<usize>>> = Rc::default();
        let held: Rc<RefCell<Vec<hpbd_suite::hpbd::pool::PoolBuf>>> = Rc::default();
        for (i, &len) in sizes.iter().enumerate() {
            let served = served.clone();
            let held = held.clone();
            pool.alloc(len, move |buf| {
                served.borrow_mut().push(i);
                held.borrow_mut().push(buf);
            });
        }
        // Free everything granted so far, repeatedly, until quiescent.
        let mut guard = 0;
        while pool.queued_waiters() > 0 {
            let bufs: Vec<_> = held.borrow_mut().drain(..).collect();
            prop_assert!(!bufs.is_empty(), "waiters but nothing to free: deadlock");
            for b in bufs {
                pool.free(b);
            }
            guard += 1;
            prop_assert!(guard < 1000, "no forward progress");
        }
        for b in held.borrow_mut().drain(..) {
            pool.free(b);
        }
        // Everyone served exactly once, in FIFO order.
        let served = served.borrow();
        prop_assert_eq!(served.len(), sizes.len());
        let mut sorted = served.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&*served, &sorted, "FIFO service order");
        prop_assert_eq!(pool.free_bytes(), 4096);
    }

    // -----------------------------------------------------------------------
    // Engine: time never runs backwards, ties keep submission order.
    // -----------------------------------------------------------------------

    #[test]
    fn engine_executes_in_nondecreasing_time_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let engine = Engine::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (i, &t) in times.iter().enumerate() {
            let log = log.clone();
            let eng = engine.clone();
            engine.schedule_at(SimTime(t), move || {
                log.borrow_mut().push((eng.now().as_nanos(), i));
            });
        }
        engine.run_until_idle();
        let log = log.borrow();
        prop_assert_eq!(log.len(), times.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke submission order");
            }
        }
    }

    // -----------------------------------------------------------------------
    // Wire protocol: roundtrip for arbitrary field values; corruption is
    // always detected.
    // -----------------------------------------------------------------------

    #[test]
    fn hpbd_request_roundtrip(
        req_id in any::<u64>(),
        write in any::<bool>(),
        server_offset in any::<u64>(),
        len in 1u64..=(1 << 20),
        rkey in any::<u32>(),
        client_offset in any::<u64>(),
    ) {
        use hpbd_suite::hpbd::proto::{PageOp, PageRequest};
        let req = PageRequest {
            req_id,
            op: if write { PageOp::Write } else { PageOp::Read },
            server_offset,
            len,
            client_rkey: rkey,
            client_offset,
        };
        prop_assert_eq!(PageRequest::decode(req.encode()), Ok(req));
    }

    #[test]
    fn hpbd_request_detects_any_single_byte_corruption(
        flip_byte in 4usize..44, // past the magic, within the signed header
        flip_bit in 0u8..8,
    ) {
        use hpbd_suite::hpbd::proto::PageRequest;
        let req = PageRequest {
            req_id: 7,
            op: hpbd_suite::hpbd::proto::PageOp::Write,
            server_offset: 123456,
            len: 4096,
            client_rkey: 9,
            client_offset: 8192,
        };
        let mut raw = req.encode().to_vec();
        raw[flip_byte] ^= 1 << flip_bit;
        let decoded = PageRequest::decode(raw.into());
        prop_assert!(decoded.is_err() || decoded == Ok(req),
            "silent corruption: {decoded:?}");
        prop_assert_ne!(decoded, Ok(PageRequest { req_id: 8, ..req }));
        prop_assert!(decoded.is_err(), "checksum must catch the flip");
    }
}

// ---------------------------------------------------------------------------
// Paged memory: random access sequences round-trip under pressure.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paged_vec_matches_reference_vec(
        writes in prop::collection::vec((0usize..32 * 1024, any::<i32>()), 1..400),
        frames in 24usize..64,
    ) {
        use hpbd_suite::blockdev::{RamDiskDevice, RequestQueue};
        use hpbd_suite::netmodel::{Calibration, Node};
        use hpbd_suite::vmsim::{AddressSpace, PagedVec, Vm, VmConfig};

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(), cal.clone(), node.clone(), 64 << 20, "swap"));
        let q = Rc::new(RequestQueue::new(engine.clone(), cal, node, dev));
        vm.add_swap_device(q, 0);

        let space = AddressSpace::new(&vm);
        let v: PagedVec<i32> = PagedVec::new(&space, 32 * 1024);
        let mut reference = vec![0i32; 32 * 1024];
        for &(i, val) in &writes {
            v.set(i, val);
            reference[i] = val;
        }
        for &(i, _) in &writes {
            prop_assert_eq!(v.get(i), reference[i], "index {}", i);
        }
    }
}

// ---------------------------------------------------------------------------
// Block-layer merging: no bio lost, no bio duplicated, extents exact.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_queue_completes_every_bio_exactly_once(
        pages in prop::collection::hash_set(0u64..512, 1..128),
    ) {
        use hpbd_suite::blockdev::{new_buffer, Bio, IoOp, RamDiskDevice, RequestQueue};
        use hpbd_suite::netmodel::{Calibration, Node};

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(), cal.clone(), node.clone(), 4 << 20, "ram"));
        let queue = RequestQueue::new(engine.clone(), cal, node, dev);
        let completions: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &p in &pages {
            let completions = completions.clone();
            queue.submit(Bio::new(IoOp::Write, p * 4096, new_buffer(4096), move |r| {
                r.unwrap();
                completions.borrow_mut().push(p);
            }));
        }
        queue.flush();
        engine.run_until_idle();
        let mut got = completions.borrow().clone();
        got.sort_unstable();
        let mut want: Vec<u64> = pages.iter().copied().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want, "every bio completes exactly once");

        // The dispatch log covers exactly the submitted pages, merged.
        let log = queue.dispatch_log();
        let total: u64 = log.borrow().iter().map(|r| r.len).sum();
        prop_assert_eq!(total, pages.len() as u64 * 4096);
        for rec in log.borrow().iter() {
            prop_assert!(rec.len <= 128 * 1024, "cap respected");
        }
    }

    // -----------------------------------------------------------------------
    // VM invariants under random access patterns and tight memory.
    // -----------------------------------------------------------------------

    #[test]
    fn vm_invariants_hold_under_random_paging(
        accesses in prop::collection::vec((0u64..256, any::<bool>()), 1..300),
        frames in 24usize..48,
    ) {
        use hpbd_suite::blockdev::{RamDiskDevice, RequestQueue};
        use hpbd_suite::netmodel::{Calibration, Node};
        use hpbd_suite::vmsim::{Vm, VmConfig};

        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let mut config = VmConfig::for_memory(frames as u64 * 4096);
        config.total_frames = frames;
        let vm = Vm::new(engine.clone(), cal.clone(), node.clone(), config);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(), cal.clone(), node.clone(), 8 << 20, "swap"));
        let q = Rc::new(RequestQueue::new(engine.clone(), cal, node, dev));
        vm.add_swap_device(q, 0);

        let asid = vm.new_asid();
        for (i, &(vpn, write)) in accesses.iter().enumerate() {
            let _buf = vm.page_blocking(asid, vpn, write);
            if i % 16 == 0 {
                vm.check_invariants();
            }
        }
        engine.run_until_idle();
        vm.check_invariants();
    }
}

// ---------------------------------------------------------------------------
// tcpsim: the stream is exactly the concatenation of sends, however the
// receiver chunks its reads.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tcp_stream_preserves_byte_sequence(
        sends in prop::collection::vec(1usize..5000, 1..20),
        read_chunks in prop::collection::vec(1usize..4000, 1..40),
    ) {
        use hpbd_suite::netmodel::{Calibration, Node};
        let engine = Engine::new();
        let cal = Calibration::cluster_2005();
        let model = Rc::new(cal.ipoib.clone());
        let a = Node::new("a", 0, 2);
        let b = Node::new("b", 1, 2);
        let (ca, cb) = hpbd_suite::tcpsim::connect(&engine, model, &a, &b);

        // Send a deterministic byte pattern split into arbitrary messages.
        let total: usize = sends.iter().sum();
        let payload: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let mut at = 0;
        for &n in &sends {
            ca.send(bytes::Bytes::copy_from_slice(&payload[at..at + n]));
            at += n;
        }
        // Read it back in arbitrary chunk sizes (bounded by what was sent).
        let received: Rc<RefCell<Vec<u8>>> = Rc::default();
        let mut requested = 0usize;
        for &n in &read_chunks {
            let n = n.min(total - requested);
            if n == 0 { break; }
            requested += n;
            let received = received.clone();
            cb.recv(n, move |chunk| received.borrow_mut().extend_from_slice(&chunk));
        }
        engine.run_until_idle();
        let received = received.borrow();
        prop_assert_eq!(&received[..], &payload[..requested],
            "stream must be the exact concatenation of sends");
    }

    // -----------------------------------------------------------------------
    // ibsim: random RDMA traffic matches a plain reference buffer.
    // -----------------------------------------------------------------------

    #[test]
    fn rdma_ops_match_reference_model(
        ops in prop::collection::vec(
            (any::<bool>(), 0u64..32, 1u64..8192), 1..40),
    ) {
        use hpbd_suite::ibsim::{Fabric, RemoteSlice, WorkKind, WorkRequest};
        use hpbd_suite::netmodel::Calibration;
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (qp, _qp_b) = fabric.connect(&a, &acq, &arcq, &b, &bcq, &brcq);

        const REGION: u64 = 64 * 1024;
        let local = a.hca().register(REGION as usize);
        let remote = b.hca().register(REGION as usize);
        let mut ref_local = vec![0u8; REGION as usize];
        let mut ref_remote = vec![0u8; REGION as usize];

        for (i, &(is_write, page, len)) in ops.iter().enumerate() {
            let offset = (page * 2048).min(REGION - 1);
            let len = len.min(REGION - offset);
            if is_write {
                // Fill local with a marker, RDMA-write to remote.
                let marker = (i % 251) as u8 + 1;
                let data = vec![marker; len as usize];
                local.write(offset as usize, &data);
                ref_local[offset as usize..(offset + len) as usize].fill(marker);
                qp.post_send(WorkRequest {
                    wr_id: i as u64,
                    kind: WorkKind::RdmaWrite {
                        local: local.slice(offset, len),
                        remote: RemoteSlice { rkey: remote.rkey(), offset, len },
                    },
                    solicited: false,
                }).expect("post");
                engine.run_until_idle();
                ref_remote[offset as usize..(offset + len) as usize].fill(marker);
            } else {
                qp.post_send(WorkRequest {
                    wr_id: i as u64,
                    kind: WorkKind::RdmaRead {
                        local: local.slice(offset, len),
                        remote: RemoteSlice { rkey: remote.rkey(), offset, len },
                    },
                    solicited: false,
                }).expect("post");
                engine.run_until_idle();
                let src = &ref_remote[offset as usize..(offset + len) as usize];
                ref_local[offset as usize..(offset + len) as usize]
                    .copy_from_slice(src);
            }
            // All completions must be successes.
            while let Some(c) = acq.poll() {
                prop_assert_eq!(c.status, hpbd_suite::ibsim::WcStatus::Success);
            }
        }
        prop_assert_eq!(local.to_vec(), ref_local, "local region diverged");
        prop_assert_eq!(remote.to_vec(), ref_remote, "remote region diverged");
    }
}

// ---------------------------------------------------------------------------
// Quicksort over the full stack: always sorted, for random shapes.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn quicksort_sorts_under_any_memory_pressure(
        elements in 1usize..40_000,
        frames_kb in 64u64..512,
        seed in any::<u64>(),
        servers in 1usize..4,
    ) {
        use hpbd_suite::workloads::qsort::QsortTask;
        use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind, Scheduler};
        use hpbd_suite::vmsim::AddressSpace;

        let config = ScenarioConfig::new(
            frames_kb * 1024,
            16 << 20,
            SwapKind::Hpbd { servers },
        );
        let scenario = Scenario::build(&config);
        let space = AddressSpace::new(&scenario.vm);
        let mut task = QsortTask::new(&space, elements, seed, 4, "prop-qsort");
        Scheduler::new(scenario.engine.clone(), 2).run_one(&mut task);
        prop_assert!(task.is_sorted(), "sortedness violated: n={elements} seed={seed}");
    }
}
