//! Hot-path batching: merged scatter-gather requests must be invisible to
//! every correctness observable. Property tests drive shuffled, overlapping
//! and mirrored write orders through a batching cluster and check byte-exact
//! read-back; the swap-consistency oracle reruns the PR 5 fault plans with
//! merging on; and differentials pin the batching-off path to the default
//! configuration byte for byte.

use hpbd_suite::blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
use hpbd_suite::hpbd::{ClusterBuilder, HpbdCluster};
use hpbd_suite::netmodel::Calibration;
use hpbd_suite::simcore::{Engine, SimRng};
use hpbd_suite::simfault::FaultPlan;
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::cell::Cell;
use std::rc::Rc;

const MB: u64 = 1 << 20;
const PAGE: u64 = 4096;

/// Run `f` over `cases` generated inputs, each seeded reproducibly.
fn for_cases(cases: u64, mut f: impl FnMut(u64, &mut SimRng)) {
    for case in 0..cases {
        let mut rng = SimRng::new(0xBA_7C_4E ^ (case * 0x9E37_79B9));
        f(case, &mut rng);
    }
}

/// Fill byte for `page` as written by generation `gen` (never zero).
fn gen_fill(page: u64, gen: u64) -> u8 {
    (page
        .wrapping_mul(2654435761)
        .wrapping_add(gen.wrapping_mul(0x9E37_79B9))
        >> 16) as u8
        | 1
}

fn batching_cluster(engine: &Engine, window_ns: u64, mirror: bool) -> HpbdCluster {
    let cal = Rc::new(Calibration::cluster_2005());
    ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(mirror)
        .batching(true)
        .merge_window_ns(window_ns)
        .build(engine, cal)
}

/// Submit one page write and count failures into `failures`.
fn write_page(dev: &impl BlockDevice, page: u64, fill: u8, failures: &Rc<Cell<u32>>) {
    let buf = new_buffer(PAGE as usize);
    buf.borrow_mut().fill(fill);
    let failures = failures.clone();
    dev.submit(IoRequest::single(Bio::new(
        IoOp::Write,
        page * PAGE,
        buf,
        move |r| {
            if r.is_err() {
                failures.set(failures.get() + 1);
            }
        },
    )));
}

/// Read every page in `pages` back and assert its fill matches `want`.
fn verify_pages(engine: &Engine, dev: &impl BlockDevice, pages: &[(u64, u8)], tag: &str) {
    let bufs: Vec<_> = pages
        .iter()
        .map(|&(page, _)| {
            let buf = new_buffer(PAGE as usize);
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                page * PAGE,
                buf.clone(),
                |r| r.unwrap(),
            )));
            buf
        })
        .collect();
    engine.run_until_idle();
    for (&(page, want), buf) in pages.iter().zip(&bufs) {
        let buf = buf.borrow();
        assert!(
            buf.iter().all(|&b| b == want),
            "[{tag}] page {page}: read {:#04x}… but wanted {want:#04x}",
            buf[0],
        );
    }
}

/// Shuffled same-tick writes across the whole device merge into
/// scatter-gather messages; every page must read back byte-exact.
#[test]
fn merged_writes_preserve_bytes_under_shuffled_order() {
    for_cases(8, |case, rng| {
        let engine = Engine::new();
        let cluster = batching_cluster(&engine, 2_000, false);
        let dev = &cluster.client;
        let total_pages = dev.capacity() / PAGE;

        // A shuffled subset of pages, all submitted in one tick so the
        // merge window sees the full burst.
        let count = 64 + rng.below(129);
        let mut pages: Vec<u64> = (0..count).map(|_| rng.below(total_pages)).collect();
        pages.sort_unstable();
        pages.dedup();
        for i in (1..pages.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            pages.swap(i, j);
        }
        let failures = Rc::new(Cell::new(0u32));
        let expected: Vec<(u64, u8)> = pages
            .iter()
            .map(|&p| {
                let fill = gen_fill(p, case);
                write_page(dev, p, fill, &failures);
                (p, fill)
            })
            .collect();
        engine.run_until_idle();
        assert_eq!(failures.get(), 0, "case {case}: writes must succeed");
        verify_pages(&engine, dev, &expected, &format!("shuffled case {case}"));

        let stats = dev.stats();
        assert!(
            stats.merged_requests > 0,
            "case {case}: a {count}-page same-tick burst must merge: {stats:?}"
        );
        assert!(
            stats.merged_segments >= 2 * stats.merged_requests,
            "case {case}: merged messages carry at least two segments each"
        );
    });
}

/// Same-tick rewrites of the same page (an overlapping-retry order): the
/// planner must keep the two versions in separate messages and the fence
/// must land the later write, merged neighbours notwithstanding.
#[test]
fn overlapping_rewrites_keep_fence_order_through_merging() {
    for_cases(8, |case, rng| {
        let engine = Engine::new();
        let cluster = batching_cluster(&engine, 2_000, false);
        let dev = &cluster.client;
        let total_pages = dev.capacity() / PAGE;

        let count = 32 + rng.below(65);
        let mut pages: Vec<u64> = (0..count).map(|_| rng.below(total_pages)).collect();
        pages.sort_unstable();
        pages.dedup();
        let failures = Rc::new(Cell::new(0u32));
        // First generation to every page, then an immediate same-tick
        // rewrite of a deterministic half — both land in one merge window.
        for &p in &pages {
            write_page(dev, p, gen_fill(p, 0), &failures);
        }
        let expected: Vec<(u64, u8)> = pages
            .iter()
            .map(|&p| {
                if p % 2 == case % 2 {
                    let fill = gen_fill(p, 1);
                    write_page(dev, p, fill, &failures);
                    (p, fill)
                } else {
                    (p, gen_fill(p, 0))
                }
            })
            .collect();
        engine.run_until_idle();
        assert_eq!(failures.get(), 0, "case {case}: writes must succeed");
        verify_pages(&engine, dev, &expected, &format!("overlap case {case}"));
    });
}

/// Mirrored writes split every part into primary and replica copies whose
/// batch keys differ; merging must keep the two orders apart, and after a
/// crash the replicas must serve byte-exact data.
#[test]
fn mirror_part_orders_survive_merging_and_failover() {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(true)
        .batching(true)
        .merge_window_ns(2_000)
        .request_timeout_ns(2_000_000)
        .max_retries(1)
        .fault_plan(FaultPlan::new().server_crash(50_000, 0))
        .build(&engine, cal);
    let dev = &cluster.client;
    let total_pages = dev.capacity() / PAGE;
    let failures = Rc::new(Cell::new(0u32));
    let expected: Vec<(u64, u8)> = (0..total_pages.min(384))
        .map(|p| {
            let fill = gen_fill(p, 0);
            write_page(dev, p, fill, &failures);
            (p, fill)
        })
        .collect();
    engine.run_until_idle();
    assert_eq!(failures.get(), 0, "mirrored writes must survive the crash");
    assert!(cluster.servers[0].is_crashed(), "the fault plan fired");
    verify_pages(&engine, dev, &expected, "mirror+crash");
    let stats = dev.stats();
    assert!(stats.merged_requests > 0, "the burst must merge: {stats:?}");
    assert!(
        stats.failovers > 0,
        "reads of the dead extent must fail over: {stats:?}"
    );
}

// -- swap-consistency oracle under the PR 5 fault plans, batching on ------

/// The fault_recovery.rs oracle with merging enabled: generations of
/// acknowledged writes under an adversarial fault plan, then byte-exact
/// read-back of the last acked generation per page.
fn run_batched_oracle(name: &str, plan: FaultPlan) -> hpbd_suite::hpbd::ClientStats {
    const GENS: u64 = 6;
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(true)
        .batching(true)
        .merge_window_ns(2_000)
        .request_timeout_ns(2_000_000)
        .max_retries(1)
        .fault_plan(plan)
        .build(&engine, cal);
    let dev = &cluster.client;
    let total_pages = dev.capacity() / PAGE;
    let slots = total_pages.min(384);
    let stride = (total_pages / slots).max(1);
    let page_of = |slot: u64| slot * stride;

    let mut shadow = vec![0u8; slots as usize];
    let failures = Rc::new(Cell::new(0u32));
    for gen in 0..GENS {
        let mut submitted = Vec::new();
        for p in 0..slots {
            if gen > 0 && (p.wrapping_mul(31).wrapping_add(gen * 17)) % 4 == 0 {
                continue;
            }
            let fill = gen_fill(p, gen);
            write_page(dev, page_of(p), fill, &failures);
            submitted.push((p, fill));
        }
        engine.run_until_idle();
        assert_eq!(
            failures.get(),
            0,
            "[{name}] gen {gen}: mirrored writes must survive the plan"
        );
        for (p, fill) in submitted {
            shadow[p as usize] = fill;
        }
    }
    for (i, link) in cluster.links.iter().enumerate() {
        assert_eq!(
            link.pending_delay_dup(),
            0,
            "[{name}] link {i} still has armed delay/dup budget at read-back"
        );
    }
    let expected: Vec<(u64, u8)> = (0..slots)
        .map(|p| (page_of(p), shadow[p as usize]))
        .collect();
    verify_pages(&engine, dev, &expected, name);
    let stats = dev.stats();
    assert!(
        stats.merged_requests > 0,
        "[{name}] the oracle burst must exercise merging: {stats:?}"
    );
    stats
}

#[test]
fn batched_oracle_survives_server_crash() {
    let stats = run_batched_oracle("crash", FaultPlan::new().server_crash(50_000, 0));
    assert!(stats.failovers > 0, "crash must force failovers: {stats:?}");
}

#[test]
fn batched_oracle_survives_delayed_deliveries() {
    // 5 ms delay > 2 ms timeout: a whole merged message outlives the retry
    // that replaced it and lands behind it — every carried segment's fence
    // must lose to the newer writes individually.
    let stats = run_batched_oracle(
        "delay",
        FaultPlan::new().message_delay(30_000, 2, 4, 5_000_000),
    );
    assert!(
        stats.timeouts > 0,
        "delays must surface as timeouts: {stats:?}"
    );
}

#[test]
fn batched_oracle_survives_combined_fault_plan() {
    let stats = run_batched_oracle(
        "combined",
        FaultPlan::new()
            .server_crash(50_000, 0)
            .message_loss(30_000, 2, 2)
            .message_delay(40_000, 2, 2, 5_000_000)
            .message_duplicate(35_000, 3, 2),
    );
    assert!(
        stats.failovers > 0 && stats.timeouts > 0,
        "combined plan must exercise recovery: {stats:?}"
    );
}

// -- batching-off differential --------------------------------------------

/// Batching off must be the pre-batching client byte for byte: a run with
/// `batching = false` spelled out is identical — virtual time, event count,
/// metrics rendering, trace buffer — to one using the defaults.
#[test]
fn batching_off_is_byte_identical_to_default_config() {
    let run = |explicit_off: bool| {
        let mut config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
        if explicit_off {
            config.hpbd.batching = false;
            config.hpbd.merge_window_ns = 3_000; // ignored while batching is off
        }
        let tracer = hpbd_suite::simcore::Tracer::enabled();
        config.tracer = Some(tracer.clone());
        let scenario = Scenario::build(&config);
        let report = scenario.run_qsort(512 * 1024, 1234);
        (
            report.elapsed,
            report.events,
            report.metrics.render_text(),
            tracer.snapshot(),
        )
    };
    let default = run(false);
    let explicit = run(true);
    assert_eq!(default.0, explicit.0, "virtual time must match");
    assert_eq!(default.1, explicit.1, "event count must match");
    assert_eq!(default.2, explicit.2, "metrics rendering must match");
    assert_eq!(
        default.3, explicit.3,
        "trace buffers must be byte-identical"
    );
}

/// Batching on vs off over an identical burst workload: the on run must
/// actually merge and must spend fewer messages per page moved. Driven
/// through the block device directly (not the VM scenario) so the traffic
/// is identical in every build profile.
#[test]
fn batching_improves_messages_per_page() {
    let run = |batching: bool| {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .servers(4)
            .per_server_capacity(2 * MB)
            .batching(batching)
            .build(&engine, cal);
        let dev = &cluster.client;
        let total_pages = dev.capacity() / PAGE;
        let failures = Rc::new(Cell::new(0u32));
        let mut rng = SimRng::new(0xBA_7C_4E);
        let mut expected = Vec::new();
        // Several same-tick bursts of scattered page writes, then a
        // same-tick read-back sweep — the message pattern batching exists
        // to compress.
        for round in 0..4u64 {
            let mut pages: Vec<u64> = (0..96).map(|_| rng.below(total_pages)).collect();
            pages.sort_unstable();
            pages.dedup();
            for &p in &pages {
                let fill = gen_fill(p, round);
                write_page(dev, p, fill, &failures);
                expected.retain(|&(q, _)| q != p);
                expected.push((p, fill));
            }
            engine.run_until_idle();
        }
        verify_pages(&engine, dev, &expected, "msgs-per-page");
        assert_eq!(failures.get(), 0);
        dev.stats()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.merged_requests, 0, "off path must never merge");
    assert!(on.merged_requests > 0, "on path must merge: {on:?}");
    assert!(
        on.messages_per_page() < off.messages_per_page(),
        "merging must reduce messages per page: {:.4} vs {:.4}",
        on.messages_per_page(),
        off.messages_per_page()
    );
}
