//! Request-lifecycle tracing properties.
//!
//! The central invariant: for every completed swap request, the six
//! recorded phase durations sum to its end-to-end latency **exactly**
//! (virtual clock, no tolerance) — on the healthy path, across NBD's
//! blocking transfers, and through HPBD timeouts, retries and failovers
//! under an armed fault plan. On top of that: the flight-recorder query
//! API answers consistently, dumps are byte-identical across reruns
//! (determinism), recorder state never leaks between runs, and an
//! anomalous request auto-dumps once into the configured directory.

use hpbd_suite::netmodel::Transport;
use hpbd_suite::simfault::FaultPlan;
use hpbd_suite::simtrace::{FlightSummary, Phase};
use hpbd_suite::workloads::{RunReport, Scenario, ScenarioConfig, SwapKind};

const MB: u64 = 1 << 20;

/// Every record still in the ring must tile its [submit, end] interval.
fn assert_exact_sums(summary: &FlightSummary, label: &str) -> u64 {
    let mut checked = 0;
    for dev in &summary.devices {
        assert_eq!(
            dev.sum_mismatches, 0,
            "{label}/{}: {} of {} requests violated the phase-sum invariant",
            dev.device, dev.sum_mismatches, dev.total
        );
        for r in &dev.records {
            let sum: u64 = r.phase_ns.iter().sum();
            assert_eq!(
                sum,
                r.e2e_ns(),
                "{label}/{}: request {} phases {:?} sum to {} != e2e {}",
                dev.device,
                r.req,
                r.phase_ns,
                sum,
                r.e2e_ns()
            );
            checked += 1;
        }
    }
    checked
}

fn hpbd_scenario(fault_plan: FaultPlan) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 4 });
    config.hpbd.mirror_writes = true;
    config.hpbd.request_timeout_ns = Some(2_000_000);
    config.hpbd.max_retries = 1;
    config.fault_plan = fault_plan;
    config.record_lifecycle = true;
    config
}

fn run_qsort(config: &ScenarioConfig, seed: u64) -> RunReport {
    let scenario = Scenario::build(config);
    scenario.run_qsort(512 * 1024, seed)
}

#[test]
fn healthy_hpbd_requests_tile_exactly() {
    let report = run_qsort(&hpbd_scenario(FaultPlan::new()), 11);
    let summary = report.lifecycle.expect("lifecycle was enabled");
    let dev = summary.device("hpbd0").expect("swap traffic on hpbd0");
    assert!(
        dev.total > 100,
        "workload must actually swap: {}",
        dev.total
    );
    assert_eq!(dev.failed, 0, "healthy run must not fail requests");
    let checked = assert_exact_sums(&summary, "healthy");
    assert!(checked > 0, "ring must retain records");
    // The data path must attribute time beyond Queue: the wire, the
    // server and the RDMA engine all really run.
    for phase in [Phase::Wire, Phase::ServerService, Phase::RdmaPull] {
        assert!(
            dev.phase_total_ns(phase) > 0,
            "phase {phase:?} never observed"
        );
    }
    assert_eq!(
        dev.phase_total_ns(Phase::RetryOverhead),
        0,
        "no recovery cost without faults"
    );
}

#[test]
fn crashed_server_requests_still_tile_exactly_including_failovers() {
    // Server 0 fail-stops mid-run: requests time out, retry, then fail
    // over to the mirror replica. Every affected request must still
    // account for every nanosecond, with the doomed attempts relabeled
    // to RetryOverhead.
    let report = run_qsort(
        &hpbd_scenario(FaultPlan::new().server_crash(10_000_000, 0)),
        11,
    );
    let stats = report.hpbd_client.clone().expect("hpbd scenario");
    let summary = report.lifecycle.expect("lifecycle was enabled");
    let dev = summary.device("hpbd0").expect("swap traffic on hpbd0");
    assert!(
        stats.failovers > 0,
        "the crash must force failovers (timeouts={})",
        stats.timeouts
    );
    assert_eq!(
        dev.retries + dev.failovers,
        stats.retries + stats.failovers,
        "recorder recovery counters must match client stats"
    );
    assert_exact_sums(&summary, "crash");
    assert!(
        dev.phase_total_ns(Phase::RetryOverhead) > 0,
        "timed-out attempts must be charged to retry_overhead"
    );
    // The recovery-affected records in the ring individually tile too —
    // dig one out and check its phases are not all boring.
    let recovered = dev
        .records
        .iter()
        .find(|r| r.failovers > 0)
        .expect("ring retains at least one failed-over request");
    assert!(recovered.phase_ns[Phase::RetryOverhead as usize] > 0);
}

#[test]
fn nbd_requests_tile_exactly() {
    let mut config = ScenarioConfig::new(
        MB,
        8 * MB,
        SwapKind::Nbd {
            transport: Transport::IpoIb,
        },
    );
    config.record_lifecycle = true;
    let report = run_qsort(&config, 11);
    let summary = report.lifecycle.expect("lifecycle was enabled");
    let dev = summary
        .device("nbd0-IPoIB")
        .expect("swap traffic on the NBD device");
    assert!(dev.total > 100);
    assert_exact_sums(&summary, "nbd");
    assert!(
        dev.phase_total_ns(Phase::Wire) > 0,
        "the blocking transfer must be visible as wire time"
    );
}

#[test]
fn flight_recorder_queries_are_consistent() {
    let config = hpbd_scenario(FaultPlan::new());
    let scenario = Scenario::build(&config);
    scenario.run_qsort(512 * 1024, 11);
    let hub = scenario.engine.lifecycle();
    hub.with_recorder("hpbd0", |rec| {
        let slowest = rec.slowest(5);
        assert!(!slowest.is_empty());
        // Slowest-first ordering, ties broken by request id.
        for w in slowest.windows(2) {
            assert!(
                w[0].e2e_ns() > w[1].e2e_ns()
                    || (w[0].e2e_ns() == w[1].e2e_ns() && w[0].req < w[1].req)
            );
        }
        // by_request finds exactly the ring's records.
        for r in rec.records() {
            let found = rec.by_request(r.req).expect("ring record is queryable");
            assert_eq!(found.req, r.req);
        }
        assert!(rec.by_request(u64::MAX).is_none());
        // phase_breakdown percentiles are monotone in the percentile.
        let p50 = rec.phase_breakdown(50.0);
        let p99 = rec.phase_breakdown(99.0);
        for i in 0..p50.len() {
            assert!(p50[i] <= p99[i], "percentiles must be monotone");
        }
    })
    .expect("hpbd0 has a recorder");
}

#[test]
fn flight_recorder_dumps_are_byte_identical_across_reruns() {
    let dump = || {
        let config = hpbd_scenario(FaultPlan::new().server_crash(10_000_000, 0));
        let scenario = Scenario::build(&config);
        scenario.run_qsort(512 * 1024, 11);
        scenario
            .engine
            .lifecycle()
            .dump_json("hpbd0")
            .expect("hpbd0 recorded traffic")
    };
    let first = dump();
    let second = dump();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "flight-recorder dumps must be byte-identical for identical runs"
    );
    // And the dump is well-formed JSON with the expected schema tag.
    let doc = hpbd_suite::simtrace::json::parse(&first).expect("dump parses as JSON");
    let schema = doc
        .as_object()
        .and_then(|o| o.get("schema"))
        .and_then(|s| s.as_string())
        .expect("dump carries a schema field");
    assert_eq!(schema, "hpbd-flight-recorder-v1");
}

#[test]
fn anomalous_requests_auto_dump_once() {
    let dir = std::path::Path::new("target/flight-recorder/auto-dump-test");
    let _ = std::fs::remove_dir_all(dir);
    let config = hpbd_scenario(FaultPlan::new().server_crash(10_000_000, 0));
    let scenario = Scenario::build(&config);
    scenario.engine.lifecycle().set_dump_dir(dir);
    scenario.run_qsort(512 * 1024, 11);
    let dump = dir.join("flight-hpbd0.json");
    assert!(
        dump.is_file(),
        "first anomalous request must trigger the auto-dump"
    );
    let text = std::fs::read_to_string(&dump).expect("dump is readable");
    assert!(text.contains("\"schema\": \"hpbd-flight-recorder-v1\""));
}
