//! Fault-injection integration tests: the recovery subsystem exercised
//! through the public API, plus the zero-cost guarantee — an empty fault
//! plan must leave every observable of a run byte-identical.

use hpbd_suite::blockdev::{
    new_buffer, Bio, BlockDevice, DeviceHealth, FaultKind, IoError, IoOp, IoRequest,
};
use hpbd_suite::hpbd::ClusterBuilder;
use hpbd_suite::netmodel::{Calibration, Node};
use hpbd_suite::simcore::{Engine, SimDuration, Tracer};
use hpbd_suite::simfault::FaultPlan;
use hpbd_suite::vmsim::{DirectBackend, DirectConfig, LoadKind, SwapBackend};
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::cell::Cell;
use std::rc::Rc;

const MB: u64 = 1 << 20;
const PAGE: u64 = 4096;

/// Deterministic page fill derived from the page index.
fn pattern(page: u64) -> u8 {
    (page.wrapping_mul(2654435761) >> 16) as u8 | 1
}

fn checksum(buf: &[u8]) -> u64 {
    // FNV-1a, good enough to catch torn or stale pages.
    buf.iter().fold(0xcbf29ce484222325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Kill a server while a stream of swap-outs is in flight; every page must
/// still read back with the checksum it was written with, served from the
/// mirror replicas.
#[test]
fn killing_a_server_mid_swap_preserves_every_checksum() {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(true)
        .request_timeout_ns(2_000_000)
        .max_retries(1)
        // The write stream below starts at t=0; 50µs in, server 0 dies
        // with requests on the wire.
        .fault_plan(FaultPlan::new().server_crash(50_000, 0))
        .build(&engine, cal);
    let dev = &cluster.client;
    let pages = (dev.capacity() / PAGE).min(512);

    let mut expected = Vec::with_capacity(pages as usize);
    let write_failures = Rc::new(Cell::new(0u32));
    for p in 0..pages {
        let buf = new_buffer(PAGE as usize);
        buf.borrow_mut().fill(pattern(p));
        expected.push(checksum(&buf.borrow()));
        let failures = write_failures.clone();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            p * PAGE,
            buf,
            move |r| {
                if r.is_err() {
                    failures.set(failures.get() + 1);
                }
            },
        )));
    }
    engine.run_until_idle();
    assert_eq!(
        write_failures.get(),
        0,
        "mirrored writes must survive the crash"
    );
    assert!(cluster.servers[0].is_crashed(), "the fault plan fired");
    assert_eq!(dev.health(), DeviceHealth::Degraded { failed_servers: 1 });

    // Read everything back and verify the checksums.
    let bufs: Vec<_> = (0..pages)
        .map(|p| {
            let buf = new_buffer(PAGE as usize);
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                p * PAGE,
                buf.clone(),
                |r| r.unwrap(),
            )));
            buf
        })
        .collect();
    engine.run_until_idle();
    for (p, buf) in bufs.iter().enumerate() {
        assert_eq!(
            checksum(&buf.borrow()),
            expected[p],
            "page {p} corrupted by the crash/failover path"
        );
    }
    let stats = dev.stats();
    assert!(
        stats.failovers > 0,
        "reads of the dead server's extent must have failed over: {stats:?}"
    );
}

/// The same crash without mirroring: the affected I/O must fail cleanly
/// with a typed fault — never hang, never complete with wrong data.
#[test]
fn killing_a_server_without_mirroring_fails_cleanly() {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(2)
        .per_server_capacity(2 * MB)
        .request_timeout_ns(1_000_000)
        .fault_plan(FaultPlan::new().server_crash(10_000_000, 0))
        .build(&engine, cal);
    let dev = cluster.client.clone();
    // Let the crash fire, then touch the dead extent.
    engine.advance(SimDuration::from_nanos(20_000_000));
    let got = Rc::new(Cell::new(None));
    let sink = got.clone();
    dev.submit(IoRequest::single(Bio::new(
        IoOp::Read,
        0,
        new_buffer(PAGE as usize),
        move |r| sink.set(Some(r)),
    )));
    engine.run_until_idle();
    match got.get() {
        Some(Err(IoError::Fault(FaultKind::Timeout | FaultKind::ServerDead))) => {}
        other => panic!("expected a typed fault, got {other:?}"),
    }
}

/// The zero-cost guarantee of the fault subsystem: a run configured with an
/// explicitly-empty `FaultPlan` is byte-identical — virtual time, event
/// count, full metrics rendering, and the entire trace buffer — to a run
/// that never mentions fault plans at all.
#[test]
fn empty_fault_plan_is_byte_identical_to_no_fault_plan() {
    let run = |explicit_empty_plan: bool| {
        let mut config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
        if explicit_empty_plan {
            config.fault_plan = FaultPlan::new();
        }
        let tracer = Tracer::enabled();
        config.tracer = Some(tracer.clone());
        let scenario = Scenario::build(&config);
        let report = scenario.run_qsort(512 * 1024, 1234);
        (
            report.elapsed,
            report.events,
            report.metrics.render_text(),
            tracer.snapshot(),
        )
    };
    let baseline = run(false);
    let explicit = run(true);
    assert_eq!(baseline.0, explicit.0, "virtual time must match");
    assert_eq!(baseline.1, explicit.1, "event count must match");
    assert_eq!(baseline.2, explicit.2, "metrics rendering must match");
    assert_eq!(
        baseline.3, explicit.3,
        "trace buffers must be byte-identical"
    );
}

// -- swap-consistency oracle ---------------------------------------------

/// Fill byte for `page` as written by generation `gen` (never zero, and
/// distinct across nearby generations, so stale data is detectable).
fn gen_fill(page: u64, gen: u64) -> u8 {
    (page
        .wrapping_mul(2654435761)
        .wrapping_add(gen.wrapping_mul(0x9E37_79B9))
        >> 16) as u8
        | 1
}

/// The swap-consistency oracle: a shadow model records the last
/// *acknowledged* write per page; after the fault plan has run its course,
/// every completed read must return exactly that data — not an older
/// generation, not a neighbouring page's fill, not zeros.
///
/// Writes are issued in generations. Generation `g+1` is submitted only
/// after every write of generation `g` has acked, which keeps "last acked
/// write per page" well-defined even while timeouts, failover reissues,
/// delayed deliveries, and duplicated messages reorder the apply stream
/// underneath. Delay/duplicate budgets are armed early so they drain
/// against write traffic (a ghost RDMA push from a duplicated *read* could
/// land in a recycled staging span — see DESIGN.md §13) and are asserted
/// consumed before the read-back phase.
fn run_consistency_oracle(name: &str, plan: FaultPlan) -> hpbd_suite::hpbd::ClientStats {
    const GENS: u64 = 6;
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(true)
        .request_timeout_ns(2_000_000)
        .max_retries(1)
        .fault_plan(plan)
        .build(&engine, cal);
    let dev = &cluster.client;
    // Stride slot i to device page i*stride so the slots span every
    // server's extent — faults armed on any link see real traffic.
    let total_pages = dev.capacity() / PAGE;
    let slots = total_pages.min(384);
    let stride = (total_pages / slots).max(1);
    let page_of = |slot: u64| slot * stride;

    // Shadow model: shadow[i] = fill byte of the last acked write to the
    // page of slot i.
    let mut shadow = vec![0u8; slots as usize];
    let write_failures = Rc::new(Cell::new(0u32));
    for gen in 0..GENS {
        let mut submitted = Vec::new();
        for p in 0..slots {
            // Generation 0 writes every page; later generations rewrite a
            // deterministic ~3/4 subset so page histories diverge.
            if gen > 0 && (p.wrapping_mul(31).wrapping_add(gen * 17)) % 4 == 0 {
                continue;
            }
            let fill = gen_fill(p, gen);
            let buf = new_buffer(PAGE as usize);
            buf.borrow_mut().fill(fill);
            let failures = write_failures.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                page_of(p) * PAGE,
                buf,
                move |r| {
                    if r.is_err() {
                        failures.set(failures.get() + 1);
                    }
                },
            )));
            submitted.push((p, fill));
        }
        // Barrier: generation g fully acked before g+1 starts.
        engine.run_until_idle();
        assert_eq!(
            write_failures.get(),
            0,
            "[{name}] gen {gen}: mirrored writes must survive the plan"
        );
        for (p, fill) in submitted {
            shadow[p as usize] = fill;
        }
    }

    // Every delay/duplicate budget must have drained against the write
    // phases above; a leftover ghost could race the read-back staging.
    for (i, link) in cluster.links.iter().enumerate() {
        assert_eq!(
            link.pending_delay_dup(),
            0,
            "[{name}] link {i} still has armed delay/dup budget at read-back"
        );
    }

    let bufs: Vec<_> = (0..slots)
        .map(|p| {
            let buf = new_buffer(PAGE as usize);
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                page_of(p) * PAGE,
                buf.clone(),
                |r| r.unwrap(),
            )));
            buf
        })
        .collect();
    engine.run_until_idle();
    for (p, buf) in bufs.iter().enumerate() {
        let want = shadow[p];
        let buf = buf.borrow();
        assert!(
            buf.iter().all(|&b| b == want),
            "[{name}] page {p}: read {:#04x}… but last acked write was {want:#04x}",
            buf[0],
        );
    }
    dev.stats()
}

#[test]
fn oracle_survives_server_crash() {
    let stats = run_consistency_oracle("crash", FaultPlan::new().server_crash(50_000, 0));
    assert!(stats.failovers > 0, "crash must force failovers: {stats:?}");
}

#[test]
fn oracle_survives_crash_then_restart() {
    // The restarted server comes back EMPTY. The restart lands after the
    // client's retry/dead-marking window (~6 ms: 2 ms timeout + backed-off
    // 4 ms retry), so the client has written the server off and keeps
    // serving its extent from the replicas, never from the amnesiac store.
    let stats = run_consistency_oracle(
        "crash+restart",
        FaultPlan::new()
            .server_crash(50_000, 0)
            .server_restart(20_000_000, 0),
    );
    assert!(stats.failovers > 0, "crash must force failovers: {stats:?}");
}

#[test]
fn oracle_survives_in_window_crash_restart() {
    // The nastiest restart: the server dies and comes back *inside* the
    // client's timeout window, before any timer fires or retry budget
    // drains. No timeout ever declares it dead — from the client's
    // timers' point of view nothing happened; only the store is now
    // silently empty. Server epochs (DESIGN.md §13) close this hole: the
    // restarted daemon's replies carry a bumped generation, the client
    // spots the mismatch on the very first reply, retires the amnesiac,
    // and serves its extent from the mirror — the oracle's byte-exact
    // read-back proves no stale-empty page ever reaches the caller.
    let stats = run_consistency_oracle(
        "in-window restart",
        FaultPlan::new()
            .server_crash(50_000, 0)
            .server_restart(500_000, 0),
    );
    assert!(
        stats.epoch_wipes > 0,
        "the generation bump must be detected: {stats:?}"
    );
    assert!(
        stats.failovers > 0,
        "the amnesiac's extent must be served by the mirror: {stats:?}"
    );
}

#[test]
fn oracle_survives_message_loss() {
    let stats = run_consistency_oracle("loss", FaultPlan::new().message_loss(30_000, 2, 4));
    assert!(
        stats.timeouts > 0,
        "losses must surface as timeouts: {stats:?}"
    );
}

#[test]
fn oracle_survives_delayed_deliveries() {
    // 5 ms delay > 2 ms timeout: the original delivery outlives the retry
    // that replaced it and lands behind it — the reorder write fencing
    // exists for.
    let stats = run_consistency_oracle(
        "delay",
        FaultPlan::new().message_delay(30_000, 2, 4, 5_000_000),
    );
    assert!(
        stats.timeouts > 0,
        "delays must surface as timeouts: {stats:?}"
    );
}

#[test]
fn oracle_survives_duplicated_deliveries() {
    run_consistency_oracle(
        "duplicate",
        FaultPlan::new().message_duplicate(30_000, 3, 3),
    );
}

#[test]
fn oracle_survives_combined_fault_plan() {
    // Faults never touch server 1 (the crashed server's failover buddy),
    // so the replica path stays reachable and no write fails cleanly.
    let stats = run_consistency_oracle(
        "combined",
        FaultPlan::new()
            .server_crash(50_000, 0)
            .message_loss(30_000, 2, 2)
            .message_delay(40_000, 2, 2, 5_000_000)
            .message_duplicate(35_000, 3, 2),
    );
    assert!(
        stats.failovers > 0 && stats.timeouts > 0,
        "combined plan must exercise recovery: {stats:?}"
    );
}

// -- swap-consistency oracle, user-space direct path ----------------------

/// The consistency oracle driven through [`DirectBackend`] instead of raw
/// device submissions: per-page `store`/`load` with busy-poll completion,
/// the figU swap path. Write fencing is stamped inside the HPBD client at
/// submission, so the per-page stream must survive the same crash / loss /
/// delay / duplicate plans the block path does — stale reissues fenced,
/// failover reads served from the mirror, never torn or old data.
fn run_direct_consistency_oracle(name: &str, plan: FaultPlan) -> hpbd_suite::hpbd::ClientStats {
    const GENS: u64 = 6;
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let node = Node::new("client", 0, 2);
    let cluster = ClusterBuilder::new()
        .servers(4)
        .per_server_capacity(2 * MB)
        .mirror_writes(true)
        .request_timeout_ns(2_000_000)
        .max_retries(1)
        .fault_plan(plan)
        .build(&engine, cal);
    let backend = DirectBackend::new(
        engine.clone(),
        node,
        Rc::new(cluster.client.clone()),
        DirectConfig::default(),
    );
    let total_pages = backend.capacity() / PAGE;
    let slots = total_pages.min(384);
    let stride = (total_pages / slots).max(1);
    let page_of = |slot: u64| slot * stride;

    let mut shadow = vec![0u8; slots as usize];
    let write_failures = Rc::new(Cell::new(0u32));
    for gen in 0..GENS {
        let mut submitted = Vec::new();
        for p in 0..slots {
            if gen > 0 && (p.wrapping_mul(31).wrapping_add(gen * 17)) % 4 == 0 {
                continue;
            }
            let fill = gen_fill(p, gen);
            let buf = new_buffer(PAGE as usize);
            buf.borrow_mut().fill(fill);
            let failures = write_failures.clone();
            backend.store(
                page_of(p) * PAGE,
                buf,
                Box::new(move |r| {
                    if r.is_err() {
                        failures.set(failures.get() + 1);
                    }
                }),
            );
            submitted.push((p, fill));
        }
        // The contract says a store may be deferred until reap; the direct
        // backend forwards immediately, but reap anyway — the call must be
        // a harmless no-op.
        backend.reap();
        engine.run_until_idle();
        assert_eq!(
            write_failures.get(),
            0,
            "[{name}] gen {gen}: mirrored per-page stores must survive the plan"
        );
        for (p, fill) in submitted {
            shadow[p as usize] = fill;
        }
    }

    for (i, link) in cluster.links.iter().enumerate() {
        assert_eq!(
            link.pending_delay_dup(),
            0,
            "[{name}] link {i} still has armed delay/dup budget at read-back"
        );
    }

    // Demand loads back-to-back: the completion stream stays hot, so the
    // poll model busy-polls for these — the oracle covers the poll path,
    // not just the event path.
    let bufs: Vec<_> = (0..slots)
        .map(|p| {
            let buf = new_buffer(PAGE as usize);
            backend.load(
                page_of(p) * PAGE,
                LoadKind::Demand,
                buf.clone(),
                Box::new(|r| r.unwrap()),
            );
            buf
        })
        .collect();
    engine.run_until_idle();
    for (p, buf) in bufs.iter().enumerate() {
        let want = shadow[p];
        let buf = buf.borrow();
        assert!(
            buf.iter().all(|&b| b == want),
            "[{name}] page {p}: read {:#04x}… but last acked store was {want:#04x}",
            buf[0],
        );
    }
    let stats = backend.stats();
    assert!(
        stats.polled > 0,
        "[{name}] a hot demand-load stream must exercise the poll path: {stats:?}"
    );
    cluster.client.stats()
}

#[test]
fn direct_oracle_survives_server_crash() {
    let stats = run_direct_consistency_oracle("crash", FaultPlan::new().server_crash(50_000, 0));
    assert!(stats.failovers > 0, "crash must force failovers: {stats:?}");
}

#[test]
fn direct_oracle_survives_message_loss() {
    let stats = run_direct_consistency_oracle("loss", FaultPlan::new().message_loss(30_000, 2, 4));
    assert!(
        stats.timeouts > 0,
        "losses must surface as timeouts: {stats:?}"
    );
}

#[test]
fn direct_oracle_survives_delayed_deliveries() {
    let stats = run_direct_consistency_oracle(
        "delay",
        FaultPlan::new().message_delay(30_000, 2, 4, 5_000_000),
    );
    assert!(
        stats.timeouts > 0,
        "delays must surface as timeouts: {stats:?}"
    );
}

#[test]
fn direct_oracle_survives_combined_fault_plan() {
    let stats = run_direct_consistency_oracle(
        "combined",
        FaultPlan::new()
            .server_crash(50_000, 0)
            .message_loss(30_000, 2, 2)
            .message_delay(40_000, 2, 2, 5_000_000)
            .message_duplicate(35_000, 3, 2),
    );
    assert!(
        stats.failovers > 0 && stats.timeouts > 0,
        "combined plan must exercise recovery: {stats:?}"
    );
}

/// Counter-test for the differential above: a *non-empty* plan must leave
/// visible fingerprints (the fault fires, recovery counters move), proving
/// the differential test would catch an armed plan leaking into the
/// baseline.
#[test]
fn non_empty_fault_plan_changes_the_run() {
    let run = |faulty: bool| {
        let mut config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
        config.hpbd.mirror_writes = true;
        config.hpbd.request_timeout_ns = Some(2_000_000);
        if faulty {
            config.fault_plan = FaultPlan::new().server_crash(5_000_000, 0);
        }
        let scenario = Scenario::build(&config);
        let report = scenario.run_qsort(512 * 1024, 1234);
        let stats = report.hpbd_client.clone().unwrap();
        (report.elapsed, stats.failovers + stats.timeouts)
    };
    let (healthy_elapsed, healthy_faults) = run(false);
    let (faulty_elapsed, faulty_faults) = run(true);
    assert_eq!(healthy_faults, 0);
    assert!(
        faulty_faults > 0,
        "the crash must force timeouts or failovers"
    );
    assert_ne!(
        healthy_elapsed, faulty_elapsed,
        "losing a server must shift the virtual timeline"
    );
}
