//! Cross-crate integration tests: the whole stack from application access
//! down to simulated RDMA, exercised through the public API.

use hpbd_suite::blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
use hpbd_suite::hpbd::ClusterBuilder;
use hpbd_suite::netmodel::{Calibration, Transport};
use hpbd_suite::simcore::Engine;
use hpbd_suite::vmsim::{AddressSpace, PagedVec};
use hpbd_suite::workloads::{Scenario, ScenarioConfig, SwapKind};
use std::cell::Cell;
use std::rc::Rc;

const MB: u64 = 1 << 20;

#[test]
fn paged_data_round_trips_through_remote_memory() {
    // An array 4x local memory, written and read back entirely, with the
    // backing store on simulated remote memory over simulated InfiniBand.
    let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
    let scenario = Scenario::build(&config);
    let space = AddressSpace::new(&scenario.vm);
    let n = 2 * 1024 * 1024; // 8 MiB of i32
    let v: PagedVec<i32> = PagedVec::new(&space, n);
    for i in (0..n).step_by(7) {
        v.set(i, (i as i32).wrapping_mul(2654435761u32 as i32));
    }
    for i in (0..n).step_by(7) {
        assert_eq!(
            v.get(i),
            (i as i32).wrapping_mul(2654435761u32 as i32),
            "element {i} corrupted through the HPBD path"
        );
    }
    let stats = scenario.vm.stats();
    assert!(
        stats.swap_outs > 1000,
        "pressure must have paged: {stats:?}"
    );
    let client = scenario.hpbd.as_ref().unwrap().client.stats();
    assert!(client.bytes_out > 4 * MB, "data went over the wire");
}

#[test]
fn every_swap_backend_preserves_quicksort_correctness() {
    for kind in [
        SwapKind::Hpbd { servers: 1 },
        SwapKind::Hpbd { servers: 3 },
        SwapKind::Nbd {
            transport: Transport::IpoIb,
        },
        SwapKind::Nbd {
            transport: Transport::GigE,
        },
        SwapKind::Disk,
    ] {
        let config = ScenarioConfig::new(MB, 8 * MB, kind.clone());
        let scenario = Scenario::build(&config);
        // run_qsort debug-asserts sortedness; in release, verify by stats:
        // it must at least have completed with sane counters.
        let report = scenario.run_qsort(512 * 1024, 99);
        assert!(report.vm.swap_outs > 0, "{kind:?} should page");
        assert!(report.elapsed.as_nanos() > 0);
    }
}

#[test]
fn determinism_same_seed_same_virtual_time() {
    let run = || {
        let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 2 });
        let scenario = Scenario::build(&config);
        let report = scenario.run_qsort(512 * 1024, 1234);
        (report.elapsed, report.vm.swap_outs, report.requests)
    };
    let a = run();
    let b = run();
    assert_eq!(
        a, b,
        "identical runs must produce identical virtual timings"
    );
}

#[test]
fn different_seeds_differ_in_detail_but_not_shape() {
    let run = |seed| {
        let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 1 });
        let scenario = Scenario::build(&config);
        scenario.run_qsort(512 * 1024, seed).elapsed.as_secs_f64()
    };
    let a = run(1);
    let b = run(2);
    // Same configuration: runtimes within 20% of each other.
    assert!(
        (a - b).abs() / a < 0.2,
        "seed variance too large: {a} vs {b}"
    );
}

#[test]
fn hpbd_device_handles_interleaved_read_write_bursts() {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let cluster = ClusterBuilder::new()
        .servers(3)
        .per_server_capacity(4 * MB)
        .build(&engine, cal);
    let dev = &cluster.client;
    let done = Rc::new(Cell::new(0u32));
    // Interleave 128 writes and reads across the whole device.
    for i in 0..128u64 {
        let offset = (i * 97) % (dev.capacity() / 4096) * 4096;
        let buf = new_buffer(4096);
        buf.borrow_mut().fill((i % 251) as u8);
        let done2 = done.clone();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            offset,
            buf,
            move |r| {
                r.unwrap();
                done2.set(done2.get() + 1);
            },
        )));
        if i % 3 == 0 {
            let done2 = done.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                offset,
                new_buffer(4096),
                move |r| {
                    r.unwrap();
                    done2.set(done2.get() + 1);
                },
            )));
        }
    }
    engine.run_until_idle();
    assert_eq!(done.get(), 128 + 43);
    // All three servers were exercised by the scattered offsets.
    assert!(cluster.servers.iter().all(|s| s.stats().requests > 0));
}

#[test]
fn nbd_and_hpbd_agree_on_stored_bytes() {
    // The same write/read sequence through both devices yields the same
    // data (they differ only in timing).
    let run = |kind: SwapKind| -> Vec<u8> {
        let config = ScenarioConfig::new(32 * MB, 8 * MB, kind);
        let scenario = Scenario::build(&config);
        let queue = scenario.swap_queue.clone().expect("swap device");
        let engine = scenario.engine.clone();
        for i in 0..16u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8 + 1);
            queue.submit_now(Bio::new(IoOp::Write, i * 4096, buf, |r| r.unwrap()));
        }
        engine.run_until_idle();
        let out = new_buffer(16 * 4096);
        queue.submit_now(Bio::new(IoOp::Read, 0, out.clone(), |r| r.unwrap()));
        engine.run_until_idle();
        let v = out.borrow().clone();
        v
    };
    let hpbd = run(SwapKind::Hpbd { servers: 2 });
    let nbd = run(SwapKind::Nbd {
        transport: Transport::GigE,
    });
    assert_eq!(hpbd, nbd);
}

#[test]
fn two_processes_share_one_vm_without_aliasing() {
    let config = ScenarioConfig::new(2 * MB, 16 * MB, SwapKind::Hpbd { servers: 1 });
    let scenario = Scenario::build(&config);
    let s1 = AddressSpace::new(&scenario.vm);
    let s2 = AddressSpace::new(&scenario.vm);
    let a: PagedVec<u64> = PagedVec::new(&s1, 256 * 1024);
    let b: PagedVec<u64> = PagedVec::new(&s2, 256 * 1024);
    for i in 0..a.len() {
        a.set(i, i as u64);
        b.set(i, !(i as u64));
    }
    for i in (0..a.len()).step_by(13) {
        assert_eq!(a.get(i), i as u64);
        assert_eq!(b.get(i), !(i as u64));
    }
}

#[test]
fn quicksort_survives_memory_server_crash_with_mirroring() {
    use hpbd_suite::hpbd::HpbdConfig;
    use hpbd_suite::simcore::SimDuration;
    use hpbd_suite::vmsim::AddressSpace;
    use hpbd_suite::workloads::qsort::QsortTask;
    use hpbd_suite::workloads::Scheduler;

    let mut config = ScenarioConfig::new(MB, 16 * MB, SwapKind::Hpbd { servers: 3 });
    config.hpbd = HpbdConfig {
        mirror_writes: true,
        request_timeout_ns: Some(5_000_000),
        ..HpbdConfig::default()
    };
    let scenario = Scenario::build(&config);
    // One memory server dies 50ms into the run, mid-paging.
    let cluster = scenario.hpbd.as_ref().unwrap();
    let victim = cluster.servers[0].clone();
    scenario
        .engine
        .schedule_in(SimDuration::from_millis(50), move || victim.crash());

    let space = AddressSpace::new(&scenario.vm);
    let mut task = QsortTask::new(&space, 512 * 1024, 31, 4, "crash-qsort");
    Scheduler::new(scenario.engine.clone(), 2).run_one(&mut task);
    assert!(
        task.is_sorted(),
        "the sort must be correct despite losing a memory server"
    );
    let stats = cluster.client.stats();
    assert!(stats.timeouts >= 1, "the crash must have been detected");
    assert!(stats.failovers >= 1, "and survived via replicas");
    assert!(
        scenario.vm.stats().swap_ins > 0,
        "pages came back from swap (some from replicas)"
    );
}

#[test]
fn quicksort_survives_memory_revocation_mid_run() {
    use hpbd_suite::hpbd::HpbdConfig;
    use hpbd_suite::simcore::SimDuration;
    use hpbd_suite::vmsim::AddressSpace;
    use hpbd_suite::workloads::qsort::QsortTask;
    use hpbd_suite::workloads::Scheduler;

    let mut config = ScenarioConfig::new(MB, 12 * MB, SwapKind::Hpbd { servers: 3 });
    config.hpbd = HpbdConfig {
        chunk_bytes: 512 * 1024,
        spare_chunks: 6,
        ..HpbdConfig::default()
    };
    let scenario = Scenario::build(&config);
    let cluster = scenario.hpbd.as_ref().unwrap();
    // Server 0's host wants a quarter of its memory back, mid-run.
    let landlord = cluster.servers[0].clone();
    scenario
        .engine
        .schedule_in(SimDuration::from_millis(40), move || {
            landlord.revoke(0, 1 << 20)
        });

    let space = AddressSpace::new(&scenario.vm);
    let mut task = QsortTask::new(&space, 512 * 1024, 77, 4, "revoke-qsort");
    Scheduler::new(scenario.engine.clone(), 2).run_one(&mut task);
    assert!(task.is_sorted(), "sort correct across the revocation");
    let stats = cluster.client.stats();
    assert_eq!(stats.revocations, 1);
    assert_eq!(stats.migrations, 2, "two 512K chunks in the revoked 1MB");
}
