//! Swap-trace recording and replay.
//!
//! The request queue's dispatch log is a complete record of a workload's
//! block traffic. This module turns it into a portable artifact: save a
//! trace from one run, replay it against any device — the standard
//! methodology for apples-to-apples device comparison under identical I/O
//! (the paper's own Figure 6 is a request-stream profile; a trace makes
//! such analysis repeatable without re-running the application).
//!
//! Replay modes:
//! * **open-loop** — events fire at their recorded timestamps, preserving
//!   the workload's arrival process (devices slower than the recording
//!   device accumulate queueing).
//! * **closed-loop** — each request issues when the previous completes,
//!   measuring pure device service capability.
//!
//! The on-disk format is one line per event: `at_ns op offset len`, with
//! `op` ∈ {`R`, `W`} — trivially greppable and diffable.

use crate::device::BlockDevice;
use crate::queue::DispatchRecord;
use crate::request::{new_buffer, Bio, IoOp, IoRequest};
use simcore::{Counter, Engine, OnlineStats, Signal, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dispatch instant in the recorded run, ns.
    pub at_ns: u64,
    /// Read or write.
    pub op: IoOp,
    /// Device byte offset.
    pub offset: u64,
    /// Transfer length.
    pub len: u64,
}

/// A recorded block-I/O trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapTrace {
    /// Events in dispatch order.
    pub events: Vec<TraceEvent>,
}

impl SwapTrace {
    /// Build a trace from a request queue's dispatch log.
    pub fn from_dispatch_log(log: &[DispatchRecord]) -> SwapTrace {
        SwapTrace {
            events: log
                .iter()
                .map(|r| TraceEvent {
                    at_ns: r.at.as_nanos(),
                    op: r.op,
                    offset: r.offset,
                    len: r.len,
                })
                .collect(),
        }
    }

    /// Serialise to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 32);
        for e in &self.events {
            let op = match e.op {
                IoOp::Read => 'R',
                IoOp::Write => 'W',
            };
            out.push_str(&format!("{} {} {} {}\n", e.at_ns, op, e.offset, e.len));
        }
        out
    }

    /// Parse the line format; returns a line-numbered error message on
    /// malformed input.
    pub fn from_text(text: &str) -> Result<SwapTrace, String> {
        let mut events = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let mut next = |what: &str| {
                fields
                    .next()
                    .ok_or_else(|| format!("line {}: missing {what}", no + 1))
            };
            let at_ns: u64 = next("timestamp")?
                .parse()
                .map_err(|e| format!("line {}: bad timestamp: {e}", no + 1))?;
            let op = match next("op")? {
                "R" => IoOp::Read,
                "W" => IoOp::Write,
                other => return Err(format!("line {}: bad op {other:?}", no + 1)),
            };
            let offset: u64 = next("offset")?
                .parse()
                .map_err(|e| format!("line {}: bad offset: {e}", no + 1))?;
            let len: u64 = next("len")?
                .parse()
                .map_err(|e| format!("line {}: bad len: {e}", no + 1))?;
            events.push(TraceEvent {
                at_ns,
                op,
                offset,
                len,
            });
        }
        Ok(SwapTrace { events })
    }

    /// Total bytes moved by the trace, split (reads, writes).
    pub fn bytes(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for e in &self.events {
            match e.op {
                IoOp::Read => r += e.len,
                IoOp::Write => w += e.len,
            }
        }
        (r, w)
    }
}

/// Outcome of a replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Virtual time from first issue to last completion.
    pub makespan: simcore::SimDuration,
    /// Per-request service latency, µs.
    pub latency_us: OnlineStats,
    /// Requests replayed.
    pub requests: u64,
}

/// Replay `trace` against `device` in open-loop mode (recorded timestamps).
/// Runs the engine to completion.
pub fn replay_open_loop(
    engine: &Engine,
    device: Rc<dyn BlockDevice>,
    trace: &SwapTrace,
) -> ReplayReport {
    let latency: Rc<RefCell<OnlineStats>> = Rc::default();
    let done = Counter::new(0);
    let base = engine.now();
    for e in &trace.events {
        let device = device.clone();
        let latency = latency.clone();
        let done = done.clone();
        let (op, offset, len) = (e.op, e.offset, e.len);
        let eng = engine.clone();
        engine.schedule_at(SimTime(base.as_nanos() + e.at_ns), move || {
            let issued = eng.now();
            let eng2 = eng.clone();
            device.submit(
                IoRequest::single(Bio::new(op, offset, new_buffer(len as usize), |r| {
                    r.expect("replayed I/O failed")
                }))
                .on_complete(move |_| {
                    latency
                        .borrow_mut()
                        .record(eng2.now().since(issued).as_micros_f64());
                    done.inc();
                }),
            );
        });
    }
    engine.run_until_idle();
    assert_eq!(done.get(), trace.events.len() as u64, "all events replayed");
    let latency_us = latency.borrow().clone();
    ReplayReport {
        makespan: engine.now() - base,
        latency_us,
        requests: done.get(),
    }
}

/// Replay `trace` against `device` in closed-loop mode (issue the next
/// request when the previous completes).
pub fn replay_closed_loop(
    engine: &Engine,
    device: Rc<dyn BlockDevice>,
    trace: &SwapTrace,
) -> ReplayReport {
    let latency: Rc<RefCell<OnlineStats>> = Rc::default();
    let done = Counter::new(0);
    let base = engine.now();
    let events: Rc<Vec<TraceEvent>> = Rc::new(trace.events.clone());
    let finished = Signal::new("replay-finished");

    fn issue(
        idx: usize,
        engine: Engine,
        device: Rc<dyn BlockDevice>,
        events: Rc<Vec<TraceEvent>>,
        latency: Rc<RefCell<OnlineStats>>,
        done: Counter,
        finished: Signal,
    ) {
        let Some(e) = events.get(idx).copied() else {
            finished.set();
            return;
        };
        let issued = engine.now();
        let eng2 = engine.clone();
        let dev2 = device.clone();
        device.submit(
            IoRequest::single(Bio::new(e.op, e.offset, new_buffer(e.len as usize), |r| {
                r.expect("replayed I/O failed")
            }))
            .on_complete(move |_| {
                latency
                    .borrow_mut()
                    .record(eng2.now().since(issued).as_micros_f64());
                done.inc();
                issue(idx + 1, eng2.clone(), dev2, events, latency, done, finished);
            }),
        );
    }

    if !events.is_empty() {
        issue(
            0,
            engine.clone(),
            device.clone(),
            events.clone(),
            latency.clone(),
            done.clone(),
            finished.clone(),
        );
        engine.run_until_signal(&finished);
        engine.run_until_idle();
    }
    let latency_us = latency.borrow().clone();
    ReplayReport {
        makespan: engine.now() - base,
        latency_us,
        requests: done.get(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDiskDevice;
    use netmodel::{Calibration, Node};

    fn sample_trace() -> SwapTrace {
        SwapTrace {
            events: vec![
                TraceEvent {
                    at_ns: 0,
                    op: IoOp::Write,
                    offset: 0,
                    len: 4096,
                },
                TraceEvent {
                    at_ns: 50_000,
                    op: IoOp::Write,
                    offset: 4096,
                    len: 131072,
                },
                TraceEvent {
                    at_ns: 400_000,
                    op: IoOp::Read,
                    offset: 0,
                    len: 4096,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let parsed = SwapTrace::from_text(&t.to_text()).expect("parse");
        assert_eq!(parsed, t);
    }

    #[test]
    fn parser_rejects_garbage_with_line_numbers() {
        let err = SwapTrace::from_text("0 W 0 4096\n12 X 0 1\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = SwapTrace::from_text("nope").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn parser_skips_comments_and_blanks() {
        let t = SwapTrace::from_text("# header\n\n0 R 4096 8192\n").expect("parse");
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.bytes(), (8192, 0));
    }

    fn ramdisk(engine: &Engine) -> Rc<RamDiskDevice> {
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal,
            node,
            16 << 20,
            "ram",
        ))
    }

    #[test]
    fn open_loop_replay_honors_timestamps() {
        let engine = Engine::new();
        let dev = ramdisk(&engine);
        let report = replay_open_loop(&engine, dev, &sample_trace());
        assert_eq!(report.requests, 3);
        // The last event fires at 400us; makespan at least that.
        assert!(report.makespan.as_nanos() >= 400_000);
        assert!(report.latency_us.count() == 3);
    }

    #[test]
    fn closed_loop_replay_serializes() {
        let engine = Engine::new();
        let dev = ramdisk(&engine);
        let report = replay_closed_loop(&engine, dev, &sample_trace());
        assert_eq!(report.requests, 3);
        // Closed loop ignores timestamps: makespan = sum of service times,
        // far below the 400us recorded span for a fast ramdisk.
        assert!(report.makespan.as_nanos() < 400_000);
    }

    #[test]
    fn empty_trace_replays_trivially() {
        let engine = Engine::new();
        let dev = ramdisk(&engine);
        let report = replay_closed_loop(&engine, dev, &SwapTrace::default());
        assert_eq!(report.requests, 0);
    }
}
