//! The local ATA disk baseline.
//!
//! Models the testbed's 40 GB ST340014A drive: a single head served
//! serially, paying average seek + rotational delay for any non-sequential
//! access and only the media transfer rate for sequential successors. This
//! cost structure is what makes disk swap tolerable for testswap's
//! largely-sequential clusters (Figure 5: disk ≈ 2.2× slower than HPBD) but
//! catastrophic for quicksort's scattered faults (Figure 7: 4.5×) and for
//! two interleaved quicksorts (Figure 9: 36× the local-memory time).

use crate::device::{BlockDevice, DeviceHealth};
use crate::request::{FaultKind, IoError, IoOp, IoRequest};
use netmodel::DiskParams;
use simcore::{Engine, Resource};
use std::cell::{Cell, RefCell};

/// A simulated mechanical disk with data storage.
pub struct SimDisk {
    engine: Engine,
    params: DiskParams,
    capacity: u64,
    /// Serial service: one head.
    head: Resource,
    /// End offset of the most recently *scheduled* request, for sequential
    /// detection (the head is where the last queued request leaves it).
    last_end: Cell<u64>,
    bytes: RefCell<Vec<u8>>,
    name: String,
    seeks: Cell<u64>,
    sequential_hits: Cell<u64>,
    shut_down: Cell<bool>,
}

impl SimDisk {
    /// Create a disk of `capacity` bytes.
    pub fn new(
        engine: Engine,
        params: DiskParams,
        capacity: u64,
        name: impl Into<String>,
    ) -> SimDisk {
        SimDisk {
            engine,
            params,
            capacity,
            head: Resource::new("disk-head"),
            last_end: Cell::new(u64::MAX), // first access always seeks
            bytes: RefCell::new(vec![0u8; capacity as usize]),
            name: name.into(),
            seeks: Cell::new(0),
            sequential_hits: Cell::new(0),
            shut_down: Cell::new(false),
        }
    }

    /// Number of seeking (non-sequential) accesses served.
    pub fn seeks(&self) -> u64 {
        self.seeks.get()
    }

    /// Number of sequential accesses served.
    pub fn sequential_hits(&self) -> u64 {
        self.sequential_hits.get()
    }
}

impl BlockDevice for SimDisk {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, req: IoRequest) {
        let engine = self.engine.clone();
        if self.shut_down.get() {
            engine.schedule_at(engine.now(), move || {
                req.complete(Err(IoError::Fault(FaultKind::ServerDead)))
            });
            return;
        }
        if req.offset() + req.len() > self.capacity {
            engine.schedule_at(engine.now(), move || req.complete(Err(IoError::OutOfRange)));
            return;
        }
        let sequential = req.offset() == self.last_end.get();
        self.last_end.set(req.end());
        if sequential {
            self.sequential_hits.set(self.sequential_hits.get() + 1);
        } else {
            self.seeks.set(self.seeks.get() + 1);
        }
        let service = self.params.service_time(req.len(), sequential);
        let (_, end) = self.head.reserve(engine.now(), service);

        // Move the bytes at completion time.
        let offset = req.offset() as usize;
        let len = req.len() as usize;
        match req.op() {
            IoOp::Write => {
                let data = req.gather();
                let bytes = &self.bytes;
                bytes.borrow_mut()[offset..offset + len].copy_from_slice(&data);
                engine.schedule_at(end, move || req.complete(Ok(())));
            }
            IoOp::Read => {
                let data = self.bytes.borrow()[offset..offset + len].to_vec();
                engine.schedule_at(end, move || {
                    req.scatter(&data);
                    req.complete(Ok(()));
                });
            }
        }
    }

    fn shutdown(&self) {
        self.shut_down.set(true);
    }

    fn health(&self) -> DeviceHealth {
        if self.shut_down.get() {
            DeviceHealth::Failed
        } else {
            DeviceHealth::Healthy
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{new_buffer, Bio};
    use netmodel::Calibration;
    use std::rc::Rc;

    fn setup() -> (Engine, SimDisk) {
        let engine = Engine::new();
        let disk = SimDisk::new(
            engine.clone(),
            Calibration::cluster_2005().disk,
            1 << 24,
            "hda",
        );
        (engine, disk)
    }

    fn write_at(disk: &SimDisk, offset: u64, len: usize) {
        disk.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            offset,
            new_buffer(len),
            |r| assert!(r.is_ok()),
        )));
    }

    #[test]
    fn sequential_run_skips_seeks() {
        let (engine, disk) = setup();
        for i in 0..8u64 {
            write_at(&disk, i * 4096, 4096);
        }
        engine.run_until_idle();
        assert_eq!(disk.seeks(), 1, "only the first access seeks");
        assert_eq!(disk.sequential_hits(), 7);
    }

    #[test]
    fn random_accesses_all_seek() {
        let (engine, disk) = setup();
        for &off in &[0u64, 1 << 20, 4096, 1 << 22] {
            write_at(&disk, off, 4096);
        }
        engine.run_until_idle();
        assert_eq!(disk.seeks(), 4);
    }

    #[test]
    fn random_is_orders_of_magnitude_slower() {
        let params = Calibration::cluster_2005().disk;
        // 8 random 4K pages vs 8 sequential.
        let t_random: u64 = (0..8)
            .map(|_| params.service_time(4096, false).as_nanos())
            .sum();
        let t_seq: u64 = params.service_time(4096, false).as_nanos()
            + (0..7)
                .map(|_| params.service_time(4096, true).as_nanos())
                .sum::<u64>();
        assert!(t_random > 5 * t_seq, "random {t_random} vs seq {t_seq}");
    }

    #[test]
    fn data_integrity_roundtrip() {
        let (engine, disk) = setup();
        let wbuf = new_buffer(8192);
        wbuf.borrow_mut().fill(0x3C);
        disk.submit(IoRequest::single(Bio::new(IoOp::Write, 16384, wbuf, |r| {
            assert!(r.is_ok())
        })));
        engine.run_until_idle();
        let rbuf = new_buffer(8192);
        disk.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            16384,
            rbuf.clone(),
            |r| assert!(r.is_ok()),
        )));
        engine.run_until_idle();
        assert!(rbuf.borrow().iter().all(|&b| b == 0x3C));
    }

    #[test]
    fn requests_serve_serially() {
        let (engine, disk) = setup();
        write_at(&disk, 0, 4096);
        write_at(&disk, 1 << 20, 4096);
        engine.run_until_idle();
        let params = Calibration::cluster_2005().disk;
        let expect = 2 * params.service_time(4096, false).as_nanos();
        assert_eq!(engine.now().as_nanos(), expect);
    }

    #[test]
    fn out_of_range_rejected() {
        let (engine, disk) = setup();
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            disk.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                disk.capacity(),
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(IoError::OutOfRange)));
    }

    #[test]
    fn shutdown_fails_new_submissions_cleanly() {
        let (engine, disk) = setup();
        assert_eq!(disk.health(), DeviceHealth::Healthy);
        disk.shutdown();
        assert_eq!(disk.health(), DeviceHealth::Failed);
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            disk.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                0,
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        // Still asynchronous, even on the failure path.
        assert!(got.get().is_none());
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(IoError::Fault(FaultKind::ServerDead))));
    }
}
