//! A C-SCAN elevator in front of a block device.
//!
//! The 2.4 kernel's I/O scheduler reorders queued requests by sector so the
//! disk head sweeps in one direction (wrapping at the end), turning random
//! queued traffic into semi-sorted traffic. [`Elevator`] wraps any
//! [`BlockDevice`] with that policy and a bounded in-flight window: when
//! multiple requests are queued — as in Figure 9's two interleaved fault
//! streams — the sweep recovers some sequentiality that pure FIFO destroys.
//!
//! (The paper's figures were measured on the real 2.4 elevator; the
//! workloads' single-stream traffic mostly arrives sorted anyway, which is
//! why `SimDisk` alone reproduces Figures 5/7. The elevator exists for the
//! multi-stream ablation and for completeness of the block layer.)

use crate::device::BlockDevice;
use crate::request::IoRequest;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// C-SCAN reordering wrapper over a block device.
pub struct Elevator {
    device: Rc<dyn BlockDevice>,
    /// Requests waiting, keyed by (offset, tiebreak) in sweep order.
    queue: Rc<RefCell<BTreeMap<(u64, u64), IoRequest>>>,
    /// Head sweep position: next request at or above this offset.
    sweep_from: Rc<Cell<u64>>,
    /// Requests handed to the device and not yet completed.
    in_flight: Rc<Cell<usize>>,
    /// Dispatch window (the device sees at most this many at once).
    window: usize,
    seq: Cell<u64>,
    name: String,
}

impl Elevator {
    /// Wrap `device` with a C-SCAN queue dispatching up to `window`
    /// requests at a time.
    pub fn new(device: Rc<dyn BlockDevice>, window: usize) -> Elevator {
        assert!(window > 0);
        let name = format!("cscan({})", device.name());
        Elevator {
            device,
            queue: Rc::new(RefCell::new(BTreeMap::new())),
            sweep_from: Rc::new(Cell::new(0)),
            in_flight: Rc::new(Cell::new(0)),
            window,
            seq: Cell::new(0),
            name,
        }
    }

    /// Requests currently queued (not yet dispatched).
    pub fn queued(&self) -> usize {
        self.queue.borrow().len()
    }

    fn dispatch(&self) {
        self.clone_refs().dispatch_again();
    }

    fn clone_refs(&self) -> ElevatorRefs {
        ElevatorRefs {
            device: self.device.clone(),
            queue: self.queue.clone(),
            sweep_from: self.sweep_from.clone(),
            in_flight: self.in_flight.clone(),
            window: self.window,
        }
    }
}

/// Weak-ish bundle so completion callbacks can re-enter dispatch without a
/// full `Elevator` clone cycle.
struct ElevatorRefs {
    device: Rc<dyn BlockDevice>,
    queue: Rc<RefCell<BTreeMap<(u64, u64), IoRequest>>>,
    sweep_from: Rc<Cell<u64>>,
    in_flight: Rc<Cell<usize>>,
    window: usize,
}

impl ElevatorRefs {
    fn dispatch_again(&self) {
        // Mirror Elevator::dispatch over the shared state.
        while self.in_flight.get() < self.window {
            let next = {
                let mut queue = self.queue.borrow_mut();
                let key = queue
                    .range((self.sweep_from.get(), 0)..)
                    .map(|(&k, _)| k)
                    .next()
                    .or_else(|| queue.keys().next().copied());
                key.and_then(|k| queue.remove(&k).map(|req| (k, req)))
            };
            let Some(((offset, _), req)) = next else {
                return;
            };
            self.sweep_from.set(offset);
            self.in_flight.set(self.in_flight.get() + 1);
            let refs = ElevatorRefs {
                device: self.device.clone(),
                queue: self.queue.clone(),
                sweep_from: self.sweep_from.clone(),
                in_flight: self.in_flight.clone(),
                window: self.window,
            };
            let in_flight = self.in_flight.clone();
            let notified = req.on_complete(move |_| {
                in_flight.set(in_flight.get() - 1);
                refs.dispatch_again();
            });
            self.device.submit(notified);
        }
    }
}

impl BlockDevice for Elevator {
    fn capacity(&self) -> u64 {
        self.device.capacity()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, req: IoRequest) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.queue.borrow_mut().insert((req.offset(), seq), req);
        self.dispatch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::SimDisk;
    use crate::request::{new_buffer, Bio, IoOp};
    use netmodel::Calibration;
    use simcore::Engine;

    fn disk_behind_elevator(window: usize) -> (Engine, Rc<SimDisk>, Elevator) {
        let engine = Engine::new();
        let disk = Rc::new(SimDisk::new(
            engine.clone(),
            Calibration::cluster_2005().disk,
            1 << 24,
            "hda",
        ));
        let elevator = Elevator::new(disk.clone(), window);
        (engine, disk, elevator)
    }

    fn write_at(dev: &Elevator, offset: u64) {
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            offset,
            new_buffer(4096),
            |r| r.unwrap(),
        )));
    }

    #[test]
    fn cscan_sorts_a_backlog_into_a_sweep() {
        // Window of 1 so everything queues, submitted in scrambled order.
        let (engine, disk, elevator) = disk_behind_elevator(1);
        for &off in &[5u64, 1, 4, 2, 3, 0, 7, 6] {
            write_at(&elevator, off * 4096);
        }
        engine.run_until_idle();
        // After the first (in-flight) request, the sweep serves the rest in
        // ascending order: nearly every access is sequential.
        assert!(
            disk.sequential_hits() >= 5,
            "sweep should recover sequentiality: {} hits, {} seeks",
            disk.sequential_hits(),
            disk.seeks()
        );
    }

    #[test]
    fn cscan_beats_fifo_on_interleaved_streams() {
        // Two interleaved ascending streams (the Figure 9 disk pattern).
        let offsets: Vec<u64> = (0..32u64)
            .map(|i| {
                if i % 2 == 0 {
                    (i / 2) * 4096
                } else {
                    (1 << 20) + (i / 2) * 4096
                }
            })
            .collect();
        let run = |window: usize| {
            let (engine, disk, elevator) = disk_behind_elevator(window);
            for &off in &offsets {
                write_at(&elevator, off);
            }
            engine.run_until_idle();
            (engine.now().as_nanos(), disk.seeks())
        };
        let (t_fifo_like, seeks_fifo) = run(1); // window 1 still sorts the backlog
                                                // True FIFO: submit directly to a raw disk.
        let engine = Engine::new();
        let disk = Rc::new(SimDisk::new(
            engine.clone(),
            Calibration::cluster_2005().disk,
            1 << 24,
            "hda",
        ));
        for &off in &offsets {
            disk.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                off,
                new_buffer(4096),
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let (t_raw, seeks_raw) = (engine.now().as_nanos(), disk.seeks());
        assert!(
            seeks_fifo < seeks_raw,
            "elevator should reduce seeks: {seeks_fifo} vs {seeks_raw}"
        );
        assert!(
            t_fifo_like < t_raw,
            "and total time: {t_fifo_like} vs {t_raw}"
        );
    }

    #[test]
    fn all_requests_complete_exactly_once() {
        use std::cell::Cell;
        let (engine, _disk, elevator) = disk_behind_elevator(2);
        let count = Rc::new(Cell::new(0));
        for i in (0..16u64).rev() {
            let count = count.clone();
            elevator.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 8192,
                new_buffer(4096),
                move |r| {
                    r.unwrap();
                    count.set(count.get() + 1);
                },
            )));
        }
        engine.run_until_idle();
        assert_eq!(count.get(), 16);
        assert_eq!(elevator.queued(), 0);
    }

    #[test]
    fn capacity_and_name_delegate() {
        let (_e, _d, elevator) = disk_behind_elevator(4);
        assert_eq!(elevator.capacity(), 1 << 24);
        assert!(elevator.name().starts_with("cscan("));
    }
}
