//! Memory-backed storage and the local RamDisk device.
//!
//! [`Storage`] is the raw byte store (also used by the HPBD and NBD memory
//! servers as their "RamDisk based files", paper §4.2). [`RamDiskDevice`]
//! wraps one as a local [`BlockDevice`] whose only cost is the memcpy
//! between the I/O buffers and the store, charged to the owning node's CPU.

use crate::device::BlockDevice;
use crate::request::{IoError, IoOp, IoRequest};
use netmodel::{Calibration, Node};
use simcore::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// A plain byte store with bounds-checked access.
pub struct Storage {
    bytes: RefCell<Vec<u8>>,
}

impl Storage {
    /// Allocate `capacity` zeroed bytes.
    pub fn new(capacity: u64) -> Storage {
        Storage {
            bytes: RefCell::new(vec![0u8; capacity as usize]),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.borrow().len() as u64
    }

    /// Whether `offset..offset+len` is inside the store.
    pub fn in_range(&self, offset: u64, len: u64) -> bool {
        offset
            .checked_add(len)
            .is_some_and(|end| end <= self.capacity())
    }

    /// Copy out of the store. Panics if out of range (callers validate).
    pub fn read_at(&self, offset: u64, out: &mut [u8]) {
        let bytes = self.bytes.borrow();
        let at = offset as usize;
        out.copy_from_slice(&bytes[at..at + out.len()]);
    }

    /// Copy into the store. Panics if out of range (callers validate).
    pub fn write_at(&self, offset: u64, data: &[u8]) {
        let mut bytes = self.bytes.borrow_mut();
        let at = offset as usize;
        bytes[at..at + data.len()].copy_from_slice(data);
    }

    /// Zero the whole store. Models a host crash: the registered chunks
    /// (and every page they held) are gone; capacity is unchanged.
    pub fn wipe(&self) {
        self.bytes.borrow_mut().fill(0);
    }
}

/// A local memory-backed block device.
pub struct RamDiskDevice {
    engine: Engine,
    cal: Rc<Calibration>,
    node: Node,
    storage: Rc<Storage>,
    name: String,
}

impl RamDiskDevice {
    /// Create a ramdisk of `capacity` bytes on `node`.
    pub fn new(
        engine: Engine,
        cal: Rc<Calibration>,
        node: Node,
        capacity: u64,
        name: impl Into<String>,
    ) -> RamDiskDevice {
        RamDiskDevice {
            engine,
            cal,
            node,
            storage: Rc::new(Storage::new(capacity)),
            name: name.into(),
        }
    }

    /// The backing store (shared with tests).
    pub fn storage(&self) -> &Rc<Storage> {
        &self.storage
    }
}

impl BlockDevice for RamDiskDevice {
    fn capacity(&self) -> u64 {
        self.storage.capacity()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn submit(&self, req: IoRequest) {
        let engine = self.engine.clone();
        if !self.storage.in_range(req.offset(), req.len()) {
            engine.schedule_at(engine.now(), move || req.complete(Err(IoError::OutOfRange)));
            return;
        }
        // The only cost is the copy, charged to this node's CPU.
        let dur = self.cal.memcpy_time(req.len());
        let (_, end) = self.node.cpu().reserve(engine.now(), dur);
        let storage = self.storage.clone();
        engine.schedule_at(end, move || {
            match req.op() {
                IoOp::Write => storage.write_at(req.offset(), &req.gather()),
                IoOp::Read => {
                    let mut data = vec![0u8; req.len() as usize];
                    storage.read_at(req.offset(), &mut data);
                    req.scatter(&data);
                }
            }
            req.complete(Ok(()));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{new_buffer, Bio};
    use std::cell::Cell;

    fn setup(capacity: u64) -> (Engine, RamDiskDevice) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let dev = RamDiskDevice::new(engine.clone(), cal, node, capacity, "ramdisk0");
        (engine, dev)
    }

    #[test]
    fn write_then_read_roundtrip() {
        let (engine, dev) = setup(16 * 4096);
        let wbuf = new_buffer(4096);
        wbuf.borrow_mut().fill(0x5A);
        let wrote = Rc::new(Cell::new(false));
        {
            let wrote = wrote.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                8192,
                wbuf,
                move |r| {
                    assert!(r.is_ok());
                    wrote.set(true);
                },
            )));
        }
        engine.run_until_idle();
        assert!(wrote.get());

        let rbuf = new_buffer(4096);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            8192,
            rbuf.clone(),
            |r| assert!(r.is_ok()),
        )));
        engine.run_until_idle();
        assert!(rbuf.borrow().iter().all(|&b| b == 0x5A));
    }

    #[test]
    fn out_of_range_fails_asynchronously() {
        let (engine, dev) = setup(4096);
        let result = Rc::new(Cell::new(None));
        {
            let result = result.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                4096,
                new_buffer(1),
                move |r| result.set(Some(r)),
            )));
        }
        // Not completed synchronously.
        assert!(result.get().is_none());
        engine.run_until_idle();
        assert_eq!(result.get(), Some(Err(IoError::OutOfRange)));
    }

    #[test]
    fn cost_is_memcpy_on_cpu() {
        let (engine, dev) = setup(1 << 20);
        let cal = Calibration::cluster_2005();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            0,
            new_buffer(128 * 1024),
            |_| {},
        )));
        engine.run_until_idle();
        assert_eq!(
            engine.now().as_nanos(),
            cal.memcpy_time(128 * 1024).as_nanos()
        );
    }

    #[test]
    fn storage_bounds() {
        let s = Storage::new(100);
        assert!(s.in_range(0, 100));
        assert!(!s.in_range(1, 100));
        assert!(!s.in_range(u64::MAX, 2));
    }

    #[test]
    fn wipe_zeroes_but_keeps_capacity() {
        let s = Storage::new(8);
        s.write_at(0, &[7u8; 8]);
        s.wipe();
        assert_eq!(s.capacity(), 8);
        let mut out = [1u8; 8];
        s.read_at(0, &mut out);
        assert_eq!(out, [0u8; 8]);
    }
}
