//! The merging request queue (the kernel I/O scheduler front-end).
//!
//! Swap I/O leaves the VM as page-sized bios; the block layer coalesces
//! adjacent ones into large transfers capped at 128 KiB (the Linux 2.4
//! single-request bound the paper cites in §4.2.5 and profiles in
//! Figure 6). [`RequestQueue`] stages bios while "plugged", then
//! [`RequestQueue::flush`] sorts them, merges exactly-adjacent same-op runs,
//! chunks at the cap, charges the kernel's per-request submission cost to
//! the node CPU, and dispatches to the device. Every dispatch is logged so
//! the Figure 6 harness can reconstruct the request-size profile.

use crate::device::BlockDevice;
use crate::request::{Bio, IoOp, IoRequest};
use netmodel::{Calibration, Node};
use simcore::{Engine, OnlineStats, SimDuration, SimTime};
use simtrace::{Counter, Histogram};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Maximum merged request size (Linux 2.4: 128 KiB).
pub const MAX_REQUEST_BYTES: u64 = 128 * 1024;

/// Default staged-bio count that forces a flush ("unplug") even without an
/// explicit [`RequestQueue::flush`], so a runaway producer cannot stage
/// unboundedly.
pub const DEFAULT_FLUSH_BACKSTOP: usize = 4096;

/// One dispatched request, for instrumentation.
#[derive(Clone, Copy, Debug)]
pub struct DispatchRecord {
    /// Dispatch instant.
    pub at: SimTime,
    /// Read or write.
    pub op: IoOp,
    /// Extent offset on the device.
    pub offset: u64,
    /// Extent length.
    pub len: u64,
    /// Number of bios merged into the request.
    pub bios: usize,
}

/// A merging request queue in front of one block device.
pub struct RequestQueue {
    engine: Engine,
    cal: Rc<Calibration>,
    node: Node,
    device: Rc<dyn BlockDevice>,
    max_request: u64,
    flush_backstop: usize,
    staged: RefCell<Vec<Bio>>,
    /// Recycled batch buffer: `flush` swaps it with `staged` so the staging
    /// vector keeps its capacity across plug/unplug cycles.
    spare: Cell<Vec<Bio>>,
    log: Rc<RefCell<Vec<DispatchRecord>>>,
    /// Per-request service latency (dispatch → completion), microseconds,
    /// split by operation.
    read_latency: Rc<RefCell<OnlineStats>>,
    write_latency: Rc<RefCell<OnlineStats>>,
}

impl RequestQueue {
    /// Create a queue over `device` with the standard 128 KiB cap.
    pub fn new(
        engine: Engine,
        cal: Rc<Calibration>,
        node: Node,
        device: Rc<dyn BlockDevice>,
    ) -> RequestQueue {
        RequestQueue::with_cap(engine, cal, node, device, MAX_REQUEST_BYTES)
    }

    /// Create a queue with a custom merge cap (ablation experiments).
    pub fn with_cap(
        engine: Engine,
        cal: Rc<Calibration>,
        node: Node,
        device: Rc<dyn BlockDevice>,
        max_request: u64,
    ) -> RequestQueue {
        RequestQueue::with_limits(
            engine,
            cal,
            node,
            device,
            max_request,
            DEFAULT_FLUSH_BACKSTOP,
        )
    }

    /// Create a queue with both batching limits explicit: the merge cap in
    /// bytes and the staged-bio backstop that forces an unplug.
    pub fn with_limits(
        engine: Engine,
        cal: Rc<Calibration>,
        node: Node,
        device: Rc<dyn BlockDevice>,
        max_request: u64,
        flush_backstop: usize,
    ) -> RequestQueue {
        assert!(max_request > 0);
        assert!(flush_backstop > 0);
        RequestQueue {
            engine,
            cal,
            node,
            device,
            max_request,
            flush_backstop,
            staged: RefCell::new(Vec::new()),
            spare: Cell::new(Vec::new()),
            log: Rc::new(RefCell::new(Vec::new())),
            read_latency: Rc::new(RefCell::new(OnlineStats::new())),
            write_latency: Rc::new(RefCell::new(OnlineStats::new())),
        }
    }

    /// Service-latency statistics for read (swap-in) requests, in µs.
    pub fn read_latency(&self) -> OnlineStats {
        self.read_latency.borrow().clone()
    }

    /// Service-latency statistics for write (swap-out) requests, in µs.
    pub fn write_latency(&self) -> OnlineStats {
        self.write_latency.borrow().clone()
    }

    /// The device behind the queue.
    pub fn device(&self) -> &Rc<dyn BlockDevice> {
        &self.device
    }

    /// Shared handle to the dispatch log (Figure 6 instrumentation).
    pub fn dispatch_log(&self) -> Rc<RefCell<Vec<DispatchRecord>>> {
        self.log.clone()
    }

    /// Bios staged and not yet flushed.
    pub fn staged_len(&self) -> usize {
        self.staged.borrow().len()
    }

    /// Stage a bio ("plugged" submission). Call [`RequestQueue::flush`] to
    /// dispatch — mirroring the kernel's plug/unplug batching that gives
    /// adjacent swap pages a chance to merge.
    pub fn submit(&self, bio: Bio) {
        assert!(!bio.is_empty(), "zero-length bio");
        self.staged.borrow_mut().push(bio);
        // Backstop so a runaway producer cannot stage unboundedly.
        if self.staged.borrow().len() >= self.flush_backstop {
            self.flush();
        }
    }

    /// Convenience: stage and immediately flush one bio.
    pub fn submit_now(&self, bio: Bio) {
        self.submit(bio);
        self.flush();
    }

    /// Sort, merge, chunk and dispatch everything staged.
    pub fn flush(&self) {
        let mut batch = {
            let mut staged = self.staged.borrow_mut();
            if staged.is_empty() {
                return;
            }
            std::mem::replace(&mut *staged, self.spare.take())
        };
        // Stable sort by offset keeps same-offset submission order.
        batch.sort_by_key(|b| b.offset);

        // Handles are resolved once per flush; counter/histogram entries are
        // created at the first non-empty flush, exactly when per-dispatch
        // `inc`/`observe` calls used to create them (rendered metrics stay
        // byte-identical).
        let metrics = self.engine.metrics();
        let requests_ctr = metrics.counter_handle("blockdev.requests");
        let bios_ctr = metrics.counter_handle("blockdev.bios");
        let bios_per_request = metrics.histogram_handle("blockdev.bios_per_request");

        let now = self.engine.now();
        let mut run: Vec<Bio> = Vec::new();
        let mut run_len: u64 = 0;
        for bio in batch.drain(..) {
            let start_new = match run.last() {
                Some(last) => {
                    last.op != bio.op
                        || last.end() != bio.offset
                        || run_len + bio.len() > self.max_request
                }
                None => false,
            };
            if start_new {
                self.dispatch(
                    now,
                    std::mem::take(&mut run),
                    &requests_ctr,
                    &bios_ctr,
                    &bios_per_request,
                );
                run_len = 0;
            }
            run_len += bio.len();
            run.push(bio);
        }
        if !run.is_empty() {
            self.dispatch(now, run, &requests_ctr, &bios_ctr, &bios_per_request);
        }
        self.spare.set(batch);
    }

    fn dispatch(
        &self,
        now: SimTime,
        run: Vec<Bio>,
        requests_ctr: &Counter,
        bios_ctr: &Counter,
        bios_per_request: &Histogram,
    ) {
        let req = IoRequest::from_bios(run);
        // Kernel block-layer work scales with the pages in the request
        // (swap-cache bookkeeping, bio setup, page table updates).
        let submit_cost =
            SimDuration::from_nanos(self.cal.compute.block_submit_ns * req.bio_count() as u64);
        let (_, t) = self.node.cpu().reserve(now, submit_cost);
        self.log.borrow_mut().push(DispatchRecord {
            at: t,
            op: req.op(),
            offset: req.offset(),
            len: req.len(),
            bios: req.bio_count(),
        });
        let device = self.device.clone();
        let stats = match req.op() {
            IoOp::Read => self.read_latency.clone(),
            IoOp::Write => self.write_latency.clone(),
        };
        let engine = self.engine.clone();
        let metrics = self.engine.metrics();
        requests_ctr.inc();
        bios_ctr.add(req.bio_count() as u64);
        bios_per_request.observe(req.bio_count() as f64);
        self.engine.schedule_at(t, move || {
            let dispatched = engine.now();
            let engine2 = engine.clone();
            let op = req.op();
            let bytes = req.len();
            let bios = req.bio_count() as u64;
            // Stamp the span context at the dispatch boundary: from here the
            // device stack appends phase marks, and the completion hook below
            // folds them — so [submit, end] is exactly the latency the
            // blockdev histograms record for the same request.
            let mut req = req;
            let lifecycle = if engine.lifecycle_enabled() {
                engine.lifecycle().begin(
                    simtrace::intern(device.name()),
                    op == IoOp::Write,
                    bytes,
                    dispatched.as_nanos(),
                )
            } else {
                None
            };
            if let Some(ctx) = &lifecycle {
                req.set_lifecycle(ctx.clone());
            }
            let req = req.on_complete(move |result| {
                let us = engine2.now().since(dispatched).as_micros_f64();
                stats.borrow_mut().record(us);
                let (name, hist) = match op {
                    IoOp::Read => ("read", "blockdev.swap_in_latency_us"),
                    IoOp::Write => ("write", "blockdev.swap_out_latency_us"),
                };
                metrics.observe(hist, us);
                if engine2.trace_enabled() {
                    engine2.tracer().span(
                        "blockdev",
                        name,
                        dispatched.as_nanos(),
                        engine2.now().as_nanos(),
                        &[("bytes", bytes), ("bios", bios)],
                    );
                }
                if let Some(ctx) = &lifecycle {
                    ctx.end(engine2.now().as_nanos(), result.is_ok());
                }
            });
            device.submit(req)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ramdisk::RamDiskDevice;
    use crate::request::{new_buffer, IoResult};
    use std::cell::Cell;

    struct Fixture {
        engine: Engine,
        queue: RequestQueue,
    }

    fn fixture() -> Fixture {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            64 << 20,
            "ram",
        ));
        let queue = RequestQueue::new(engine.clone(), cal, node, dev);
        Fixture { engine, queue }
    }

    fn bio(op: IoOp, offset: u64, len: usize, done: impl FnOnce(IoResult) + 'static) -> Bio {
        Bio::new(op, offset, new_buffer(len), done)
    }

    #[test]
    fn adjacent_pages_merge_into_one_request() {
        let f = fixture();
        let done = Rc::new(Cell::new(0));
        for i in 0..8u64 {
            let done = done.clone();
            f.queue.submit(bio(IoOp::Write, i * 4096, 4096, move |r| {
                assert!(r.is_ok());
                done.set(done.get() + 1);
            }));
        }
        f.queue.flush();
        f.engine.run_until_idle();
        assert_eq!(done.get(), 8);
        let log = f.queue.dispatch_log();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].len, 8 * 4096);
        assert_eq!(log[0].bios, 8);
    }

    #[test]
    fn merge_respects_128k_cap() {
        let f = fixture();
        // 40 adjacent pages = 160K: must split into 128K + 32K.
        for i in 0..40u64 {
            f.queue.submit(bio(IoOp::Write, i * 4096, 4096, |_| {}));
        }
        f.queue.flush();
        f.engine.run_until_idle();
        let log = f.queue.dispatch_log();
        let log = log.borrow();
        let lens: Vec<u64> = log.iter().map(|r| r.len).collect();
        assert_eq!(lens, vec![128 * 1024, 32 * 1024]);
    }

    #[test]
    fn gap_splits_requests() {
        let f = fixture();
        f.queue.submit(bio(IoOp::Write, 0, 4096, |_| {}));
        f.queue.submit(bio(IoOp::Write, 8192, 4096, |_| {}));
        f.queue.flush();
        f.engine.run_until_idle();
        assert_eq!(f.queue.dispatch_log().borrow().len(), 2);
    }

    #[test]
    fn op_change_splits_requests() {
        let f = fixture();
        f.queue.submit(bio(IoOp::Write, 0, 4096, |_| {}));
        f.queue.submit(bio(IoOp::Read, 4096, 4096, |_| {}));
        f.queue.flush();
        f.engine.run_until_idle();
        assert_eq!(f.queue.dispatch_log().borrow().len(), 2);
    }

    #[test]
    fn out_of_order_submission_still_merges() {
        let f = fixture();
        for &i in &[3u64, 0, 2, 1] {
            f.queue.submit(bio(IoOp::Write, i * 4096, 4096, |_| {}));
        }
        f.queue.flush();
        f.engine.run_until_idle();
        let log = f.queue.dispatch_log();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].len, 4 * 4096);
    }

    #[test]
    fn data_lands_correctly_after_merge() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("n", 0, 2);
        let dev = Rc::new(RamDiskDevice::new(
            engine.clone(),
            cal.clone(),
            node.clone(),
            1 << 20,
            "ram",
        ));
        let storage = dev.storage().clone();
        let queue = RequestQueue::new(engine.clone(), cal, node, dev);
        for i in 0..4u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8 + 1);
            queue.submit(Bio::new(IoOp::Write, i * 4096, buf, |r| assert!(r.is_ok())));
        }
        queue.flush();
        engine.run_until_idle();
        for i in 0..4u64 {
            let mut page = vec![0u8; 4096];
            storage.read_at(i * 4096, &mut page);
            assert!(page.iter().all(|&b| b == i as u8 + 1), "page {i}");
        }
    }

    #[test]
    fn flush_of_empty_queue_is_noop() {
        let f = fixture();
        f.queue.flush();
        f.engine.run_until_idle();
        assert_eq!(f.queue.dispatch_log().borrow().len(), 0);
    }

    #[test]
    fn submission_charges_kernel_cpu_cost() {
        let f = fixture();
        f.queue.submit_now(bio(IoOp::Write, 0, 4096, |_| {}));
        f.engine.run_until_idle();
        let cal = Calibration::cluster_2005();
        let log = f.queue.dispatch_log();
        assert_eq!(
            log.borrow()[0].at.as_nanos(),
            cal.compute.block_submit_ns,
            "dispatch happens after the kernel submit cost"
        );
    }
}
