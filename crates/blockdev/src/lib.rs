#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # blockdev — the block I/O layer of the simulated kernel
//!
//! HPBD is a *block device driver*: the Linux VM hands it ordinary block
//! I/O requests and the driver moves them over InfiniBand (paper §3.2–3.3).
//! This crate provides the pieces of that world:
//!
//! * [`BlockDevice`] — the driver interface: asynchronous `submit` of
//!   byte-addressed requests with completion callbacks.
//! * [`IoRequest`] / [`Bio`] — a request is one contiguous extent assembled
//!   from per-page bios, with scatter/gather helpers, mirroring how the
//!   kernel clusters swap pages into large transfers.
//! * [`RequestQueue`] — the merging front-end: adjacent bios coalesce up to
//!   the 128 KiB cap the paper reports (Figure 6's ~120 KiB average request
//!   size for testswap comes from exactly this mechanism), with a dispatch
//!   log for the Figure 6 harness.
//! * [`RamDiskDevice`] — memory-backed device (the remote server's page
//!   store uses the same [`Storage`]).
//! * [`SimDisk`] — the ST340014A-class ATA disk baseline: seek + rotation
//!   for non-sequential accesses, serial service, calibrated transfer rate.

pub mod device;
pub mod disk;
pub mod elevator;
pub mod queue;
pub mod ramdisk;
pub mod request;
pub mod trace;

pub use device::{BlockDevice, DeviceHealth};
pub use disk::SimDisk;
pub use elevator::Elevator;
pub use queue::{DispatchRecord, RequestQueue, DEFAULT_FLUSH_BACKSTOP, MAX_REQUEST_BYTES};
pub use ramdisk::{RamDiskDevice, Storage};
pub use request::{new_buffer, Bio, FaultKind, IoBuffer, IoError, IoOp, IoRequest, IoResult};
pub use trace::{ReplayReport, SwapTrace, TraceEvent};
