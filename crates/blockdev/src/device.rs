//! The block device driver interface.

use crate::request::IoRequest;

/// A block device driver: accepts merged requests asynchronously and
/// completes them through the request's bio callbacks.
///
/// Implementations in this workspace: [`crate::RamDiskDevice`],
/// [`crate::SimDisk`], `hpbd::HpbdClient` (the paper's contribution) and
/// `nbd::NbdClient` (the TCP baseline).
pub trait BlockDevice {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Human-readable device name for reports.
    fn name(&self) -> &str;

    /// Submit a request. Must not complete it synchronously on the caller's
    /// stack; completion happens from an engine event, even on error paths,
    /// so callers can rely on callback-after-return ordering.
    fn submit(&self, req: IoRequest);
}
