//! The block device driver interface.

use crate::request::IoRequest;

/// Coarse device liveness, as reported by [`BlockDevice::health`]. Bench
/// figures and the fault driver use this to address HPBD, NBD, and the
/// disk baseline uniformly when deciding whether a cell survived its
/// fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceHealth {
    /// All backing resources are up; requests are being served normally.
    Healthy,
    /// The device is still serving but some backing resources are lost —
    /// e.g. an HPBD cluster running on mirror replicas after a server
    /// crash. `failed_servers` counts the lost backends.
    Degraded {
        /// Number of backing servers currently considered dead.
        failed_servers: usize,
    },
    /// The device can no longer serve I/O; submissions fail immediately.
    Failed,
}

/// A block device driver: accepts merged requests asynchronously and
/// completes them through the request's bio callbacks.
///
/// Implementations in this workspace: [`crate::RamDiskDevice`],
/// [`crate::SimDisk`], `hpbd::HpbdClient` (the paper's contribution) and
/// `nbd::NbdClient` (the TCP baseline).
pub trait BlockDevice {
    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Human-readable device name for reports.
    fn name(&self) -> &str;

    /// Submit a request. Must not complete it synchronously on the caller's
    /// stack; completion happens from an engine event, even on error paths,
    /// so callers can rely on callback-after-return ordering.
    fn submit(&self, req: IoRequest);

    /// Stop accepting new work. Requests already in flight complete (or
    /// fail) normally; requests submitted afterwards fail cleanly. The
    /// default is a no-op for devices with nothing to tear down.
    fn shutdown(&self) {}

    /// Current liveness of the device and its backing resources. Devices
    /// without failure modes report [`DeviceHealth::Healthy`] forever.
    fn health(&self) -> DeviceHealth {
        DeviceHealth::Healthy
    }
}
