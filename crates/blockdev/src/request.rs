//! Block I/O request structures.
//!
//! A [`Bio`] is the unit the VM submits: one page-sized (usually) span with
//! its own buffer and completion callback. The [`RequestQueue`] merges
//! adjacent bios into an [`IoRequest`] — one contiguous device extent —
//! before handing it to the device driver, which sees a single transfer and
//! uses [`IoRequest::gather`] / [`IoRequest::scatter`] to move bytes between
//! the device and the per-bio buffers.
//!
//! [`RequestQueue`]: crate::RequestQueue

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Read or write, from the device's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Device → memory (swap-in).
    Read,
    /// Memory → device (swap-out).
    Write,
}

/// The specific failure behind an [`IoError::Fault`]: which part of the
/// remote-paging path gave out. Set by the device drivers when an injected
/// (or simulated-organic) fault kills a request with no replica to save it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The memory server holding the data crashed (and no replica exists).
    ServerDead,
    /// The request timed out with no reply and no replica to fail over to.
    Timeout,
    /// The network link failed the transfer (completion-with-error).
    LinkDown,
    /// The transport connection was reset (NBD's TCP path).
    Reset,
}

/// Why an I/O failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoError {
    /// Request extends past the device capacity.
    OutOfRange,
    /// The device (or its remote server) reported a failure.
    DeviceError(&'static str),
    /// A fault (injected or simulated) made the request unservable; the
    /// cause says which layer failed. Devices must surface this as a
    /// completion — a fault never strands a request without a callback.
    Fault(FaultKind),
}

/// Completion status of a request.
pub type IoResult = Result<(), IoError>;

/// Shared, interiorly-mutable I/O buffer.
pub type IoBuffer = Rc<RefCell<Vec<u8>>>;

/// Allocate a zeroed I/O buffer of `len` bytes.
pub fn new_buffer(len: usize) -> IoBuffer {
    Rc::new(RefCell::new(vec![0u8; len]))
}

/// One unit of block I/O as issued by the VM: a contiguous span with its
/// own buffer and completion callback.
pub struct Bio {
    /// Read or write.
    pub op: IoOp,
    /// Byte offset on the device.
    pub offset: u64,
    /// Data buffer; its length is the transfer length.
    pub buf: IoBuffer,
    /// Invoked exactly once when the bio's parent request completes.
    pub done: Box<dyn FnOnce(IoResult)>,
}

impl Bio {
    /// Build a bio. `done` runs at completion with the request's result.
    pub fn new(op: IoOp, offset: u64, buf: IoBuffer, done: impl FnOnce(IoResult) + 'static) -> Bio {
        Bio {
            op,
            offset,
            buf,
            done: Box::new(done),
        }
    }

    /// Transfer length in bytes.
    pub fn len(&self) -> u64 {
        self.buf.borrow().len() as u64
    }

    /// True for zero-length bios (rejected by the queue).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device range end (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len()
    }
}

impl fmt::Debug for Bio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Bio")
            .field("op", &self.op)
            .field("offset", &self.offset)
            .field("len", &self.len())
            .finish()
    }
}

type CompletionHook = Box<dyn FnOnce(IoResult)>;

/// A merged, contiguous request as seen by a device driver.
pub struct IoRequest {
    op: IoOp,
    offset: u64,
    len: u64,
    bios: Vec<Bio>,
    hooks: Vec<CompletionHook>,
    lifecycle: Option<Rc<simtrace::RequestCtx>>,
}

impl IoRequest {
    /// Build a request from bios that must be same-op, sorted, and exactly
    /// adjacent (no gaps, no overlaps).
    ///
    /// # Panics
    /// Panics if the bios do not form one contiguous same-op extent — the
    /// queue guarantees this; a violation is a kernel-layer bug.
    pub fn from_bios(bios: Vec<Bio>) -> IoRequest {
        assert!(!bios.is_empty(), "empty request");
        let op = bios[0].op;
        let offset = bios[0].offset;
        let mut cursor = offset;
        for b in &bios {
            assert_eq!(b.op, op, "mixed-op request");
            assert_eq!(b.offset, cursor, "non-contiguous request");
            cursor = b.end();
        }
        IoRequest {
            op,
            offset,
            len: cursor - offset,
            bios,
            hooks: Vec::new(),
            lifecycle: None,
        }
    }

    /// A single-bio request (drivers submitted to directly).
    pub fn single(bio: Bio) -> IoRequest {
        IoRequest::from_bios(vec![bio])
    }

    /// Read or write.
    pub fn op(&self) -> IoOp {
        self.op
    }

    /// Byte offset of the extent on the device.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Extent length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the request covers no bytes (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// End of the extent (exclusive).
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }

    /// Number of merged bios.
    pub fn bio_count(&self) -> usize {
        self.bios.len()
    }

    /// Concatenate the bio buffers into one device-order image (writes).
    pub fn gather(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len as usize);
        for b in &self.bios {
            out.extend_from_slice(&b.buf.borrow());
        }
        out
    }

    /// Distribute a device-order image into the bio buffers (reads).
    ///
    /// # Panics
    /// Panics if `data` length differs from the request length.
    pub fn scatter(&self, data: &[u8]) {
        assert_eq!(data.len() as u64, self.len, "scatter length mismatch");
        self.scatter_range(0, data);
    }

    /// Concatenate the bytes of the sub-range `start..start+len` (relative
    /// to the request start) across bio buffers. Used when a request is
    /// split into physical requests to different servers.
    ///
    /// # Panics
    /// Panics if the range exceeds the request.
    pub fn gather_range(&self, start: u64, len: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(len as usize);
        self.gather_range_into(start, len, &mut out);
        out
    }

    /// [`IoRequest::gather_range`] into a caller-owned buffer (cleared
    /// first), so drivers staging many parts can reuse one scratch
    /// allocation instead of building a fresh `Vec` per part.
    ///
    /// # Panics
    /// Panics if the range exceeds the request.
    pub fn gather_range_into(&self, start: u64, len: u64, out: &mut Vec<u8>) {
        assert!(start + len <= self.len, "gather_range out of request");
        out.clear();
        out.reserve(len as usize);
        let mut cursor = 0u64; // position within the request
        for b in &self.bios {
            let blen = b.len();
            let lo = start.max(cursor);
            let hi = (start + len).min(cursor + blen);
            if lo < hi {
                let buf = b.buf.borrow();
                out.extend_from_slice(&buf[(lo - cursor) as usize..(hi - cursor) as usize]);
            }
            cursor += blen;
            if cursor >= start + len {
                break;
            }
        }
    }

    /// Distribute `data` into the bio buffers starting at request-relative
    /// offset `start`.
    ///
    /// # Panics
    /// Panics if the range exceeds the request.
    pub fn scatter_range(&self, start: u64, data: &[u8]) {
        let len = data.len() as u64;
        assert!(start + len <= self.len, "scatter_range out of request");
        let mut cursor = 0u64;
        for b in &self.bios {
            let blen = b.len();
            let lo = start.max(cursor);
            let hi = (start + len).min(cursor + blen);
            if lo < hi {
                let mut buf = b.buf.borrow_mut();
                buf[(lo - cursor) as usize..(hi - cursor) as usize]
                    .copy_from_slice(&data[(lo - start) as usize..(hi - start) as usize]);
            }
            cursor += blen;
            if cursor >= start + len {
                break;
            }
        }
    }

    /// Attach a hook that fires after the bio callbacks when the request
    /// completes (used by stacking drivers like [`crate::Elevator`]).
    pub fn on_complete(mut self, hook: impl FnOnce(IoResult) + 'static) -> IoRequest {
        self.hooks.push(Box::new(hook));
        self
    }

    /// Attach a lifecycle span context; device drivers below the queue
    /// read it back via [`IoRequest::lifecycle`] to append phase marks.
    pub fn set_lifecycle(&mut self, ctx: Rc<simtrace::RequestCtx>) {
        self.lifecycle = Some(ctx);
    }

    /// The lifecycle span context stamped at dispatch, if tracing is on.
    pub fn lifecycle(&self) -> Option<&Rc<simtrace::RequestCtx>> {
        self.lifecycle.as_ref()
    }

    /// Complete the request: every bio callback fires with `result`, then
    /// the completion hooks in attachment order.
    pub fn complete(self, result: IoResult) {
        for b in self.bios {
            (b.done)(result);
        }
        for h in self.hooks {
            h(result);
        }
    }
}

impl fmt::Debug for IoRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoRequest")
            .field("op", &self.op)
            .field("offset", &self.offset)
            .field("len", &self.len)
            .field("bios", &self.bios.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn bio_at(offset: u64, len: usize, fill: u8) -> Bio {
        let buf = new_buffer(len);
        buf.borrow_mut().fill(fill);
        Bio::new(IoOp::Write, offset, buf, |_| {})
    }

    #[test]
    fn merged_request_geometry() {
        let req = IoRequest::from_bios(vec![bio_at(0, 4096, 1), bio_at(4096, 4096, 2)]);
        assert_eq!(req.offset(), 0);
        assert_eq!(req.len(), 8192);
        assert_eq!(req.bio_count(), 2);
        assert_eq!(req.end(), 8192);
    }

    #[test]
    fn gather_concatenates_in_device_order() {
        let req = IoRequest::from_bios(vec![bio_at(0, 2, 0xA), bio_at(2, 3, 0xB)]);
        assert_eq!(req.gather(), vec![0xA, 0xA, 0xB, 0xB, 0xB]);
    }

    #[test]
    fn scatter_distributes() {
        let b1 = new_buffer(2);
        let b2 = new_buffer(2);
        let req = IoRequest::from_bios(vec![
            Bio::new(IoOp::Read, 0, b1.clone(), |_| {}),
            Bio::new(IoOp::Read, 2, b2.clone(), |_| {}),
        ]);
        req.scatter(&[1, 2, 3, 4]);
        assert_eq!(*b1.borrow(), vec![1, 2]);
        assert_eq!(*b2.borrow(), vec![3, 4]);
    }

    #[test]
    fn complete_fires_every_bio_callback() {
        let count = Rc::new(Cell::new(0));
        let mk = |offset| {
            let count = count.clone();
            Bio::new(IoOp::Write, offset, new_buffer(1), move |r| {
                assert!(r.is_ok());
                count.set(count.get() + 1);
            })
        };
        IoRequest::from_bios(vec![mk(0), mk(1), mk(2)]).complete(Ok(()));
        assert_eq!(count.get(), 3);
    }

    #[test]
    #[should_panic(expected = "non-contiguous")]
    fn gap_rejected() {
        IoRequest::from_bios(vec![bio_at(0, 4096, 0), bio_at(8192, 4096, 0)]);
    }

    #[test]
    #[should_panic(expected = "mixed-op")]
    fn mixed_op_rejected() {
        let read = Bio::new(IoOp::Read, 4096, new_buffer(4096), |_| {});
        IoRequest::from_bios(vec![bio_at(0, 4096, 0), read]);
    }

    #[test]
    #[should_panic(expected = "scatter length mismatch")]
    fn bad_scatter_rejected() {
        let req = IoRequest::single(Bio::new(IoOp::Read, 0, new_buffer(4), |_| {}));
        req.scatter(&[0u8; 3]);
    }

    #[test]
    fn gather_range_spans_bio_boundaries() {
        let req = IoRequest::from_bios(vec![bio_at(0, 4, 1), bio_at(4, 4, 2), bio_at(8, 4, 3)]);
        // Range covering the tail of bio 0, all of bio 1, head of bio 2.
        assert_eq!(req.gather_range(2, 8), vec![1, 1, 2, 2, 2, 2, 3, 3]);
        // Degenerate full range equals gather().
        assert_eq!(req.gather_range(0, 12), req.gather());
    }

    #[test]
    fn scatter_range_spans_bio_boundaries() {
        let b1 = new_buffer(4);
        let b2 = new_buffer(4);
        let req = IoRequest::from_bios(vec![
            Bio::new(IoOp::Read, 0, b1.clone(), |_| {}),
            Bio::new(IoOp::Read, 4, b2.clone(), |_| {}),
        ]);
        req.scatter_range(2, &[9, 9, 9, 9]);
        assert_eq!(*b1.borrow(), vec![0, 0, 9, 9]);
        assert_eq!(*b2.borrow(), vec![9, 9, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "gather_range out of request")]
    fn gather_range_bounds_checked() {
        let req = IoRequest::single(bio_at(0, 4, 0));
        req.gather_range(2, 4);
    }
}
