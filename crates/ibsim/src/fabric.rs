//! The switched fabric: node creation and connection management.
//!
//! [`Fabric`] stands in for the single Mellanox MTS-14400 switch of the
//! testbed plus the out-of-band connection setup HPBD performs over a
//! socket at initialisation (paper §5): `connect` creates a pair of RC QPs
//! already wired to each other.

use crate::cq::CompletionQueue;
use crate::hca::Hca;
use crate::qp::QueuePair;
use netmodel::{Calibration, MemoryModel, Node};
use simcore::{Engine, SimDuration};
use std::cell::Cell;
use std::rc::Rc;

/// Default send/receive queue capacities for created QPs.
pub const DEFAULT_MAX_WR: usize = 256;

/// One IB-attached node: the node resources plus its HCA.
#[derive(Clone)]
pub struct IbNode {
    node: Node,
    hca: Hca,
    engine: Engine,
    cal: Rc<Calibration>,
}

impl IbNode {
    /// The underlying cluster node (CPU + port resources).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// This node's HCA.
    pub fn hca(&self) -> &Hca {
        &self.hca
    }

    /// Create a completion queue on this node. Completion events are
    /// delivered with the calibrated interrupt latency.
    pub fn create_cq(&self) -> CompletionQueue {
        CompletionQueue::new(
            self.engine.clone(),
            SimDuration::from_nanos(self.cal.hca.completion_event_ns),
        )
    }

    /// A memory model charging copies against this node's CPUs.
    pub fn memory_model(&self) -> MemoryModel {
        MemoryModel::new(
            self.engine.clone(),
            self.cal.clone(),
            self.node.cpu().clone(),
        )
    }
}

/// The fabric: owns the calibration and hands out nodes and connections.
/// Cloning shares the fabric (same id counters).
#[derive(Clone)]
pub struct Fabric {
    engine: Engine,
    cal: Rc<Calibration>,
    next_node_id: Rc<Cell<usize>>,
    next_qp_num: Rc<Cell<u32>>,
}

impl Fabric {
    /// Create a fabric with the given calibration.
    pub fn new(engine: Engine, cal: Rc<Calibration>) -> Fabric {
        Fabric {
            engine,
            cal,
            next_node_id: Rc::new(Cell::new(0)),
            next_qp_num: Rc::new(Cell::new(1)),
        }
    }

    /// The calibration in effect.
    pub fn calibration(&self) -> &Rc<Calibration> {
        &self.cal
    }

    /// The shared engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Add a dual-CPU node with an HCA to the fabric.
    pub fn add_node(&self, name: impl Into<String>) -> IbNode {
        let id = self.next_node_id.get();
        self.next_node_id.set(id + 1);
        let hca = Hca::new(self.cal.hca.clone());
        hca.set_metrics(self.engine.metrics());
        IbNode {
            node: Node::new(name, id, 2),
            hca,
            engine: self.engine.clone(),
            cal: self.cal.clone(),
        }
    }

    /// Connect two nodes with a pair of RC QPs using the given CQs and
    /// default queue depths. Returns `(qp_on_a, qp_on_b)`.
    pub fn connect(
        &self,
        a: &IbNode,
        a_send_cq: &CompletionQueue,
        a_recv_cq: &CompletionQueue,
        b: &IbNode,
        b_send_cq: &CompletionQueue,
        b_recv_cq: &CompletionQueue,
    ) -> (QueuePair, QueuePair) {
        self.connect_with_depth(
            a,
            a_send_cq,
            a_recv_cq,
            b,
            b_send_cq,
            b_recv_cq,
            DEFAULT_MAX_WR,
            DEFAULT_MAX_WR,
        )
    }

    /// [`Fabric::connect`] with explicit send/recv queue capacities.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_with_depth(
        &self,
        a: &IbNode,
        a_send_cq: &CompletionQueue,
        a_recv_cq: &CompletionQueue,
        b: &IbNode,
        b_send_cq: &CompletionQueue,
        b_recv_cq: &CompletionQueue,
        max_send_wr: usize,
        max_recv_wr: usize,
    ) -> (QueuePair, QueuePair) {
        assert!(
            !a.node.same_node(&b.node),
            "cannot connect a node to itself"
        );
        let qa = self.next_qp_num.get();
        self.next_qp_num.set(qa + 2);
        let qp_a = QueuePair::new(
            self.engine.clone(),
            qa,
            a.node.clone(),
            a.hca.clone(),
            a_send_cq.clone(),
            a_recv_cq.clone(),
            self.cal.ib.clone(),
            max_send_wr,
            max_recv_wr,
        );
        let qp_b = QueuePair::new(
            self.engine.clone(),
            qa + 1,
            b.node.clone(),
            b.hca.clone(),
            b_send_cq.clone(),
            b_recv_cq.clone(),
            self.cal.ib.clone(),
            max_send_wr,
            max_recv_wr,
        );
        a.hca.note_qp_connected();
        b.hca.note_qp_connected();
        QueuePair::wire_peers(&qp_a, &qp_b);
        (qp_a, qp_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{Opcode, WcStatus};
    use crate::qp::{PostError, WorkKind, WorkRequest};
    use bytes::Bytes;

    struct Pair {
        engine: Engine,
        cal: Rc<Calibration>,
        a: IbNode,
        b: IbNode,
        qp_a: QueuePair,
        qp_b: QueuePair,
    }

    fn pair() -> Pair {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal.clone());
        let a = fabric.add_node("client");
        let b = fabric.add_node("server");
        let a_cq = a.create_cq();
        let a_rcq = a.create_cq();
        let b_cq = b.create_cq();
        let b_rcq = b.create_cq();
        let (qp_a, qp_b) = fabric.connect(&a, &a_cq, &a_rcq, &b, &b_cq, &b_rcq);
        Pair {
            engine,
            cal,
            a,
            b,
            qp_a,
            qp_b,
        }
    }

    #[test]
    fn send_recv_moves_data_and_completes_both_sides() {
        let p = pair();
        let rbuf = p.b.hca().register(128);
        p.qp_b.post_recv(42, rbuf.slice(0, 128)).unwrap();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 9,
                kind: WorkKind::Send {
                    payload: Bytes::from_static(b"hello hpbd"),
                },
                solicited: true,
            })
            .unwrap();
        p.engine.run_until_idle();

        let send_c = p.qp_a.send_cq().poll().expect("send completion");
        assert_eq!(send_c.wr_id, 9);
        assert_eq!(send_c.opcode, Opcode::Send);
        assert_eq!(send_c.status, WcStatus::Success);

        let recv_c = p.qp_b.recv_cq().poll().expect("recv completion");
        assert_eq!(recv_c.wr_id, 42);
        assert_eq!(recv_c.byte_len, 10);
        assert!(recv_c.solicited);
        let mut out = [0u8; 10];
        rbuf.read(0, &mut out);
        assert_eq!(&out, b"hello hpbd");
    }

    #[test]
    fn send_without_posted_recv_fails_at_sender() {
        let p = pair();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 1,
                kind: WorkKind::Send {
                    payload: Bytes::from_static(b"x"),
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let c = p.qp_a.send_cq().poll().expect("completion");
        assert_eq!(c.status, WcStatus::RnrRetryExceeded);
        assert!(p.qp_b.recv_cq().poll().is_none());
    }

    #[test]
    fn rdma_write_places_data_remotely() {
        let p = pair();
        let src = p.a.hca().register(4096);
        let dst = p.b.hca().register(4096);
        src.write(0, &[7u8; 4096]);
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 2,
                kind: WorkKind::RdmaWrite {
                    local: src.slice(0, 4096),
                    remote: crate::RemoteSlice {
                        rkey: dst.rkey(),
                        offset: 0,
                        len: 4096,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let c = p.qp_a.send_cq().poll().unwrap();
        assert_eq!(c.status, WcStatus::Success);
        assert_eq!(c.opcode, Opcode::RdmaWrite);
        let mut out = [0u8; 4096];
        dst.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 7));
        // No peer-side completion for one-sided ops.
        assert!(p.qp_b.recv_cq().poll().is_none());
        assert!(p.qp_b.send_cq().poll().is_none());
    }

    #[test]
    fn rdma_read_pulls_data() {
        let p = pair();
        let dst = p.a.hca().register(1024);
        let src = p.b.hca().register(1024);
        src.write(0, &[0xAB; 1024]);
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 3,
                kind: WorkKind::RdmaRead {
                    local: dst.slice(0, 1024),
                    remote: crate::RemoteSlice {
                        rkey: src.rkey(),
                        offset: 0,
                        len: 1024,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let c = p.qp_a.send_cq().poll().unwrap();
        assert_eq!(c.status, WcStatus::Success);
        let mut out = [0u8; 1024];
        dst.read(0, &mut out);
        assert!(out.iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn rdma_read_latency_exceeds_write_latency() {
        // READ pays an extra propagation for the request leg — the reason
        // the server pulls swap-out data but pushes swap-in data matters.
        let p = pair();
        let buf_a = p.a.hca().register(65536);
        let buf_b = p.b.hca().register(65536);
        // Warm the QP context caches on both HCAs so the comparison is
        // about protocol legs, not cold-start context loads.
        for wr_id in [100, 101] {
            p.qp_a
                .post_send(WorkRequest {
                    wr_id,
                    kind: WorkKind::RdmaWrite {
                        local: buf_a.slice(0, 64),
                        remote: crate::RemoteSlice {
                            rkey: buf_b.rkey(),
                            offset: 0,
                            len: 64,
                        },
                    },
                    solicited: false,
                })
                .unwrap();
            p.engine.run_until_idle();
            p.qp_a.send_cq().drain();
        }
        let t0 = p.engine.now();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 1,
                kind: WorkKind::RdmaWrite {
                    local: buf_a.slice(0, 65536),
                    remote: crate::RemoteSlice {
                        rkey: buf_b.rkey(),
                        offset: 0,
                        len: 65536,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let write_done = p.engine.now() - t0;
        assert!(p.qp_a.send_cq().poll().is_some());

        let t1 = p.engine.now();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 2,
                kind: WorkKind::RdmaRead {
                    local: buf_a.slice(0, 65536),
                    remote: crate::RemoteSlice {
                        rkey: buf_b.rkey(),
                        offset: 0,
                        len: 65536,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let read_done = p.engine.now() - t1;
        assert!(
            read_done > write_done,
            "read {read_done} should exceed write {write_done}"
        );
    }

    #[test]
    fn bad_rkey_yields_remote_access_error() {
        let p = pair();
        let src = p.a.hca().register(64);
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 5,
                kind: WorkKind::RdmaWrite {
                    local: src.slice(0, 64),
                    remote: crate::RemoteSlice {
                        rkey: 0xDEAD,
                        offset: 0,
                        len: 64,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        assert_eq!(
            p.qp_a.send_cq().poll().unwrap().status,
            WcStatus::RemoteAccessError
        );
    }

    #[test]
    fn remote_bounds_violation_rejected() {
        let p = pair();
        let src = p.a.hca().register(8192);
        let dst = p.b.hca().register(4096);
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 6,
                kind: WorkKind::RdmaWrite {
                    local: src.slice(0, 8192),
                    remote: crate::RemoteSlice {
                        rkey: dst.rkey(),
                        offset: 0,
                        len: 8192,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        assert_eq!(
            p.qp_a.send_cq().poll().unwrap().status,
            WcStatus::RemoteAccessError
        );
        // Destination untouched.
        assert!(dst.to_vec().iter().all(|&b| b == 0));
    }

    #[test]
    fn deregistered_region_is_unreachable() {
        let p = pair();
        let src = p.a.hca().register(64);
        let dst = p.b.hca().register(64);
        p.b.hca().deregister(&dst);
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 7,
                kind: WorkKind::RdmaWrite {
                    local: src.slice(0, 64),
                    remote: crate::RemoteSlice {
                        rkey: dst.rkey(),
                        offset: 0,
                        len: 64,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        assert_eq!(
            p.qp_a.send_cq().poll().unwrap().status,
            WcStatus::RemoteAccessError
        );
    }

    #[test]
    fn send_queue_capacity_enforced() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (qp_a, _qp_b) = fabric.connect_with_depth(&a, &acq, &arcq, &b, &bcq, &brcq, 2, 2);
        let mk = |id| WorkRequest {
            wr_id: id,
            kind: WorkKind::Send {
                payload: Bytes::from_static(b"z"),
            },
            solicited: false,
        };
        qp_a.post_send(mk(1)).unwrap();
        qp_a.post_send(mk(2)).unwrap();
        assert_eq!(qp_a.post_send(mk(3)), Err(PostError::SendQueueFull));
        engine.run_until_idle();
        // After completions drain, capacity is available again.
        qp_a.post_send(mk(4)).unwrap();
    }

    #[test]
    fn recv_queue_capacity_enforced() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = fabric.add_node("a");
        let b = fabric.add_node("b");
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (_qp_a, qp_b) = fabric.connect_with_depth(&a, &acq, &arcq, &b, &bcq, &brcq, 2, 1);
        let buf = b.hca().register(64);
        qp_b.post_recv(1, buf.slice(0, 32)).unwrap();
        assert_eq!(
            qp_b.post_recv(2, buf.slice(32, 32)),
            Err(PostError::RecvQueueFull)
        );
    }

    #[test]
    fn oversized_send_reports_length_error_to_receiver() {
        let p = pair();
        let rbuf = p.b.hca().register(4);
        p.qp_b.post_recv(1, rbuf.slice(0, 4)).unwrap();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 2,
                kind: WorkKind::Send {
                    payload: Bytes::from_static(b"way too big"),
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let c = p.qp_b.recv_cq().poll().unwrap();
        assert_eq!(c.status, WcStatus::LocalLengthError);
    }

    #[test]
    fn one_way_small_send_latency_in_band() {
        // End-to-end one-way time for a tiny send should be on the order of
        // the calibrated small-message latency (a few microseconds).
        let p = pair();
        let rbuf = p.b.hca().register(64);
        p.qp_b.post_recv(1, rbuf.slice(0, 64)).unwrap();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 1,
                kind: WorkKind::Send {
                    payload: Bytes::from_static(&[0u8; 16]),
                },
                solicited: false,
            })
            .unwrap();
        // Find the recv completion time.
        let mut recv_at = None;
        while p.engine.pending_events() > 0 {
            p.engine.run_until(p.engine.peek_next_time().unwrap());
            if p.qp_b.recv_cq().depth() > 0 && recv_at.is_none() {
                recv_at = Some(p.engine.now());
            }
        }
        let t = recv_at.expect("delivered").as_nanos();
        assert!(
            (p.cal.ib.base_latency_ns..p.cal.ib.base_latency_ns + 10_000).contains(&t),
            "one-way small send took {t}ns"
        );
    }

    #[test]
    fn shared_cq_across_qps_collects_all_completions() {
        // HPBD shares one send CQ and one recv CQ across the QPs to all
        // servers (paper §5): completions from different QPs land in the
        // same queue, distinguishable by qp_num.
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let hub = fabric.add_node("hub");
        let shared_send = hub.create_cq();
        let shared_recv = hub.create_cq();
        let mut qps = Vec::new();
        let mut peer_qps = Vec::new(); // keep peers alive (hub holds Weak)
        for i in 0..3 {
            let peer = fabric.add_node(format!("peer{i}"));
            let (pcq, prcq) = (peer.create_cq(), peer.create_cq());
            let (qp_hub, qp_peer) =
                fabric.connect(&hub, &shared_send, &shared_recv, &peer, &pcq, &prcq);
            let rbuf = peer.hca().register(64);
            qp_peer.post_recv(1, rbuf.slice(0, 64)).unwrap();
            qps.push(qp_hub);
            peer_qps.push(qp_peer);
        }
        for (i, qp) in qps.iter().enumerate() {
            qp.post_send(WorkRequest {
                wr_id: i as u64,
                kind: WorkKind::Send {
                    payload: Bytes::from_static(b"ping"),
                },
                solicited: false,
            })
            .unwrap();
        }
        engine.run_until_idle();
        let completions = shared_send.drain();
        assert_eq!(
            completions.len(),
            3,
            "one completion per QP on the shared CQ"
        );
        let qp_nums: std::collections::HashSet<u32> =
            completions.iter().map(|c| c.qp_num).collect();
        assert_eq!(qp_nums.len(), 3, "distinguishable by qp_num");
    }

    #[test]
    fn concurrent_rdma_ops_pipeline_on_the_wire() {
        // Posting N large RDMA writes back to back should cost far less
        // than N serial round trips: the wire serialises but posting and
        // propagation overlap.
        let p = pair();
        let src = p.a.hca().register(8 * 65536);
        let dst = p.b.hca().register(8 * 65536);
        let t0 = p.engine.now();
        for i in 0..8u64 {
            p.qp_a
                .post_send(WorkRequest {
                    wr_id: i,
                    kind: WorkKind::RdmaWrite {
                        local: src.slice(i * 65536, 65536),
                        remote: crate::RemoteSlice {
                            rkey: dst.rkey(),
                            offset: i * 65536,
                            len: 65536,
                        },
                    },
                    solicited: false,
                })
                .unwrap();
        }
        p.engine.run_until_idle();
        let pipelined = (p.engine.now() - t0).as_nanos();
        // One op's full latency:
        let t1 = p.engine.now();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 99,
                kind: WorkKind::RdmaWrite {
                    local: src.slice(0, 65536),
                    remote: crate::RemoteSlice {
                        rkey: dst.rkey(),
                        offset: 0,
                        len: 65536,
                    },
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        let single = (p.engine.now() - t1).as_nanos();
        assert!(
            pipelined < single * 8 * 9 / 10,
            "8 ops ({pipelined}ns) should beat 8 serial round trips (8 x {single}ns)"
        );
    }

    #[test]
    fn op_counts_track() {
        let p = pair();
        let buf_a = p.a.hca().register(64);
        let buf_b = p.b.hca().register(64);
        let remote = crate::RemoteSlice {
            rkey: buf_b.rkey(),
            offset: 0,
            len: 64,
        };
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 1,
                kind: WorkKind::RdmaWrite {
                    local: buf_a.slice(0, 64),
                    remote,
                },
                solicited: false,
            })
            .unwrap();
        p.qp_a
            .post_send(WorkRequest {
                wr_id: 2,
                kind: WorkKind::RdmaRead {
                    local: buf_a.slice(0, 64),
                    remote,
                },
                solicited: false,
            })
            .unwrap();
        p.engine.run_until_idle();
        assert_eq!(p.qp_a.op_counts(), (0, 1, 1));
    }
}
