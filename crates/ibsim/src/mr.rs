//! Registered memory regions.
//!
//! Communication over InfiniBand requires buffers to be registered with the
//! HCA (pinned and entered into its translation tables). A registered
//! [`MemoryRegion`] here is a real byte buffer plus an `lkey`/`rkey` pair;
//! RDMA operations address remote memory by `rkey` + offset, exactly as the
//! verbs do (we use region-relative offsets in place of virtual addresses).
//! Keeping real bytes in the regions lets every layer above — the HPBD
//! protocol, the VM pager, the workloads — be checked for data integrity.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

struct MrInner {
    buf: RefCell<Vec<u8>>,
    lkey: u32,
    rkey: u32,
}

/// A registered, RDMA-addressable buffer. Clones share the same storage.
#[derive(Clone)]
pub struct MemoryRegion {
    inner: Rc<MrInner>,
}

impl MemoryRegion {
    /// Create a region of `len` zeroed bytes with the given keys. Use
    /// [`crate::Hca::register`] rather than calling this directly.
    pub(crate) fn new(len: usize, lkey: u32, rkey: u32) -> MemoryRegion {
        MemoryRegion {
            inner: Rc::new(MrInner {
                buf: RefCell::new(vec![0; len]),
                lkey,
                rkey,
            }),
        }
    }

    /// Local key (identifies the region to the local HCA).
    pub fn lkey(&self) -> u32 {
        self.inner.lkey
    }

    /// Remote key (lets remote peers address this region with RDMA).
    pub fn rkey(&self) -> u32 {
        self.inner.rkey
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.inner.buf.borrow().len()
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy bytes out of the region. Panics on out-of-bounds — callers must
    /// have validated the slice (the QP logic validates RDMA requests and
    /// turns violations into error completions before touching memory).
    pub fn read(&self, offset: usize, out: &mut [u8]) {
        let buf = self.inner.buf.borrow();
        out.copy_from_slice(&buf[offset..offset + out.len()]);
    }

    /// Copy `data` into the region at `offset`. Panics on out-of-bounds.
    pub fn write(&self, offset: usize, data: &[u8]) {
        let mut buf = self.inner.buf.borrow_mut();
        buf[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Read a copy of the whole region (tests / small control buffers).
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.buf.borrow().clone()
    }

    /// Whether `offset..offset+len` lies inside the region.
    pub fn contains(&self, offset: u64, len: u64) -> bool {
        offset
            .checked_add(len)
            .is_some_and(|end| end <= self.len() as u64)
    }

    /// A slice descriptor over this region.
    pub fn slice(&self, offset: u64, len: u64) -> MrSlice {
        assert!(
            self.contains(offset, len),
            "slice {offset}+{len} outside region of {} bytes",
            self.len()
        );
        MrSlice {
            mr: self.clone(),
            offset,
            len,
        }
    }

    /// Identity comparison: do two handles name the same registration?
    pub fn same_region(&self, other: &MemoryRegion) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for MemoryRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryRegion")
            .field("lkey", &self.inner.lkey)
            .field("rkey", &self.inner.rkey)
            .field("len", &self.len())
            .finish()
    }
}

/// A local scatter/gather element: a span of a registered region.
#[derive(Clone, Debug)]
pub struct MrSlice {
    /// The registered region.
    pub mr: MemoryRegion,
    /// Byte offset inside the region.
    pub offset: u64,
    /// Span length in bytes.
    pub len: u64,
}

/// A remote buffer descriptor carried in RDMA work requests: the peer's
/// rkey plus a region-relative offset (standing in for the remote VA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteSlice {
    /// Remote region key.
    pub rkey: u32,
    /// Byte offset inside the remote region.
    pub offset: u64,
    /// Span length in bytes.
    pub len: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mr = MemoryRegion::new(16, 1, 2);
        mr.write(4, &[9, 8, 7]);
        let mut out = [0u8; 3];
        mr.read(4, &mut out);
        assert_eq!(out, [9, 8, 7]);
    }

    #[test]
    fn clones_share_storage() {
        let a = MemoryRegion::new(8, 1, 2);
        let b = a.clone();
        a.write(0, &[5]);
        let mut out = [0u8; 1];
        b.read(0, &mut out);
        assert_eq!(out[0], 5);
        assert!(a.same_region(&b));
    }

    #[test]
    fn contains_checks_bounds() {
        let mr = MemoryRegion::new(100, 1, 2);
        assert!(mr.contains(0, 100));
        assert!(mr.contains(99, 1));
        assert!(!mr.contains(99, 2));
        assert!(!mr.contains(u64::MAX, 1)); // overflow-safe
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn slice_out_of_bounds_panics() {
        MemoryRegion::new(10, 1, 2).slice(8, 4);
    }
}
