//! Reliable-connection queue pairs.
//!
//! A [`QueuePair`] models one side of an RC connection: a send queue and a
//! receive queue onto which work requests are posted non-blocking, with
//! completions reported through the associated CQs (paper §3.1). Both IBA
//! communication semantics are implemented:
//!
//! * **channel semantics** — `Send` work requests consume a pre-posted
//!   receive buffer at the peer. Arriving at a peer with an empty receive
//!   queue is an RNR failure reported to the *sender*, which is precisely
//!   the failure HPBD's credit-based flow control exists to prevent.
//! * **memory semantics** — `RdmaWrite` / `RdmaRead` move data between
//!   registered regions without consuming peer receives and without peer
//!   CPU involvement. rkey and bounds violations produce error completions.
//!
//! ## Timing
//!
//! Each posted request charges, in order: the posting CPU
//! ([`netmodel::Node::cpu`]), the local HCA's WQE pipeline (with QP-context
//! cache effects), the sender's tx port for the serialisation time, and the
//! receiver's rx port (cut-through, so an idle path costs `wire + α`).
//! RDMA READ adds a request propagation before the data flows back. Data
//! bytes move at the simulated placement instants.

use crate::cq::{Completion, CompletionQueue, Opcode, WcStatus};
use crate::fault::LinkFaults;
use crate::hca::Hca;
use crate::mr::{MrSlice, RemoteSlice};
use bytes::Bytes;
use netmodel::{Node, TransportModel};
use simcore::{Engine, SimDuration, SimTime};
use simtrace::LazyCounter;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::{Rc, Weak};

/// The operation carried by a work request.
#[derive(Clone, Debug)]
pub enum WorkKind {
    /// Two-sided send; the peer must have a posted receive.
    Send {
        /// Message payload, copied into the peer's receive buffer.
        payload: Bytes,
    },
    /// One-sided write of `local` into the peer region named by `remote`.
    RdmaWrite {
        /// Local source slice.
        local: MrSlice,
        /// Remote destination descriptor.
        remote: RemoteSlice,
    },
    /// One-sided read of the peer region named by `remote` into `local`.
    RdmaRead {
        /// Local destination slice.
        local: MrSlice,
        /// Remote source descriptor.
        remote: RemoteSlice,
    },
}

/// A send-queue work request.
#[derive(Clone, Debug)]
pub struct WorkRequest {
    /// Caller-chosen id, returned in the completion.
    pub wr_id: u64,
    /// The operation.
    pub kind: WorkKind,
    /// Set the solicited-event flag on the message, so the peer's armed CQ
    /// delivers a completion event (HPBD's server sets this on replies so
    /// the client's receiver thread wakes; paper §5).
    pub solicited: bool,
}

/// Why a post was rejected at the verbs interface (before any wire traffic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PostError {
    /// Send queue at capacity (too many uncompleted sends).
    SendQueueFull,
    /// Receive queue at capacity.
    RecvQueueFull,
    /// QP not connected to a live peer.
    NotConnected,
}

pub(crate) struct QpInner {
    engine: Engine,
    qp_num: u32,
    node: Node,
    hca: Hca,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    model: TransportModel,
    peer: RefCell<Weak<QpInner>>,
    recv_queue: RefCell<VecDeque<(u64, MrSlice)>>,
    outstanding_send: Cell<usize>,
    max_send_wr: usize,
    max_recv_wr: usize,
    sends_posted: Cell<u64>,
    rdma_reads: Cell<u64>,
    rdma_writes: Cell<u64>,
    /// Injected link faults; `None` (the default) keeps the hot path free
    /// of any fault arithmetic so unfaulted runs stay bit-identical.
    faults: RefCell<Option<LinkFaults>>,
    ctr_sends: LazyCounter,
    ctr_rdma_reads: LazyCounter,
    ctr_rdma_writes: LazyCounter,
}

/// One endpoint of an RC connection. Clone freely; clones share state.
#[derive(Clone)]
pub struct QueuePair {
    inner: Rc<QpInner>,
}

impl QueuePair {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        engine: Engine,
        qp_num: u32,
        node: Node,
        hca: Hca,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        model: TransportModel,
        max_send_wr: usize,
        max_recv_wr: usize,
    ) -> QueuePair {
        QueuePair {
            inner: Rc::new(QpInner {
                ctr_sends: engine.metrics().lazy_counter("ibsim.sends"),
                ctr_rdma_reads: engine.metrics().lazy_counter("ibsim.rdma_reads"),
                ctr_rdma_writes: engine.metrics().lazy_counter("ibsim.rdma_writes"),
                engine,
                qp_num,
                node,
                hca,
                send_cq,
                recv_cq,
                model,
                peer: RefCell::new(Weak::new()),
                recv_queue: RefCell::new(VecDeque::new()),
                outstanding_send: Cell::new(0),
                max_send_wr,
                max_recv_wr,
                sends_posted: Cell::new(0),
                rdma_reads: Cell::new(0),
                rdma_writes: Cell::new(0),
                faults: RefCell::new(None),
            }),
        }
    }

    pub(crate) fn wire_peers(a: &QueuePair, b: &QueuePair) {
        *a.inner.peer.borrow_mut() = Rc::downgrade(&b.inner);
        *b.inner.peer.borrow_mut() = Rc::downgrade(&a.inner);
    }

    /// This QP's number (appears in completions; feeds the HCA's context
    /// cache).
    pub fn qp_num(&self) -> u32 {
        self.inner.qp_num
    }

    /// The node this QP lives on.
    pub fn node(&self) -> &Node {
        &self.inner.node
    }

    /// The HCA this QP lives on.
    pub fn hca(&self) -> &Hca {
        &self.inner.hca
    }

    /// CQ receiving send-side completions.
    pub fn send_cq(&self) -> &CompletionQueue {
        &self.inner.send_cq
    }

    /// CQ receiving receive-side completions.
    pub fn recv_cq(&self) -> &CompletionQueue {
        &self.inner.recv_cq
    }

    /// Posted receives not yet consumed.
    pub fn recv_queue_depth(&self) -> usize {
        self.inner.recv_queue.borrow().len()
    }

    /// (sends, rdma reads, rdma writes) posted so far.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (
            self.inner.sends_posted.get(),
            self.inner.rdma_reads.get(),
            self.inner.rdma_writes.get(),
        )
    }

    /// Install a shared fault handle for this QP's link. Fault plans set
    /// the *same* handle on both ends of a connection so degradation is
    /// symmetric and drop/error budgets are shared.
    pub fn set_link_faults(&self, faults: LinkFaults) {
        *self.inner.faults.borrow_mut() = Some(faults);
    }

    /// The installed fault handle, if any.
    pub fn link_faults(&self) -> Option<LinkFaults> {
        self.inner.faults.borrow().clone()
    }

    /// One-way propagation, including any injected link latency.
    fn eff_prop(&self) -> SimDuration {
        let p = self.inner.model.propagation();
        match self.inner.faults.borrow().as_ref() {
            Some(f) => p + f.extra_latency(),
            None => p,
        }
    }

    /// Apply any injected bandwidth cut to a serialisation time.
    fn eff_stretch(&self, wire: SimDuration) -> SimDuration {
        match self.inner.faults.borrow().as_ref() {
            Some(f) => f.stretch(wire),
            None => wire,
        }
    }

    /// Serialisation time for `len` bytes, including any bandwidth cut.
    fn eff_wire(&self, len: u64) -> SimDuration {
        self.eff_stretch(self.inner.model.wire_time(len))
    }

    /// Post a receive buffer (`VAPI_post_rr`). Consumed FIFO by incoming
    /// sends.
    pub fn post_recv(&self, wr_id: u64, buffer: MrSlice) -> Result<(), PostError> {
        let mut q = self.inner.recv_queue.borrow_mut();
        if q.len() >= self.inner.max_recv_wr {
            return Err(PostError::RecvQueueFull);
        }
        q.push_back((wr_id, buffer));
        Ok(())
    }

    /// Post a send-queue work request (`VAPI_post_sr`). Non-blocking: the
    /// outcome arrives later on the send CQ (and, for `Send`, on the peer's
    /// receive CQ).
    pub fn post_send(&self, wr: WorkRequest) -> Result<(), PostError> {
        let inner = &self.inner;
        let peer = inner
            .peer
            .borrow()
            .upgrade()
            .ok_or(PostError::NotConnected)?;
        if inner.outstanding_send.get() >= inner.max_send_wr {
            return Err(PostError::SendQueueFull);
        }
        inner.outstanding_send.set(inner.outstanding_send.get() + 1);

        let now = inner.engine.now();
        // CPU builds and posts the descriptor.
        let post = SimDuration::from_nanos(inner.hca.params().post_ns);
        let (_, t_posted) = inner.node.cpu().reserve(now, post);
        self.dispatch_wr(peer, now, t_posted, wr);
        Ok(())
    }

    /// Post a chain of work requests with ONE doorbell
    /// (`VAPI_post_sr_list` analogue). The posting CPU pays the full
    /// descriptor+doorbell cost once plus the cheaper chained cost per
    /// subsequent WQE; the HCA still processes every WQE individually and
    /// every element completes on the send CQ exactly as if posted alone.
    ///
    /// All-or-nothing at the verbs interface: a chain that does not fit in
    /// the send queue is rejected whole, with nothing posted. Returns the
    /// number of WQEs posted.
    pub fn post_send_many(&self, wrs: Vec<WorkRequest>) -> Result<usize, PostError> {
        let inner = &self.inner;
        let n = wrs.len();
        if n == 0 {
            return Ok(0);
        }
        let peer = inner
            .peer
            .borrow()
            .upgrade()
            .ok_or(PostError::NotConnected)?;
        if inner.outstanding_send.get() + n > inner.max_send_wr {
            return Err(PostError::SendQueueFull);
        }
        inner.outstanding_send.set(inner.outstanding_send.get() + n);

        let now = inner.engine.now();
        let params = inner.hca.params();
        // One doorbell for the whole chain: full post cost for the head,
        // chained cost for every linked WQE after it.
        let post =
            SimDuration::from_nanos(params.post_ns + (n as u64 - 1) * params.chained_post_ns);
        let (_, t_posted) = inner.node.cpu().reserve(now, post);
        for wr in wrs {
            self.dispatch_wr(peer.clone(), now, t_posted, wr);
        }
        Ok(n)
    }

    /// Hand one posted WQE to the HCA pipeline: WQE processing, injected
    /// fault errors, then the kind-specific wire state machine. Shared by
    /// [`QueuePair::post_send`] and [`QueuePair::post_send_many`]; `posted`
    /// is the post instant (trace span start), `t_posted` the instant the
    /// posting CPU finished.
    fn dispatch_wr(&self, peer: Rc<QpInner>, posted: SimTime, t_posted: SimTime, wr: WorkRequest) {
        let inner = &self.inner;
        // Local HCA fetches and processes the WQE.
        let t_hca = inner.hca.process_wqe(t_posted, inner.qp_num);

        // Injected completion-with-error: the transport gives up on this
        // work request without any wire traffic — the caller sees a
        // RetryExceeded completion, exactly like exhausted RC retries.
        let injected_error = inner
            .faults
            .borrow()
            .as_ref()
            .is_some_and(|f| f.take_error());
        if injected_error {
            let opcode = match wr.kind {
                WorkKind::Send { .. } => Opcode::Send,
                WorkKind::RdmaWrite { .. } => Opcode::RdmaWrite,
                WorkKind::RdmaRead { .. } => Opcode::RdmaRead,
            };
            self.complete_send(posted, t_hca, wr.wr_id, opcode, WcStatus::RetryExceeded, 0);
            return;
        }

        match wr.kind {
            WorkKind::Send { ref payload } => {
                inner.sends_posted.set(inner.sends_posted.get() + 1);
                inner.ctr_sends.inc();
                self.do_send(peer, wr.wr_id, payload.clone(), wr.solicited, posted, t_hca);
            }
            WorkKind::RdmaWrite {
                ref local,
                ref remote,
            } => {
                inner.rdma_writes.set(inner.rdma_writes.get() + 1);
                inner.ctr_rdma_writes.inc();
                self.do_rdma_write(peer, wr.wr_id, local.clone(), *remote, posted, t_hca);
            }
            WorkKind::RdmaRead {
                ref local,
                ref remote,
            } => {
                inner.rdma_reads.set(inner.rdma_reads.get() + 1);
                inner.ctr_rdma_reads.inc();
                self.do_rdma_read(peer, wr.wr_id, local.clone(), *remote, posted, t_hca);
            }
        }
    }

    /// Deliver a completion to this QP's send CQ and release a send-queue
    /// slot. `posted` is the original post instant, for the trace span.
    fn complete_send(
        &self,
        posted: SimTime,
        at: SimTime,
        wr_id: u64,
        opcode: Opcode,
        status: WcStatus,
        len: u64,
    ) {
        let this = self.inner.clone();
        self.inner.engine.schedule_at(at, move || {
            this.outstanding_send
                .set(this.outstanding_send.get().saturating_sub(1));
            let name = match opcode {
                Opcode::Send => "send",
                Opcode::RdmaWrite => "rdma_write",
                Opcode::RdmaRead => "rdma_read",
                Opcode::Recv => "recv",
            };
            if this.engine.trace_enabled() {
                this.engine.tracer().span(
                    "ibsim",
                    name,
                    posted.as_nanos(),
                    this.engine.now().as_nanos(),
                    &[
                        ("bytes", len),
                        ("qp", this.qp_num as u64),
                        ("ok", (status == WcStatus::Success) as u64),
                    ],
                );
            }
            if opcode == Opcode::Send
                && status == WcStatus::Success
                && this.engine.lifecycle_enabled()
            {
                // The send completed: the message has left the wire. Only
                // `Send` wr_ids share the request-id namespace the lifecycle
                // registry keys on (RDMA wr_ids are server-local tokens).
                this.engine.lifecycle().mark_phys(
                    wr_id,
                    simtrace::MarkKind::WireTx,
                    this.engine.now().as_nanos(),
                );
            }
            this.send_cq.push(Completion {
                wr_id,
                opcode,
                status,
                byte_len: len,
                qp_num: this.qp_num,
                solicited: false,
            });
        });
    }

    /// Serialise `len` bytes out of this node and into `peer`'s rx port.
    /// Returns the instant the last byte lands at the peer.
    fn wire_transfer(&self, peer: &QpInner, start: SimTime, len: u64) -> SimTime {
        let inner = &self.inner;
        let wire = self.eff_wire(len);
        let prop = self.eff_prop();
        let (_, tx_end) = inner.node.tx().reserve(start, wire);
        // Cut-through: the head of the message reaches the peer α after it
        // left; the rx port is busy while the bits stream in.
        let rx_earliest = (tx_end + prop).saturating_minus(wire);
        let (_, rx_end) = peer.node.rx().reserve(rx_earliest, wire);
        rx_end
    }

    #[allow(clippy::too_many_arguments)]
    fn do_send(
        &self,
        peer: Rc<QpInner>,
        wr_id: u64,
        payload: Bytes,
        solicited: bool,
        posted: SimTime,
        t_hca: SimTime,
    ) {
        let inner = self.inner.clone();
        let len = payload.len() as u64;

        // Injected message loss: the bits leave the sender's tx port and
        // then vanish in the fabric — no delivery, no completion. Only the
        // send-queue slot is quietly released once serialisation ends, so
        // losses don't permanently shrink the send queue.
        let dropped = inner
            .faults
            .borrow()
            .as_ref()
            .is_some_and(|f| f.take_drop());
        if dropped {
            let wire = self.eff_wire(len);
            let (_, tx_end) = inner.node.tx().reserve(t_hca, wire);
            let this = self.inner.clone();
            inner.engine.schedule_at(tx_end, move || {
                this.outstanding_send
                    .set(this.outstanding_send.get().saturating_sub(1));
            });
            return;
        }

        // Injected delivery delay / duplication. A delay stretches only the
        // in-flight time, so the message can land after the timeout that
        // gave up on it; a duplicate schedules a second, ghost delivery of
        // the same bytes. Both consume their budget per message.
        let (extra_delay, duplicated) = match inner.faults.borrow().as_ref() {
            Some(f) => (f.take_delay(), f.take_dup()),
            None => (None, false),
        };

        let mut delivered = self.wire_transfer(&peer, t_hca, len);
        if let Some(d) = extra_delay {
            delivered += d;
        }

        let dup_payload = if duplicated {
            Some(payload.clone())
        } else {
            None
        };

        // Delivery at the peer: consume a receive, place the payload. The
        // local send completion fires only after the RC ack confirms the
        // outcome — RNR turns into a sender-side error, not a silent drop.
        let this = self.clone();
        let peer2 = peer.clone();
        inner.engine.schedule_at(delivered, move || {
            let t_placed = peer2.hca.process_wqe(peer2.engine.now(), peer2.qp_num);
            let ack = t_placed + this.eff_prop();
            let entry = peer2.recv_queue.borrow_mut().pop_front();
            match entry {
                None => {
                    // Receiver not ready: RC retries exhaust and the SENDER
                    // sees the failure.
                    this.complete_send(
                        posted,
                        ack,
                        wr_id,
                        Opcode::Send,
                        WcStatus::RnrRetryExceeded,
                        0,
                    );
                }
                Some((recv_wr_id, slice)) => {
                    let status = if len > slice.len {
                        WcStatus::LocalLengthError
                    } else {
                        slice.mr.write(slice.offset as usize, &payload);
                        WcStatus::Success
                    };
                    this.complete_send(posted, ack, wr_id, Opcode::Send, WcStatus::Success, len);
                    let peer3 = peer2.clone();
                    peer2.engine.schedule_at(t_placed, move || {
                        peer3.recv_cq.push(Completion {
                            wr_id: recv_wr_id,
                            opcode: Opcode::Recv,
                            status,
                            byte_len: len,
                            qp_num: peer3.qp_num,
                            solicited,
                        });
                    });
                }
            }
        });

        if let Some(ghost) = dup_payload {
            // Fabric-level ghost copy: it consumes a posted receive at the
            // destination and places the same payload, but the sender sees
            // only the one completion from the real copy above. Scheduled
            // after the real delivery at the same instant (engine FIFO), so
            // the real copy consumes the first receive. With no receive
            // posted the ghost vanishes silently — RNR reporting belongs to
            // the real copy alone.
            inner.engine.schedule_at(delivered, move || {
                let t_placed = peer.hca.process_wqe(peer.engine.now(), peer.qp_num);
                let entry = peer.recv_queue.borrow_mut().pop_front();
                if let Some((recv_wr_id, slice)) = entry {
                    let status = if len > slice.len {
                        WcStatus::LocalLengthError
                    } else {
                        slice.mr.write(slice.offset as usize, &ghost);
                        WcStatus::Success
                    };
                    let peer2 = peer.clone();
                    peer.engine.schedule_at(t_placed, move || {
                        peer2.recv_cq.push(Completion {
                            wr_id: recv_wr_id,
                            opcode: Opcode::Recv,
                            status,
                            byte_len: len,
                            qp_num: peer2.qp_num,
                            solicited,
                        });
                    });
                }
            });
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_rdma_write(
        &self,
        peer: Rc<QpInner>,
        wr_id: u64,
        local: MrSlice,
        remote: RemoteSlice,
        posted: SimTime,
        t_hca: SimTime,
    ) {
        let inner = self.inner.clone();
        // Local protection check happens in the HCA before any wire traffic.
        if !local.mr.contains(local.offset, local.len) || local.len != remote.len {
            self.complete_send(
                posted,
                t_hca,
                wr_id,
                Opcode::RdmaWrite,
                WcStatus::LocalProtectionError,
                0,
            );
            return;
        }
        let len = local.len;
        let mut data = vec![0u8; len as usize];
        local.mr.read(local.offset as usize, &mut data);

        let placed = self.wire_transfer(&peer, t_hca, len);
        let this = self.clone();
        inner.engine.schedule_at(placed, move || {
            let t_done = peer.hca.process_wqe(peer.engine.now(), peer.qp_num);
            let prop = this.eff_prop();
            match peer.hca.lookup_rkey(remote.rkey) {
                Some(region) if region.contains(remote.offset, len) => {
                    let peer2 = peer.clone();
                    let this2 = this.clone();
                    peer.engine.schedule_at(t_done, move || {
                        region.write(remote.offset as usize, &data);
                        let _ = peer2;
                        // Ack travels back; requester completion after it.
                        this2.complete_send(
                            posted,
                            this2.inner.engine.now() + prop,
                            wr_id,
                            Opcode::RdmaWrite,
                            WcStatus::Success,
                            len,
                        );
                    });
                }
                _ => {
                    this.complete_send(
                        posted,
                        t_done + prop,
                        wr_id,
                        Opcode::RdmaWrite,
                        WcStatus::RemoteAccessError,
                        0,
                    );
                }
            }
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn do_rdma_read(
        &self,
        peer: Rc<QpInner>,
        wr_id: u64,
        local: MrSlice,
        remote: RemoteSlice,
        posted: SimTime,
        t_hca: SimTime,
    ) {
        let inner = self.inner.clone();
        if !local.mr.contains(local.offset, local.len) || local.len != remote.len {
            self.complete_send(
                posted,
                t_hca,
                wr_id,
                Opcode::RdmaRead,
                WcStatus::LocalProtectionError,
                0,
            );
            return;
        }
        let len = local.len;
        let prop = self.eff_prop();
        // The read REQUEST is a small control packet: one propagation.
        let t_req_arrives = t_hca + prop;
        let this = self.clone();
        inner.engine.schedule_at(t_req_arrives, move || {
            let t_srv = peer.hca.process_wqe(peer.engine.now(), peer.qp_num);
            match peer.hca.lookup_rkey(remote.rkey) {
                Some(region) if region.contains(remote.offset, len) => {
                    let mut data = vec![0u8; len as usize];
                    region.read(remote.offset as usize, &mut data);
                    // Data streams back: peer tx -> our rx. READ responses
                    // are limited by the Tavor HCA's read bandwidth.
                    let read_bw = this
                        .inner
                        .model
                        .bytes_per_ns
                        .min(peer.hca.params().rdma_read_bytes_per_ns);
                    let wire = this.eff_stretch(simcore::SimDuration::from_nanos(
                        (len as f64 / read_bw).round() as u64,
                    ));
                    let (_, tx_end) = peer.node.tx().reserve(t_srv, wire);
                    let rx_earliest = (tx_end + prop).saturating_minus(wire);
                    let (_, rx_end) = this.inner.node.rx().reserve(rx_earliest, wire);
                    let this2 = this.clone();
                    this.inner.engine.schedule_at(rx_end, move || {
                        let t_done = this2
                            .inner
                            .hca
                            .process_wqe(this2.inner.engine.now(), this2.inner.qp_num);
                        let this3 = this2.clone();
                        let local2 = local.clone();
                        this2.inner.engine.schedule_at(t_done, move || {
                            local2.mr.write(local2.offset as usize, &data);
                            this3.complete_send(
                                posted,
                                this3.inner.engine.now(),
                                wr_id,
                                Opcode::RdmaRead,
                                WcStatus::Success,
                                len,
                            );
                        });
                    });
                }
                _ => {
                    this.complete_send(
                        posted,
                        t_srv + prop,
                        wr_id,
                        Opcode::RdmaRead,
                        WcStatus::RemoteAccessError,
                        0,
                    );
                }
            }
        });
    }
}

impl fmt::Debug for QueuePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueuePair")
            .field("qp_num", &self.inner.qp_num)
            .field("node", &self.inner.node.name())
            .field("recv_depth", &self.recv_queue_depth())
            .finish()
    }
}

/// Saturating `SimTime - SimDuration` helper (never goes below zero).
trait SaturatingMinus {
    fn saturating_minus(self, d: SimDuration) -> SimTime;
}

impl SaturatingMinus for SimTime {
    fn saturating_minus(self, d: SimDuration) -> SimTime {
        SimTime(self.as_nanos().saturating_sub(d.as_nanos()))
    }
}
