//! Typed, owned verb handles.
//!
//! The raw verb objects ([`QueuePair`], [`CompletionQueue`],
//! [`MemoryRegion`]) are deliberately thin — they mirror the VAPI calls the
//! paper's implementation uses. Protocol code built directly on them has to
//! get two things right at every call site: which node's HCA a resource
//! belongs to, and how work requests are linked into a chain before the
//! doorbell rings. This module packages those rules into owned handles in
//! the style of mond77's `ibv` crate (`src/types/`): a [`Pd`] scopes
//! resource creation to one node, a [`Qp`] only emits work requests through
//! a [`WrChain`] builder, and the chain — not the caller — decides whether
//! the post is a single `post_send` or a doorbell-batched
//! `post_send_many`.
//!
//! Ownership rules (see DESIGN.md §15):
//!
//! * A [`WrChain`] borrows its [`Qp`]; it cannot outlive the connection and
//!   cannot interleave with another chain on the same QP.
//! * Posting consumes the chain. All-or-nothing: if the send queue cannot
//!   take the whole chain, nothing is posted and the caller still owns the
//!   request content (ids/slices are `Copy`/cheap clones).
//! * A chain of one posts through the exact single-WR path — same CPU
//!   charge, same event sequence — so wrapping a lone request in a chain is
//!   free and batching-off runs stay byte-identical.
//! * [`Mr`] does **not** deregister on drop: registrations are shared
//!   (clones of the same region live in staging descriptors and in-flight
//!   work requests), so teardown stays explicit via [`Hca::deregister`],
//!   exactly as before. The handle adds typed creation, not RAII teardown.

use crate::cq::CompletionQueue;
use crate::fabric::IbNode;
use crate::hca::Hca;
use crate::mr::{MemoryRegion, MrSlice, RemoteSlice};
use crate::qp::{PostError, QueuePair, WorkKind, WorkRequest};
use bytes::Bytes;
use std::ops::Deref;

/// Protection-domain analogue: scopes CQ and MR creation to one node's HCA.
#[derive(Clone)]
pub struct Pd {
    node: IbNode,
}

impl Pd {
    /// Create a protection domain on `node`.
    pub fn new(node: IbNode) -> Pd {
        Pd { node }
    }

    /// The node this domain lives on.
    pub fn node(&self) -> &IbNode {
        &self.node
    }

    /// Register a `len`-byte memory region with this domain's HCA.
    pub fn register(&self, len: usize) -> Mr {
        Mr {
            mr: self.node.hca().register(len),
        }
    }

    /// Create a completion queue on this domain's node.
    pub fn create_cq(&self) -> Cq {
        Cq {
            cq: self.node.create_cq(),
        }
    }

    /// The HCA behind this domain (for explicit deregistration).
    pub fn hca(&self) -> &Hca {
        self.node.hca()
    }
}

/// An owned registered-region handle created through a [`Pd`].
///
/// Derefs to [`MemoryRegion`], so reads/writes/slices work unchanged. Does
/// not deregister on drop — see the module docs.
#[derive(Clone)]
pub struct Mr {
    mr: MemoryRegion,
}

impl Mr {
    /// A shared handle to the underlying region (for descriptors that store
    /// `MemoryRegion` directly).
    pub fn region(&self) -> &MemoryRegion {
        &self.mr
    }
}

impl Deref for Mr {
    type Target = MemoryRegion;
    fn deref(&self) -> &MemoryRegion {
        &self.mr
    }
}

/// An owned completion-queue handle created through a [`Pd`].
#[derive(Clone)]
pub struct Cq {
    cq: CompletionQueue,
}

impl Cq {
    /// The underlying raw CQ (for fabric connection calls).
    pub fn raw(&self) -> &CompletionQueue {
        &self.cq
    }
}

impl Deref for Cq {
    type Target = CompletionQueue;
    fn deref(&self) -> &CompletionQueue {
        &self.cq
    }
}

/// A typed RC queue-pair handle.
///
/// Receive-side and introspection methods pass straight through; the send
/// side is only reachable by building a [`WrChain`] with [`Qp::chain`],
/// which is what makes doorbell batching an explicit, visible decision at
/// every post site (simlint rule A003 enforces this outside ibsim).
pub struct Qp {
    qp: QueuePair,
}

impl From<QueuePair> for Qp {
    fn from(qp: QueuePair) -> Qp {
        Qp { qp }
    }
}

impl Qp {
    /// Start an empty work-request chain on this QP.
    pub fn chain(&self) -> WrChain<'_> {
        WrChain {
            qp: self,
            wrs: ChainWrs::None,
        }
    }

    /// Post a receive work request (unchanged from the raw verb).
    pub fn post_recv(&self, wr_id: u64, buffer: MrSlice) -> Result<(), PostError> {
        self.qp.post_recv(wr_id, buffer)
    }

    /// This QP's number.
    pub fn qp_num(&self) -> u32 {
        self.qp.qp_num()
    }

    /// The send CQ completions land on.
    pub fn send_cq(&self) -> &CompletionQueue {
        self.qp.send_cq()
    }

    /// The receive CQ completions land on.
    pub fn recv_cq(&self) -> &CompletionQueue {
        self.qp.recv_cq()
    }

    /// Number of receive WRs currently posted.
    pub fn recv_queue_depth(&self) -> usize {
        self.qp.recv_queue_depth()
    }

    /// `(sends, rdma_writes, rdma_reads)` posted over the QP lifetime.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        self.qp.op_counts()
    }

    /// Arm link-level fault injection on this QP.
    pub fn set_link_faults(&self, faults: crate::fault::LinkFaults) {
        self.qp.set_link_faults(faults)
    }

    /// The raw queue pair, for wiring and tests. Sending through it
    /// directly bypasses the chain discipline — don't.
    pub fn raw(&self) -> &QueuePair {
        &self.qp
    }
}

/// Inline storage for a chain: the overwhelmingly common one-element chain
/// must not allocate, or wrapping every single post in a chain would cost
/// the hot path a heap round trip.
enum ChainWrs {
    None,
    One(WorkRequest),
    Many(Vec<WorkRequest>),
}

/// A linked list of work requests destined for one doorbell ring.
///
/// Build with [`WrChain::send`] / [`WrChain::rdma_read`] /
/// [`WrChain::rdma_write`] / [`WrChain::push`], then [`WrChain::post`]
/// once. Elements complete individually on the send CQ in post order.
pub struct WrChain<'a> {
    qp: &'a Qp,
    wrs: ChainWrs,
}

impl WrChain<'_> {
    /// Append an already-built work request.
    pub fn push(&mut self, wr: WorkRequest) -> &mut Self {
        self.wrs = match std::mem::replace(&mut self.wrs, ChainWrs::None) {
            ChainWrs::None => ChainWrs::One(wr),
            ChainWrs::One(first) => ChainWrs::Many(vec![first, wr]),
            ChainWrs::Many(mut v) => {
                v.push(wr);
                ChainWrs::Many(v)
            }
        };
        self
    }

    /// Append a two-sided send of `payload`.
    pub fn send(&mut self, wr_id: u64, payload: Bytes, solicited: bool) -> &mut Self {
        self.push(WorkRequest {
            wr_id,
            kind: WorkKind::Send { payload },
            solicited,
        })
    }

    /// Append a one-sided RDMA READ into `local` from `remote`.
    pub fn rdma_read(&mut self, wr_id: u64, local: MrSlice, remote: RemoteSlice) -> &mut Self {
        self.push(WorkRequest {
            wr_id,
            kind: WorkKind::RdmaRead { local, remote },
            solicited: false,
        })
    }

    /// Append a one-sided RDMA WRITE of `local` to `remote`.
    pub fn rdma_write(&mut self, wr_id: u64, local: MrSlice, remote: RemoteSlice) -> &mut Self {
        self.push(WorkRequest {
            wr_id,
            kind: WorkKind::RdmaWrite { local, remote },
            solicited: false,
        })
    }

    /// Work requests queued so far.
    pub fn len(&self) -> usize {
        match &self.wrs {
            ChainWrs::None => 0,
            ChainWrs::One(_) => 1,
            ChainWrs::Many(v) => v.len(),
        }
    }

    /// True if nothing has been queued.
    pub fn is_empty(&self) -> bool {
        matches!(self.wrs, ChainWrs::None)
    }

    /// Ring the doorbell: post the whole chain as one linked list.
    ///
    /// A chain of one takes the plain single-WR path (identical cost and
    /// event sequence to a bare post). Longer chains pay the doorbell once
    /// plus the cheaper chained descriptor cost per extra WQE. On error
    /// nothing was posted. Returns the number of WQEs posted.
    pub fn post(self) -> Result<usize, PostError> {
        match self.wrs {
            ChainWrs::None => Ok(0),
            ChainWrs::One(wr) => self.qp.qp.post_send(wr).map(|()| 1),
            ChainWrs::Many(v) => self.qp.qp.post_send_many(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{Opcode, WcStatus};
    use crate::fabric::Fabric;
    use netmodel::Calibration;
    use simcore::Engine;
    use std::rc::Rc;

    struct Rig {
        engine: Engine,
        a: Pd,
        b: Pd,
        qp_a: Qp,
        qp_b: Qp,
    }

    fn rig() -> Rig {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = Pd::new(fabric.add_node("a"));
        let b = Pd::new(fabric.add_node("b"));
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (qp_a, qp_b) = fabric.connect(
            a.node(),
            acq.raw(),
            arcq.raw(),
            b.node(),
            bcq.raw(),
            brcq.raw(),
        );
        Rig {
            engine,
            a,
            b,
            qp_a: Qp::from(qp_a),
            qp_b: Qp::from(qp_b),
        }
    }

    #[test]
    fn chain_of_one_behaves_like_plain_post() {
        let r = rig();
        let rbuf = r.b.register(64);
        r.qp_b.post_recv(1, rbuf.slice(0, 64)).unwrap();
        let mut c = r.qp_a.chain();
        c.send(7, Bytes::from_static(b"one"), true);
        assert_eq!(c.len(), 1);
        assert_eq!(c.post().unwrap(), 1);
        r.engine.run_until_idle();
        let comp = r.qp_a.send_cq().poll().unwrap();
        assert_eq!((comp.wr_id, comp.status), (7, WcStatus::Success));
        let mut out = [0u8; 3];
        rbuf.read(0, &mut out);
        assert_eq!(&out, b"one");
    }

    #[test]
    fn empty_chain_posts_nothing() {
        let r = rig();
        assert_eq!(r.qp_a.chain().post().unwrap(), 0);
        r.engine.run_until_idle();
        assert!(r.qp_a.send_cq().poll().is_none());
    }

    #[test]
    fn chained_rdma_writes_all_complete_with_data_intact() {
        let r = rig();
        let src = r.a.register(4 * 4096);
        let dst = r.b.register(4 * 4096);
        for i in 0..4u8 {
            src.write(i as usize * 4096, &vec![i + 1; 4096]);
        }
        let mut c = r.qp_a.chain();
        for i in 0..4u64 {
            c.rdma_write(
                i,
                src.slice(i * 4096, 4096),
                RemoteSlice {
                    rkey: dst.rkey(),
                    offset: i * 4096,
                    len: 4096,
                },
            );
        }
        assert_eq!(c.post().unwrap(), 4);
        r.engine.run_until_idle();
        let comps = r.qp_a.send_cq().drain();
        assert_eq!(comps.len(), 4);
        assert!(comps
            .iter()
            .all(|c| c.status == WcStatus::Success && c.opcode == Opcode::RdmaWrite));
        // Completions arrive in post order.
        let ids: Vec<u64> = comps.iter().map(|c| c.wr_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        for i in 0..4u8 {
            let mut out = vec![0u8; 4096];
            dst.read(i as usize * 4096, &mut out);
            assert!(out.iter().all(|&b| b == i + 1), "extent {i} intact");
        }
    }

    #[test]
    fn chain_posting_is_cheaper_than_individual_posts() {
        // The whole point of the doorbell batch: N chained posts must charge
        // the posting CPU less than N separate posts. Compare the time the
        // CPU frees up, not end-to-end (wire time dominates e2e).
        let cal = Calibration::cluster_2005();
        let chained = cal.hca.post_ns + 7 * cal.hca.chained_post_ns;
        let separate = 8 * cal.hca.post_ns;
        assert!(
            chained < separate,
            "chained {chained}ns should beat separate {separate}ns"
        );
    }

    #[test]
    fn chain_rejected_whole_when_send_queue_cannot_take_it() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let fabric = Fabric::new(engine.clone(), cal);
        let a = Pd::new(fabric.add_node("a"));
        let b = Pd::new(fabric.add_node("b"));
        let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
        let (qp_a, _qp_b) = fabric.connect_with_depth(
            a.node(),
            acq.raw(),
            arcq.raw(),
            b.node(),
            bcq.raw(),
            brcq.raw(),
            3,
            3,
        );
        let qp_a = Qp::from(qp_a);
        let src = a.register(4 * 64);
        let dst = b.register(4 * 64);
        let mut c = qp_a.chain();
        for i in 0..4u64 {
            c.rdma_write(
                i,
                src.slice(i * 64, 64),
                RemoteSlice {
                    rkey: dst.rkey(),
                    offset: i * 64,
                    len: 64,
                },
            );
        }
        // Four WRs into a depth-3 queue: rejected whole, nothing posted.
        assert_eq!(c.post(), Err(PostError::SendQueueFull));
        engine.run_until_idle();
        assert!(qp_a.send_cq().poll().is_none());
        assert_eq!(qp_a.op_counts(), (0, 0, 0));
        // A fitting chain still goes through afterwards.
        let mut c = qp_a.chain();
        for i in 0..3u64 {
            c.rdma_write(
                i,
                src.slice(i * 64, 64),
                RemoteSlice {
                    rkey: dst.rkey(),
                    offset: i * 64,
                    len: 64,
                },
            );
        }
        assert_eq!(c.post().unwrap(), 3);
        engine.run_until_idle();
        assert_eq!(qp_a.send_cq().drain().len(), 3);
    }

    #[test]
    fn mixed_chain_send_and_rdma_complete_in_order() {
        let r = rig();
        let rbuf = r.b.register(64);
        let src = r.a.register(4096);
        let dst = r.b.register(4096);
        r.qp_b.post_recv(5, rbuf.slice(0, 64)).unwrap();
        src.write(0, &[0xCD; 4096]);
        let mut c = r.qp_a.chain();
        c.rdma_write(
            1,
            src.slice(0, 4096),
            RemoteSlice {
                rkey: dst.rkey(),
                offset: 0,
                len: 4096,
            },
        )
        .send(2, Bytes::from_static(b"done"), true);
        assert_eq!(c.post().unwrap(), 2);
        r.engine.run_until_idle();
        let comps = r.qp_a.send_cq().drain();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].opcode, Opcode::RdmaWrite);
        assert_eq!(comps[1].opcode, Opcode::Send);
        assert!(dst.to_vec().iter().all(|&b| b == 0xCD));
    }

    #[test]
    fn pd_scopes_mr_and_cq_creation() {
        let r = rig();
        let mr = r.a.register(256);
        assert_eq!(mr.len(), 256);
        mr.write(0, &[1, 2, 3]);
        let mut out = [0u8; 3];
        mr.region().read(0, &mut out);
        assert_eq!(out, [1, 2, 3]);
        let cq = r.a.create_cq();
        assert!(cq.poll().is_none());
        // The registration is visible to the owning HCA for RDMA targeting.
        assert!(r.a.hca().lookup_rkey(mr.rkey()).is_some());
    }
}
