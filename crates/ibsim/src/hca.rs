//! Host channel adapter model.
//!
//! Each node's [`Hca`] owns:
//!
//! * the registered-memory table (rkey → region) used to resolve incoming
//!   RDMA operations;
//! * a WQE-processing [`Resource`] — every work request passes through it,
//!   so a busy adapter queues work;
//! * a QP-context cache. The MT23108 keeps a limited number of QP contexts
//!   on-chip; once a node talks to more peers than fit (the paper observes
//!   this at 16 servers, Figure 10), each operation pays a context-reload
//!   penalty. Modeled as an LRU set over QP numbers.

use crate::mr::MemoryRegion;
use netmodel::HcaParams;
use simcore::{MetricsRegistry, Resource, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

struct HcaInner {
    params: HcaParams,
    regions: BTreeMap<u32, MemoryRegion>,
    next_key: u32,
    /// LRU of recently-used QP numbers, most recent at the back.
    qp_lru: Vec<u32>,
    /// QPs created on this HCA (drives the multi-QP scheduling cost).
    connected_qps: usize,
    ctx_reloads: u64,
    ctx_hits: u64,
    /// Shared metrics sink, installed by the fabric at node creation.
    metrics: Option<MetricsRegistry>,
}

/// Per-node host channel adapter.
#[derive(Clone)]
pub struct Hca {
    proc: Resource,
    inner: Rc<RefCell<HcaInner>>,
}

impl Hca {
    /// Create an HCA with the given calibrated parameters.
    pub fn new(params: HcaParams) -> Hca {
        Hca {
            proc: Resource::new("hca-proc"),
            inner: Rc::new(RefCell::new(HcaInner {
                params,
                regions: BTreeMap::new(),
                next_key: 1,
                qp_lru: Vec::new(),
                connected_qps: 0,
                ctx_reloads: 0,
                ctx_hits: 0,
                metrics: None,
            })),
        }
    }

    /// Install the shared metrics registry so context-cache hits/misses
    /// are recorded (done by the fabric when the node is created).
    pub fn set_metrics(&self, metrics: MetricsRegistry) {
        self.inner.borrow_mut().metrics = Some(metrics);
    }

    /// Calibrated parameters.
    pub fn params(&self) -> HcaParams {
        self.inner.borrow().params.clone()
    }

    /// Register a zeroed region of `len` bytes and return it. The *timing*
    /// cost of registration is charged by the caller against its CPU (see
    /// `netmodel::Calibration::registration_time`); this call only installs
    /// the translation entry.
    pub fn register(&self, len: usize) -> MemoryRegion {
        let mut inner = self.inner.borrow_mut();
        let lkey = inner.next_key;
        let rkey = inner.next_key + 1;
        inner.next_key += 2;
        let mr = MemoryRegion::new(len, lkey, rkey);
        inner.regions.insert(rkey, mr.clone());
        mr
    }

    /// Remove a region from the translation table. RDMA operations arriving
    /// afterwards fail with a remote access error, as on real hardware.
    pub fn deregister(&self, mr: &MemoryRegion) {
        self.inner.borrow_mut().regions.remove(&mr.rkey());
    }

    /// Resolve an rkey to its region, if still registered.
    pub fn lookup_rkey(&self, rkey: u32) -> Option<MemoryRegion> {
        self.inner.borrow().regions.get(&rkey).cloned()
    }

    /// Record a QP created on this HCA (called at connection setup).
    pub fn note_qp_connected(&self) {
        self.inner.borrow_mut().connected_qps += 1;
    }

    /// QPs created on this HCA.
    pub fn connected_qps(&self) -> usize {
        self.inner.borrow().connected_qps
    }

    /// Charge WQE processing for one operation on `qp_num`, starting no
    /// earlier than `earliest`. Returns the instant the HCA is done with it.
    /// Includes the QP-context penalty when the context misses the cache
    /// and the scheduling cost of handling a QP population beyond the
    /// cache capacity.
    pub fn process_wqe(&self, earliest: SimTime, qp_num: u32) -> SimTime {
        let cost = {
            let mut inner = self.inner.borrow_mut();
            let cache = inner.params.qp_cache_size;
            let excess = inner.connected_qps.saturating_sub(cache) as u64;
            let sched = excess * inner.params.qp_sched_ns_per_excess;
            let hit = if let Some(pos) = inner.qp_lru.iter().position(|&q| q == qp_num) {
                inner.qp_lru.remove(pos);
                inner.qp_lru.push(qp_num);
                true
            } else {
                inner.qp_lru.push(qp_num);
                if inner.qp_lru.len() > cache {
                    inner.qp_lru.remove(0);
                }
                false
            };
            if hit {
                inner.ctx_hits += 1;
                if let Some(m) = &inner.metrics {
                    m.inc("ibsim.qp_ctx_hits");
                }
                inner.params.per_wqe_ns + sched
            } else {
                inner.ctx_reloads += 1;
                if let Some(m) = &inner.metrics {
                    m.inc("ibsim.qp_ctx_reloads");
                }
                inner.params.per_wqe_ns + inner.params.qp_ctx_reload_ns + sched
            }
        };
        let (_, end) = self.proc.reserve(earliest, SimDuration::from_nanos(cost));
        end
    }

    /// QP context reloads so far (Figure 10 diagnostics).
    pub fn ctx_reloads(&self) -> u64 {
        self.inner.borrow().ctx_reloads
    }

    /// QP context cache hits so far.
    pub fn ctx_hits(&self) -> u64 {
        self.inner.borrow().ctx_hits
    }

    /// The WQE-processing resource (for utilization reporting).
    pub fn proc(&self) -> &Resource {
        &self.proc
    }
}

impl fmt::Debug for Hca {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Hca")
            .field("regions", &inner.regions.len())
            .field("ctx_reloads", &inner.ctx_reloads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::Calibration;

    fn hca() -> Hca {
        Hca::new(Calibration::cluster_2005().hca)
    }

    #[test]
    fn register_assigns_unique_keys() {
        let h = hca();
        let a = h.register(64);
        let b = h.register(64);
        assert_ne!(a.rkey(), b.rkey());
        assert_ne!(a.lkey(), a.rkey());
        assert!(h.lookup_rkey(a.rkey()).unwrap().same_region(&a));
    }

    #[test]
    fn deregister_revokes_rkey() {
        let h = hca();
        let a = h.register(64);
        h.deregister(&a);
        assert!(h.lookup_rkey(a.rkey()).is_none());
    }

    #[test]
    fn qp_cache_within_capacity_has_no_reloads_after_warmup() {
        let h = hca();
        let cache = h.params().qp_cache_size as u32;
        // Round-robin over exactly `cache` QPs: only cold misses.
        for round in 0..10 {
            for qp in 0..cache {
                h.process_wqe(SimTime::ZERO, qp);
                let _ = round;
            }
        }
        assert_eq!(h.ctx_reloads(), cache as u64, "only compulsory misses");
    }

    #[test]
    fn qp_cache_thrashes_beyond_capacity() {
        let h = hca();
        let cache = h.params().qp_cache_size as u32;
        // Round-robin over 2x the cache: with LRU every access misses.
        for _ in 0..5 {
            for qp in 0..(2 * cache) {
                h.process_wqe(SimTime::ZERO, qp);
            }
        }
        assert_eq!(h.ctx_hits(), 0, "LRU + round-robin over 2x cache = thrash");
    }

    #[test]
    fn wqe_cost_higher_on_miss() {
        let h = hca();
        let p = h.params();
        let t1 = h.process_wqe(SimTime::ZERO, 1); // miss
        let t2 = h.process_wqe(t1, 1); // hit
        assert_eq!(
            t1.as_nanos(),
            p.per_wqe_ns + p.qp_ctx_reload_ns,
            "miss pays reload"
        );
        assert_eq!(t2.as_nanos() - t1.as_nanos(), p.per_wqe_ns, "hit does not");
    }

    #[test]
    fn wqe_processing_is_serialized() {
        let h = hca();
        let a = h.process_wqe(SimTime::ZERO, 1);
        let b = h.process_wqe(SimTime::ZERO, 1);
        assert!(b > a, "second WQE queues behind the first");
    }
}
