//! Link-level fault state for injected failures.
//!
//! A [`LinkFaults`] handle carries the *current* fault condition of one
//! client↔server connection: added propagation latency, a bandwidth
//! multiplier, and one-shot counters for message drops and
//! completion-with-error injection. The same handle is installed on **both**
//! queue pairs of a connection (see [`crate::QueuePair::set_link_faults`]),
//! so degradation is symmetric and drop/error budgets are shared across
//! directions, matching a single flaky cable rather than two.
//!
//! Fault plans (the `simfault` crate) mutate these handles from scheduled
//! engine events; the QP engine consults them on its hot path. A QP with no
//! handle installed — the default — performs **zero** extra arithmetic, so
//! runs without fault plans are byte-identical to builds that predate this
//! module.

use simcore::SimDuration;
use std::cell::Cell;
use std::rc::Rc;

struct LinkFaultsInner {
    added_latency_ns: Cell<u64>,
    bandwidth_factor: Cell<f64>,
    drop_next: Cell<u32>,
    error_next: Cell<u32>,
    delay_next: Cell<u32>,
    delay_ns: Cell<u64>,
    dup_next: Cell<u32>,
    dropped: Cell<u64>,
    errored: Cell<u64>,
    delayed: Cell<u64>,
    duplicated: Cell<u64>,
}

/// Shared, interiorly-mutable fault state for one link. Clone freely;
/// clones share state.
#[derive(Clone)]
pub struct LinkFaults {
    inner: Rc<LinkFaultsInner>,
}

impl LinkFaults {
    /// A healthy link: no added latency, full bandwidth, nothing queued to
    /// drop or fail.
    pub fn new() -> LinkFaults {
        LinkFaults {
            inner: Rc::new(LinkFaultsInner {
                added_latency_ns: Cell::new(0),
                bandwidth_factor: Cell::new(1.0),
                drop_next: Cell::new(0),
                error_next: Cell::new(0),
                delay_next: Cell::new(0),
                delay_ns: Cell::new(0),
                dup_next: Cell::new(0),
                dropped: Cell::new(0),
                errored: Cell::new(0),
                delayed: Cell::new(0),
                duplicated: Cell::new(0),
            }),
        }
    }

    /// Degrade the link: every transfer gains `added_latency_ns` of one-way
    /// propagation and bandwidth is multiplied by `bandwidth_factor`.
    /// Calling with `(0, 1.0)` restores the link to healthy.
    ///
    /// # Panics
    /// Panics if `bandwidth_factor` is not in `(0.0, 1.0]`.
    pub fn degrade(&self, added_latency_ns: u64, bandwidth_factor: f64) {
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth_factor must be in (0.0, 1.0]"
        );
        self.inner.added_latency_ns.set(added_latency_ns);
        self.inner.bandwidth_factor.set(bandwidth_factor);
    }

    /// Arrange for the next `n` messages on the link to vanish in flight
    /// (no delivery, no completion — recovery must come from timeouts).
    pub fn drop_next(&self, n: u32) {
        let inner = &self.inner;
        inner.drop_next.set(inner.drop_next.get().saturating_add(n));
    }

    /// Arrange for the next `n` send-side work requests to complete with
    /// [`crate::WcStatus::RetryExceeded`] instead of transferring.
    pub fn error_next(&self, n: u32) {
        let inner = &self.inner;
        inner
            .error_next
            .set(inner.error_next.get().saturating_add(n));
    }

    /// Arrange for the next `n` deliveries on the link to arrive
    /// `delay_ns` late. The send still completes successfully (the ack
    /// follows the late arrival); only the in-flight time stretches, so a
    /// delayed request can land after the timeout that gave up on it —
    /// the reordering that write fencing exists for.
    pub fn delay_next(&self, n: u32, delay_ns: u64) {
        let inner = &self.inner;
        inner
            .delay_next
            .set(inner.delay_next.get().saturating_add(n));
        inner.delay_ns.set(delay_ns);
    }

    /// Arrange for the next `n` messages on the link to be delivered
    /// twice: the ghost copy consumes a posted receive at the destination
    /// while the sender sees a single completion.
    pub fn duplicate_next(&self, n: u32) {
        let inner = &self.inner;
        inner.dup_next.set(inner.dup_next.get().saturating_add(n));
    }

    /// Remaining armed delay + duplication budget not yet consumed by
    /// traffic. Test harnesses assert this has drained before phases that
    /// must not race a late or ghost delivery.
    pub fn pending_delay_dup(&self) -> u32 {
        self.inner
            .delay_next
            .get()
            .saturating_add(self.inner.dup_next.get())
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Deliveries delayed so far.
    pub fn delayed(&self) -> u64 {
        self.inner.delayed.get()
    }

    /// Messages delivered twice so far.
    pub fn duplicated(&self) -> u64 {
        self.inner.duplicated.get()
    }

    /// Work requests failed with an injected completion error so far.
    pub fn errored(&self) -> u64 {
        self.inner.errored.get()
    }

    /// Current added one-way latency in nanoseconds.
    pub fn added_latency_ns(&self) -> u64 {
        self.inner.added_latency_ns.get()
    }

    /// Current bandwidth multiplier.
    pub fn bandwidth_factor(&self) -> f64 {
        self.inner.bandwidth_factor.get()
    }

    /// Consume one pending drop, if any. Counts it when taken.
    pub(crate) fn take_drop(&self) -> bool {
        let pending = self.inner.drop_next.get();
        if pending == 0 {
            return false;
        }
        self.inner.drop_next.set(pending - 1);
        self.inner.dropped.set(self.inner.dropped.get() + 1);
        true
    }

    /// Consume one pending delivery delay, if any. Counts it when taken.
    pub(crate) fn take_delay(&self) -> Option<SimDuration> {
        let pending = self.inner.delay_next.get();
        if pending == 0 {
            return None;
        }
        self.inner.delay_next.set(pending - 1);
        self.inner.delayed.set(self.inner.delayed.get() + 1);
        Some(SimDuration::from_nanos(self.inner.delay_ns.get()))
    }

    /// Consume one pending duplication, if any. Counts it when taken.
    pub(crate) fn take_dup(&self) -> bool {
        let pending = self.inner.dup_next.get();
        if pending == 0 {
            return false;
        }
        self.inner.dup_next.set(pending - 1);
        self.inner.duplicated.set(self.inner.duplicated.get() + 1);
        true
    }

    /// Consume one pending completion error, if any. Counts it when taken.
    pub(crate) fn take_error(&self) -> bool {
        let pending = self.inner.error_next.get();
        if pending == 0 {
            return false;
        }
        self.inner.error_next.set(pending - 1);
        self.inner.errored.set(self.inner.errored.get() + 1);
        true
    }

    /// Extra one-way propagation to add to every transfer. Zero when
    /// undegraded, so adding it is the identity.
    pub(crate) fn extra_latency(&self) -> SimDuration {
        SimDuration::from_nanos(self.inner.added_latency_ns.get())
    }

    /// Stretch a serialisation time by the bandwidth cut. Returns the input
    /// unchanged (no float arithmetic at all) at full bandwidth, keeping
    /// undegraded timings bit-identical.
    pub(crate) fn stretch(&self, wire: SimDuration) -> SimDuration {
        let factor = self.inner.bandwidth_factor.get();
        if factor == 1.0 {
            return wire;
        }
        SimDuration::from_nanos((wire.as_nanos() as f64 / factor).round() as u64)
    }
}

impl Default for LinkFaults {
    fn default() -> LinkFaults {
        LinkFaults::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_link_is_identity() {
        let f = LinkFaults::new();
        assert_eq!(f.extra_latency(), SimDuration::from_nanos(0));
        let w = SimDuration::from_nanos(12_345);
        assert_eq!(f.stretch(w), w);
        assert!(!f.take_drop());
        assert!(!f.take_error());
    }

    #[test]
    fn degrade_stretches_and_delays() {
        let f = LinkFaults::new();
        f.degrade(5_000, 0.5);
        assert_eq!(f.extra_latency(), SimDuration::from_nanos(5_000));
        assert_eq!(
            f.stretch(SimDuration::from_nanos(1_000)),
            SimDuration::from_nanos(2_000)
        );
        // Restoring to (0, 1.0) heals the link.
        f.degrade(0, 1.0);
        let w = SimDuration::from_nanos(777);
        assert_eq!(f.stretch(w), w);
    }

    #[test]
    fn drop_and_error_budgets_are_one_shot() {
        let f = LinkFaults::new();
        f.drop_next(2);
        assert!(f.take_drop());
        assert!(f.take_drop());
        assert!(!f.take_drop());
        assert_eq!(f.dropped(), 2);

        f.error_next(1);
        assert!(f.take_error());
        assert!(!f.take_error());
        assert_eq!(f.errored(), 1);
    }

    #[test]
    fn delay_and_dup_budgets_are_one_shot() {
        let f = LinkFaults::new();
        assert!(f.take_delay().is_none());
        f.delay_next(2, 7_500);
        assert_eq!(f.take_delay(), Some(SimDuration::from_nanos(7_500)));
        assert_eq!(f.take_delay(), Some(SimDuration::from_nanos(7_500)));
        assert!(f.take_delay().is_none());
        assert_eq!(f.delayed(), 2);

        assert!(!f.take_dup());
        f.duplicate_next(1);
        assert!(f.take_dup());
        assert!(!f.take_dup());
        assert_eq!(f.duplicated(), 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth_factor")]
    fn degrade_validates_factor() {
        LinkFaults::new().degrade(0, 1.5);
    }
}
