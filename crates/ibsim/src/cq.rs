//! Completion queues with solicited-event delivery.
//!
//! Requests are submitted to queue pairs in a non-blocking fashion and their
//! completion is reported through CQs, which may be shared among QPs (paper
//! §3.1 — HPBD shares its CQs across the QPs to all servers). Consumers can
//! poll, or register a completion *event handler* that fires only for
//! solicited completions once the CQ is armed — the mechanism HPBD's client
//! uses to wake its reply-processing thread and the server uses to wake from
//! its 200 µs idle sleep.

use simcore::{Engine, SimDuration};
use simtrace::LazyCounter;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// What operation a completion reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opcode {
    /// A send finished (local buffer reusable).
    Send,
    /// A posted receive consumed an incoming send.
    Recv,
    /// An RDMA write completed (remotely placed, locally acknowledged).
    RdmaWrite,
    /// An RDMA read completed (data landed locally).
    RdmaRead,
}

/// Completion status. Anything but `Success` means the work request failed
/// validation or the channel protocol was violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// Operation completed.
    Success,
    /// RDMA address/rkey validation failed at the responder.
    RemoteAccessError,
    /// Local slice fell outside its region.
    LocalProtectionError,
    /// A send arrived with no posted receive (receiver-not-ready exceeded).
    RnrRetryExceeded,
    /// Incoming message larger than the posted receive buffer.
    LocalLengthError,
    /// Transport retries exhausted — the link failed the work request.
    /// Produced by injected completion errors ([`crate::LinkFaults`]).
    RetryExceeded,
}

/// A completion-queue entry.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Caller-chosen work-request id.
    pub wr_id: u64,
    /// Which operation completed.
    pub opcode: Opcode,
    /// Completion status.
    pub status: WcStatus,
    /// Bytes transferred (payload length for sends/receives).
    pub byte_len: u64,
    /// Number of the QP the work request belonged to.
    pub qp_num: u32,
    /// Whether the completion carries the solicited-event flag (set by the
    /// sender on the message that should wake the consumer).
    pub solicited: bool,
}

type Handler = Box<dyn Fn()>;

struct CqInner {
    queue: VecDeque<Completion>,
    handler: Option<Rc<Handler>>,
    /// Armed = the next qualifying completion triggers the handler.
    armed: bool,
    /// If true, only solicited completions trigger (VAPI solicited
    /// notification type).
    solicited_only: bool,
    /// Completion-event delivery latency (interrupt + dispatch).
    event_latency: SimDuration,
    delivered_events: u64,
}

/// A completion queue, possibly shared among several QPs.
#[derive(Clone)]
pub struct CompletionQueue {
    engine: Engine,
    inner: Rc<RefCell<CqInner>>,
    events_ctr: Rc<LazyCounter>,
}

impl CompletionQueue {
    /// Create a CQ whose event handler fires `event_latency` after a
    /// qualifying completion arrives. Use [`crate::IbNode::create_cq`].
    pub(crate) fn new(engine: Engine, event_latency: SimDuration) -> CompletionQueue {
        CompletionQueue {
            events_ctr: Rc::new(engine.metrics().lazy_counter("ibsim.cq_events")),
            engine,
            inner: Rc::new(RefCell::new(CqInner {
                queue: VecDeque::new(),
                handler: None,
                armed: false,
                solicited_only: true,
                event_latency,
                delivered_events: 0,
            })),
        }
    }

    /// Register the completion event handler (`EVAPI_set_comp_eventh`).
    /// The handler is invoked once per arming, `event_latency` after the
    /// triggering completion; it typically drains the CQ and re-arms.
    pub fn set_event_handler(&self, handler: impl Fn() + 'static) {
        self.inner.borrow_mut().handler = Some(Rc::new(Box::new(handler)));
    }

    /// Arm the CQ for one event notification (`VAPI_req_comp_notif`).
    /// With `solicited_only`, only completions carrying the solicited flag
    /// trigger; otherwise the next completion of any kind does.
    pub fn req_notify(&self, solicited_only: bool) {
        let mut inner = self.inner.borrow_mut();
        inner.armed = true;
        inner.solicited_only = solicited_only;
    }

    /// Remove and return the oldest completion, if any (`VAPI_poll_cq`).
    pub fn poll(&self) -> Option<Completion> {
        self.inner.borrow_mut().queue.pop_front()
    }

    /// Drain every pending completion (the burst processing HPBD's receiver
    /// thread performs per wakeup).
    pub fn drain(&self) -> Vec<Completion> {
        let mut inner = self.inner.borrow_mut();
        inner.queue.drain(..).collect()
    }

    /// Number of completions waiting.
    pub fn depth(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// How many completion events have been delivered to the handler.
    pub fn events_delivered(&self) -> u64 {
        self.inner.borrow().delivered_events
    }

    /// Push a completion into the CQ at the current instant, triggering the
    /// event handler if the CQ is armed and the completion qualifies.
    /// Called by the QP engine at completion instants.
    pub(crate) fn push(&self, completion: Completion) {
        let fire = {
            let mut inner = self.inner.borrow_mut();
            let qualifies = inner.armed
                && (!inner.solicited_only
                    || completion.solicited
                    || completion.status != WcStatus::Success);
            inner.queue.push_back(completion);
            match inner.handler.clone() {
                Some(handler) if qualifies => {
                    inner.armed = false;
                    inner.delivered_events += 1;
                    Some((handler, inner.event_latency))
                }
                _ => None,
            }
        };
        if let Some((handler, latency)) = fire {
            self.events_ctr.inc();
            if self.engine.trace_enabled() {
                self.engine.tracer().instant(
                    "ibsim",
                    "cq_event",
                    self.engine.now().as_nanos(),
                    &[("latency_ns", latency.as_nanos())],
                );
            }
            self.engine.schedule_in(latency, move || handler());
        }
    }
}

impl fmt::Debug for CompletionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("CompletionQueue")
            .field("depth", &inner.queue.len())
            .field("armed", &inner.armed)
            .field("events", &inner.delivered_events)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn cq(engine: &Engine) -> CompletionQueue {
        CompletionQueue::new(engine.clone(), SimDuration::from_micros(4))
    }

    fn completion(solicited: bool) -> Completion {
        Completion {
            wr_id: 7,
            opcode: Opcode::Recv,
            status: WcStatus::Success,
            byte_len: 64,
            qp_num: 1,
            solicited,
        }
    }

    #[test]
    fn poll_returns_fifo() {
        let eng = Engine::new();
        let cq = cq(&eng);
        for id in 0..3 {
            cq.push(Completion {
                wr_id: id,
                ..completion(false)
            });
        }
        assert_eq!(cq.poll().unwrap().wr_id, 0);
        assert_eq!(cq.poll().unwrap().wr_id, 1);
        assert_eq!(cq.drain().len(), 1);
        assert!(cq.poll().is_none());
    }

    #[test]
    fn unarmed_cq_fires_no_event() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let fired = Rc::new(Cell::new(0));
        {
            let fired = fired.clone();
            cq.set_event_handler(move || fired.set(fired.get() + 1));
        }
        cq.push(completion(true));
        eng.run_until_idle();
        assert_eq!(fired.get(), 0);
    }

    #[test]
    fn armed_cq_fires_once_on_solicited() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let fired = Rc::new(Cell::new(0));
        {
            let fired = fired.clone();
            cq.set_event_handler(move || fired.set(fired.get() + 1));
        }
        cq.req_notify(true);
        cq.push(completion(false)); // unsolicited: no trigger
        cq.push(completion(true)); // triggers and disarms
        cq.push(completion(true)); // disarmed: no trigger
        eng.run_until_idle();
        assert_eq!(fired.get(), 1);
        assert_eq!(cq.events_delivered(), 1);
        assert_eq!(cq.depth(), 3, "completions stay queued for draining");
    }

    #[test]
    fn event_arrives_after_interrupt_latency() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let at = Rc::new(Cell::new(0u64));
        {
            let at = at.clone();
            let eng2 = eng.clone();
            cq.set_event_handler(move || at.set(eng2.now().as_nanos()));
        }
        cq.req_notify(true);
        cq.push(completion(true));
        eng.run_until_idle();
        assert_eq!(at.get(), 4_000);
    }

    #[test]
    fn any_mode_fires_on_unsolicited() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let fired = Rc::new(Cell::new(0));
        {
            let fired = fired.clone();
            cq.set_event_handler(move || fired.set(fired.get() + 1));
        }
        cq.req_notify(false);
        cq.push(completion(false));
        eng.run_until_idle();
        assert_eq!(fired.get(), 1);
    }

    #[test]
    fn error_completions_always_trigger_when_armed() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let fired = Rc::new(Cell::new(0));
        {
            let fired = fired.clone();
            cq.set_event_handler(move || fired.set(fired.get() + 1));
        }
        cq.req_notify(true); // solicited-only
        cq.push(Completion {
            status: WcStatus::RemoteAccessError,
            ..completion(false)
        });
        eng.run_until_idle();
        assert_eq!(fired.get(), 1, "errors must not be silently swallowed");
    }

    #[test]
    fn rearm_allows_second_event() {
        let eng = Engine::new();
        let cq = cq(&eng);
        let fired = Rc::new(Cell::new(0));
        {
            let fired = fired.clone();
            let cq2 = cq.clone();
            cq.set_event_handler(move || {
                fired.set(fired.get() + 1);
                cq2.drain();
                cq2.req_notify(true);
            });
        }
        cq.req_notify(true);
        cq.push(completion(true));
        eng.run_until_idle();
        cq.push(completion(true));
        eng.run_until_idle();
        assert_eq!(fired.get(), 2);
    }
}
