#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # ibsim — a simulated InfiniBand verbs layer
//!
//! A from-scratch discrete-event model of the communication architecture
//! HPBD is built on (paper §3.1): Mellanox MT23108-class HCAs attached to a
//! single-switch 4x fabric, exposing a VAPI-like verbs interface:
//!
//! * [`MemoryRegion`] — registered, DMA-able buffers with local/remote keys.
//!   Registration is explicit, mirroring the real pin-and-translate cost
//!   that motivates HPBD's pre-registered buffer pool.
//! * [`QueuePair`] — reliable-connection (RC) queue pairs: `post_send` /
//!   `post_recv` with channel semantics, and one-sided `RDMA READ` /
//!   `RDMA WRITE` memory semantics. Bounds and rkey validation produce
//!   error completions just like a real HCA.
//! * [`CompletionQueue`] — shared CQs with polling *and* the solicited-event
//!   handler mechanism (`EVAPI_set_comp_eventh` analogue) that HPBD's
//!   client receiver thread and server idle-wakeup rely on.
//! * [`Hca`] — per-node adapter state: WQE processing costs and a QP-context
//!   cache whose thrashing beyond ~8 active QPs reproduces the Figure 10
//!   multi-server degradation.
//! * [`Fabric`] — the switch: creates nodes, connects QPs (standing in for
//!   the paper's socket-based QP information exchange), and owns the
//!   calibrated timing model.
//!
//! Timing model per operation (see `netmodel`): posting charges the node
//! CPU; WQE processing charges the HCA; serialisation charges the tx port of
//! the sender and the rx port of the receiver (cut-through); propagation
//! adds the calibrated one-way base latency. RDMA READ pays two propagation
//! delays (request + data). Data actually moves between the byte buffers of
//! the registered regions at the simulated completion instants, so protocol
//! stacks built on top can be tested for end-to-end integrity, not just
//! timing.

pub mod cq;
pub mod fabric;
pub mod fault;
pub mod hca;
pub mod mr;
pub mod qp;
pub mod types;

pub use cq::{Completion, CompletionQueue, Opcode, WcStatus};
pub use fabric::{Fabric, IbNode};
pub use fault::LinkFaults;
pub use hca::Hca;
pub use mr::{MemoryRegion, MrSlice, RemoteSlice};
pub use qp::{PostError, QueuePair, WorkKind, WorkRequest};
pub use types::{Cq, Mr, Pd, Qp, WrChain};
