//! The HPBD wire protocol.
//!
//! Two message types travel over the send/recv channel (paper §4.2.1):
//! *control messages* — page requests from client to server — and
//! *acknowledgements* from server to client. Page data itself never rides
//! in a message; it moves by server-initiated RDMA between the client's
//! registered pool and the server's staging buffers.
//!
//! Every message carries a signature (magic + additive checksum over the
//! header fields), validated on receipt: "message signature is used to
//! validate requests and responses" (paper §4.1).

use bytes::{BufMut, Bytes, BytesMut};

/// Magic tag on every HPBD message.
pub const HPBD_MAGIC: u32 = 0x4850_4244; // "HPBD"

/// Magic tag on server-initiated notices (dynamic-memory protocol).
pub const NOTICE_MAGIC: u32 = 0x4850_4E54; // "HPNT"

/// Magic tag on merged (multi-extent) page requests.
pub const MERGED_MAGIC: u32 = 0x4850_424D; // "HPBM"

/// Encoded size of a [`PageRequest`].
pub const REQUEST_WIRE_SIZE: usize = 52;
/// Encoded size of a [`PageReply`].
pub const REPLY_WIRE_SIZE: usize = 36;
/// Encoded size of a [`RevokeNotice`] (including its checksum).
pub const NOTICE_WIRE_SIZE: usize = 24;

/// Most extents one [`MergedRequest`] may carry. Bounds the control-message
/// size (and the server's per-message work) the way a real adapter's
/// max_send_sge / inline-data limit would.
pub const MAX_MERGE_SEGMENTS: usize = 32;

/// Encoded size of a [`MergedRequest`] carrying `n` segments, checksum
/// included: a 32-byte header plus 24 bytes (server offset + length +
/// version) per segment and the trailing 4-byte checksum.
pub const fn merged_wire_size(n: usize) -> usize {
    36 + 24 * n
}

/// Largest control message either direction can produce: a full
/// [`MAX_MERGE_SEGMENTS`]-segment merged request. Receive buffers sized to
/// this accept every client-side control message.
pub const MERGED_MAX_WIRE_SIZE: usize = merged_wire_size(MAX_MERGE_SEGMENTS);

/// Operation requested of the memory server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageOp {
    /// Swap-out: server pulls page data from the client with RDMA READ and
    /// stores it.
    Write,
    /// Swap-in: server pushes stored data into the client with RDMA WRITE.
    Read,
}

impl PageOp {
    fn code(self) -> u32 {
        match self {
            PageOp::Write => 1,
            PageOp::Read => 2,
        }
    }

    fn from_code(c: u32) -> Result<PageOp, ProtoError> {
        match c {
            1 => Ok(PageOp::Write),
            2 => Ok(PageOp::Read),
            _ => Err(ProtoError::BadField("op")),
        }
    }
}

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Message shorter than its fixed layout.
    Truncated,
    /// Magic mismatch.
    BadMagic,
    /// Checksum mismatch (corruption).
    BadChecksum,
    /// Field out of range.
    BadField(&'static str),
}

/// A page request: client → server control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRequest {
    req_id: u64,
    op: PageOp,
    server_offset: u64,
    len: u64,
    client_rkey: u32,
    client_offset: u64,
    version: u64,
}

impl PageRequest {
    /// Build a request. Fields are sealed so every instance that reaches
    /// the wire went through this constructor or a checksum-validated
    /// decode.
    pub fn new(
        req_id: u64,
        op: PageOp,
        server_offset: u64,
        len: u64,
        client_rkey: u32,
        client_offset: u64,
        version: u64,
    ) -> PageRequest {
        PageRequest {
            req_id,
            op,
            server_offset,
            len,
            client_rkey,
            client_offset,
            version,
        }
    }

    /// Client-chosen request id, echoed in the reply.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Operation.
    pub fn op(&self) -> PageOp {
        self.op
    }

    /// Byte offset inside the server's swap area.
    pub fn server_offset(&self) -> u64 {
        self.server_offset
    }

    /// Transfer length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the request transfers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// rkey of the client's registered pool region.
    pub fn client_rkey(&self) -> u32 {
        self.client_rkey
    }

    /// Offset of the staged data inside the client pool region.
    pub fn client_offset(&self) -> u64 {
        self.client_offset
    }

    /// Write-fencing version. Monotonically increasing per client write;
    /// retries, failover reissues, and mirror replicas of the same logical
    /// write all carry the same stamp, so a server can drop any copy that
    /// would undo a newer write to the same block. Reads carry 0.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Completion status carried by a reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyStatus {
    /// Request served.
    Ok,
    /// Request referenced storage outside the server's swap area.
    OutOfRange,
    /// RDMA transfer failed.
    TransferError,
    /// Write fenced off: every page it covers already holds data from an
    /// equal-or-newer version, so the server dropped it without applying.
    /// The client treats this as success — the superseding write is the
    /// state the block device must converge to.
    StaleWrite,
}

impl ReplyStatus {
    fn code(self) -> u32 {
        match self {
            ReplyStatus::Ok => 0,
            ReplyStatus::OutOfRange => 1,
            ReplyStatus::TransferError => 2,
            ReplyStatus::StaleWrite => 3,
        }
    }

    fn from_code(c: u32) -> Result<ReplyStatus, ProtoError> {
        match c {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::OutOfRange),
            2 => Ok(ReplyStatus::TransferError),
            3 => Ok(ReplyStatus::StaleWrite),
            _ => Err(ProtoError::BadField("status")),
        }
    }
}

/// Acknowledgement: server → client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageReply {
    req_id: u64,
    status: ReplyStatus,
    version: u64,
    generation: u64,
}

impl PageReply {
    /// Build a reply.
    pub fn new(req_id: u64, status: ReplyStatus, version: u64, generation: u64) -> PageReply {
        PageReply {
            req_id,
            status,
            version,
            generation,
        }
    }

    /// Echoed request id.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Outcome.
    pub fn status(&self) -> ReplyStatus {
        self.status
    }

    /// Echoed write-fencing version (0 for reads), so the client can
    /// cross-check that the completion belongs to the stamp it issued.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The server's storage generation (DESIGN.md §13): starts at 1 and is
    /// bumped on every restart, which wipes the in-memory store. A client
    /// that learned generation G at connect time and sees G' != G in a
    /// reply is talking to an amnesiac — the server restarted inside the
    /// client's timeout window and every page it held is gone, so the
    /// reply data must not be trusted even though the QP-level connection
    /// looks healthy.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Server-initiated notice: the server is reclaiming part of its exported
/// memory (the paper's future work: "utilize cluster wise idle memory in a
/// dynamic and cooperative manner"). The client must migrate every page
/// stored in `[offset, offset + len)` elsewhere and stop using the range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokeNotice {
    offset: u64,
    len: u64,
}

impl RevokeNotice {
    /// Build a notice for the reclaimed range `[offset, offset + len)`.
    pub fn new(offset: u64, len: u64) -> RevokeNotice {
        RevokeNotice { offset, len }
    }

    /// Start of the reclaimed range, server-relative.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Length of the reclaimed range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the reclaimed range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serialise: 24 bytes, smaller than a [`PageReply`]'s wire size, so
    /// notices fit the client's pre-posted reply buffers.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(NOTICE_WIRE_SIZE);
        b.put_u32_le(NOTICE_MAGIC);
        b.put_u64_le(self.offset);
        b.put_u64_le(self.len);
        let sum = checksum(&[
            self.offset as u32,
            (self.offset >> 32) as u32,
            self.len as u32,
            (self.len >> 32) as u32,
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse a full 24-byte notice (magic, range, checksum). The reply
    /// channel dispatches here from [`ServerMessage::decode_slice`]; kept
    /// public and symmetric with [`PageReply::decode_slice`] so the notice
    /// wire form can be roundtrip-tested on its own.
    pub fn decode_slice(b: &[u8]) -> Result<RevokeNotice, ProtoError> {
        if b.len() < NOTICE_WIRE_SIZE {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != NOTICE_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let offset = read_u64(b, 4)?;
        let len = read_u64(b, 12)?;
        let sum = read_u32(b, 20)?;
        let expect = checksum(&[
            offset as u32,
            (offset >> 32) as u32,
            len as u32,
            (len >> 32) as u32,
        ]);
        if sum != expect {
            return Err(ProtoError::BadChecksum);
        }
        Ok(RevokeNotice { offset, len })
    }
}

/// Anything a server can send on the reply channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMessage {
    /// Acknowledgement of a page request.
    Reply(PageReply),
    /// Dynamic-memory revocation.
    Revoke(RevokeNotice),
}

impl ServerMessage {
    /// Parse either message kind by its magic.
    pub fn decode(b: Bytes) -> Result<ServerMessage, ProtoError> {
        ServerMessage::decode_slice(&b)
    }

    /// Parse from a borrowed buffer — the hot receive path reuses one
    /// scratch buffer per connection instead of allocating a `Bytes` per
    /// message.
    pub fn decode_slice(b: &[u8]) -> Result<ServerMessage, ProtoError> {
        if b.len() < 4 {
            return Err(ProtoError::Truncated);
        }
        match read_u32(b, 0)? {
            HPBD_MAGIC => Ok(ServerMessage::Reply(PageReply::decode_slice(b)?)),
            NOTICE_MAGIC => Ok(ServerMessage::Revoke(RevokeNotice::decode_slice(b)?)),
            _ => Err(ProtoError::BadMagic),
        }
    }
}

#[inline]
fn read_u32(b: &[u8], at: usize) -> Result<u32, ProtoError> {
    let Some(s) = b.get(at..at + 4) else {
        return Err(ProtoError::Truncated);
    };
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    Ok(u32::from_le_bytes(a))
}

#[inline]
fn read_u64(b: &[u8], at: usize) -> Result<u64, ProtoError> {
    let Some(s) = b.get(at..at + 8) else {
        return Err(ProtoError::Truncated);
    };
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

fn checksum(words: &[u32]) -> u32 {
    words
        .iter()
        .fold(0u32, |acc, &w| acc.wrapping_mul(31).wrapping_add(w))
}

/// Extend a running [`checksum`] by one word — variable-length messages
/// fold their tail segments without collecting a word vector.
#[inline]
fn checksum_push(acc: u32, w: u32) -> u32 {
    acc.wrapping_mul(31).wrapping_add(w)
}

impl PageRequest {
    /// Serialise with magic and checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REQUEST_WIRE_SIZE + 4);
        b.put_u32_le(HPBD_MAGIC);
        b.put_u64_le(self.req_id);
        b.put_u32_le(self.op.code());
        b.put_u64_le(self.server_offset);
        b.put_u64_le(self.len);
        b.put_u32_le(self.client_rkey);
        b.put_u64_le(self.client_offset);
        b.put_u64_le(self.version);
        let sum = checksum(&[
            self.req_id as u32,
            (self.req_id >> 32) as u32,
            self.op.code(),
            self.server_offset as u32,
            (self.server_offset >> 32) as u32,
            self.len as u32,
            (self.len >> 32) as u32,
            self.client_rkey,
            self.client_offset as u32,
            (self.client_offset >> 32) as u32,
            self.version as u32,
            (self.version >> 32) as u32,
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse and validate.
    pub fn decode(b: Bytes) -> Result<PageRequest, ProtoError> {
        PageRequest::decode_slice(&b)
    }

    /// Parse and validate from a borrowed buffer (no `Bytes` needed).
    pub fn decode_slice(b: &[u8]) -> Result<PageRequest, ProtoError> {
        if b.len() < REQUEST_WIRE_SIZE + 4 {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != HPBD_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let req_id = read_u64(b, 4)?;
        let op_code = read_u32(b, 12)?;
        let server_offset = read_u64(b, 16)?;
        let len = read_u64(b, 24)?;
        let client_rkey = read_u32(b, 32)?;
        let client_offset = read_u64(b, 36)?;
        let version = read_u64(b, 44)?;
        let sum = read_u32(b, 52)?;
        let expect = checksum(&[
            req_id as u32,
            (req_id >> 32) as u32,
            op_code,
            server_offset as u32,
            (server_offset >> 32) as u32,
            len as u32,
            (len >> 32) as u32,
            client_rkey,
            client_offset as u32,
            (client_offset >> 32) as u32,
            version as u32,
            (version >> 32) as u32,
        ]);
        if sum != expect {
            return Err(ProtoError::BadChecksum);
        }
        Ok(PageRequest {
            req_id,
            op: PageOp::from_code(op_code)?,
            server_offset,
            len,
            client_rkey,
            client_offset,
            version,
        })
    }
}

/// One extent inside a [`MergedRequest`]: where it lives in the server's
/// swap area, its transfer length, and the write-fencing version of the
/// logical write it belongs to (0 for reads). In the *client pool* the
/// extents are laid out back to back — segment `k` starts at the sum of
/// the lengths before it — while the server offsets may leave gaps: the
/// block layer has already swallowed exact adjacency, so what merging
/// coalesces is same-server bursts of scattered extents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedSeg {
    server_offset: u64,
    len: u64,
    version: u64,
}

impl MergedSeg {
    /// Build a segment descriptor.
    pub fn new(server_offset: u64, len: u64, version: u64) -> MergedSeg {
        MergedSeg {
            server_offset,
            len,
            version,
        }
    }

    /// Byte offset of the extent inside the server's swap area.
    pub fn server_offset(&self) -> u64 {
        self.server_offset
    }

    /// Transfer length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the segment transfers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write-fencing version (0 for reads).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// A merged page request: one control message carrying several extents of
/// the same operation, RDMA-transferred as a single contiguous span of
/// client pool bytes. The client coalesces same-window requests per server
/// into these (RDMAbox-style request merging); the server serves the whole
/// batch with ONE staging allocation, ONE RDMA operation, and ONE reply,
/// scatter/gathering each segment at its own store offset and fencing each
/// segment's version independently.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedRequest {
    req_id: u64,
    op: PageOp,
    client_rkey: u32,
    client_offset: u64,
    segs: Vec<MergedSeg>,
}

impl MergedRequest {
    /// Build a merged request. Panics when the segment count is outside
    /// `1..=MAX_MERGE_SEGMENTS` — the merge planner owns that bound.
    pub fn new(
        req_id: u64,
        op: PageOp,
        client_rkey: u32,
        client_offset: u64,
        segs: Vec<MergedSeg>,
    ) -> MergedRequest {
        assert!(
            (1..=MAX_MERGE_SEGMENTS).contains(&segs.len()),
            "merged request with {} segments",
            segs.len()
        );
        MergedRequest {
            req_id,
            op,
            client_rkey,
            client_offset,
            segs,
        }
    }

    /// Client-chosen request id, echoed in the reply.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Operation, shared by every segment.
    pub fn op(&self) -> PageOp {
        self.op
    }

    /// Byte offset of the first segment inside the server's swap area.
    pub fn server_offset(&self) -> u64 {
        self.segs[0].server_offset
    }

    /// rkey of the client's registered pool region.
    pub fn client_rkey(&self) -> u32 {
        self.client_rkey
    }

    /// Offset of the first segment's staging inside the client pool.
    pub fn client_offset(&self) -> u64 {
        self.client_offset
    }

    /// The merged extents, in server-offset order.
    pub fn segs(&self) -> &[MergedSeg] {
        &self.segs
    }

    /// Total bytes moved by the single RDMA span.
    pub fn total_len(&self) -> u64 {
        self.segs.iter().map(|s| s.len).sum()
    }

    /// Highest fencing version across segments — what the reply echoes.
    pub fn max_version(&self) -> u64 {
        self.segs.iter().map(|s| s.version).max().unwrap_or(0)
    }

    /// Serialise with magic and checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(merged_wire_size(self.segs.len()));
        b.put_u32_le(MERGED_MAGIC);
        b.put_u64_le(self.req_id);
        b.put_u32_le(self.op.code());
        b.put_u32_le(self.client_rkey);
        b.put_u64_le(self.client_offset);
        b.put_u32_le(self.segs.len() as u32);
        let mut sum = checksum(&[
            self.req_id as u32,
            (self.req_id >> 32) as u32,
            self.op.code(),
            self.client_rkey,
            self.client_offset as u32,
            (self.client_offset >> 32) as u32,
            self.segs.len() as u32,
        ]);
        for s in &self.segs {
            b.put_u64_le(s.server_offset);
            b.put_u64_le(s.len);
            b.put_u64_le(s.version);
            sum = checksum_push(sum, s.server_offset as u32);
            sum = checksum_push(sum, (s.server_offset >> 32) as u32);
            sum = checksum_push(sum, s.len as u32);
            sum = checksum_push(sum, (s.len >> 32) as u32);
            sum = checksum_push(sum, s.version as u32);
            sum = checksum_push(sum, (s.version >> 32) as u32);
        }
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse and validate.
    pub fn decode(b: Bytes) -> Result<MergedRequest, ProtoError> {
        MergedRequest::decode_slice(&b)
    }

    /// Parse and validate from a borrowed buffer.
    pub fn decode_slice(b: &[u8]) -> Result<MergedRequest, ProtoError> {
        if b.len() < merged_wire_size(1) {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != MERGED_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let req_id = read_u64(b, 4)?;
        let op_code = read_u32(b, 12)?;
        let client_rkey = read_u32(b, 16)?;
        let client_offset = read_u64(b, 20)?;
        let count = read_u32(b, 28)? as usize;
        if !(1..=MAX_MERGE_SEGMENTS).contains(&count) {
            return Err(ProtoError::BadField("seg_count"));
        }
        if b.len() < merged_wire_size(count) {
            return Err(ProtoError::Truncated);
        }
        let mut sum = checksum(&[
            req_id as u32,
            (req_id >> 32) as u32,
            op_code,
            client_rkey,
            client_offset as u32,
            (client_offset >> 32) as u32,
            count as u32,
        ]);
        let mut segs = Vec::with_capacity(count);
        for k in 0..count {
            let server_offset = read_u64(b, 32 + 24 * k)?;
            let len = read_u64(b, 40 + 24 * k)?;
            let version = read_u64(b, 48 + 24 * k)?;
            sum = checksum_push(sum, server_offset as u32);
            sum = checksum_push(sum, (server_offset >> 32) as u32);
            sum = checksum_push(sum, len as u32);
            sum = checksum_push(sum, (len >> 32) as u32);
            sum = checksum_push(sum, version as u32);
            sum = checksum_push(sum, (version >> 32) as u32);
            segs.push(MergedSeg {
                server_offset,
                len,
                version,
            });
        }
        if read_u32(b, 32 + 24 * count)? != sum {
            return Err(ProtoError::BadChecksum);
        }
        Ok(MergedRequest {
            req_id,
            op: PageOp::from_code(op_code)?,
            client_rkey,
            client_offset,
            segs,
        })
    }
}

/// Anything a client can send on the request channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientMessage {
    /// A single-extent page request.
    Request(PageRequest),
    /// A merged multi-extent request.
    Merged(MergedRequest),
}

impl ClientMessage {
    /// Parse either request kind by its magic.
    pub fn decode_slice(b: &[u8]) -> Result<ClientMessage, ProtoError> {
        if b.len() < 4 {
            return Err(ProtoError::Truncated);
        }
        match read_u32(b, 0)? {
            HPBD_MAGIC => Ok(ClientMessage::Request(PageRequest::decode_slice(b)?)),
            MERGED_MAGIC => Ok(ClientMessage::Merged(MergedRequest::decode_slice(b)?)),
            _ => Err(ProtoError::BadMagic),
        }
    }
}

impl PageReply {
    /// Serialise with magic and checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REPLY_WIRE_SIZE);
        b.put_u32_le(HPBD_MAGIC);
        b.put_u64_le(self.req_id);
        b.put_u32_le(self.status.code());
        b.put_u64_le(self.version);
        b.put_u64_le(self.generation);
        let sum = checksum(&[
            self.req_id as u32,
            (self.req_id >> 32) as u32,
            self.status.code(),
            self.version as u32,
            (self.version >> 32) as u32,
            self.generation as u32,
            (self.generation >> 32) as u32,
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse and validate.
    pub fn decode(b: Bytes) -> Result<PageReply, ProtoError> {
        PageReply::decode_slice(&b)
    }

    /// Parse and validate from a borrowed buffer (no `Bytes` needed).
    pub fn decode_slice(b: &[u8]) -> Result<PageReply, ProtoError> {
        if b.len() < REPLY_WIRE_SIZE {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != HPBD_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let req_id = read_u64(b, 4)?;
        let status_code = read_u32(b, 12)?;
        let version = read_u64(b, 16)?;
        let generation = read_u64(b, 24)?;
        let sum = read_u32(b, 32)?;
        let expect = checksum(&[
            req_id as u32,
            (req_id >> 32) as u32,
            status_code,
            version as u32,
            (version >> 32) as u32,
            generation as u32,
            (generation >> 32) as u32,
        ]);
        if sum != expect {
            return Err(ProtoError::BadChecksum);
        }
        Ok(PageReply {
            req_id,
            status: ReplyStatus::from_code(status_code)?,
            version,
            generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> PageRequest {
        PageRequest {
            req_id: 0x0123_4567_89AB_CDEF,
            op: PageOp::Write,
            server_offset: 7 << 20,
            len: 128 * 1024,
            client_rkey: 42,
            client_offset: 4096,
            version: 0x0102_0304_0506_0708,
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = request();
        assert_eq!(PageRequest::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn reply_roundtrip() {
        for status in [
            ReplyStatus::Ok,
            ReplyStatus::OutOfRange,
            ReplyStatus::TransferError,
            ReplyStatus::StaleWrite,
        ] {
            let r = PageReply {
                req_id: 99,
                status,
                version: 17,
                generation: 3,
            };
            assert_eq!(PageReply::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut raw = request().encode().to_vec();
        // Flip a byte in the middle of the header (not the magic).
        raw[10] ^= 0xFF;
        assert_eq!(
            PageRequest::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = request().encode().to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(
            PageRequest::decode(Bytes::from(raw)),
            Err(ProtoError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let raw = request().encode().slice(0..10);
        assert_eq!(PageRequest::decode(raw), Err(ProtoError::Truncated));
    }

    #[test]
    fn reply_checksum_catches_status_tamper() {
        let mut raw = PageReply {
            req_id: 1,
            status: ReplyStatus::Ok,
            version: 5,
            generation: 1,
        }
        .encode()
        .to_vec();
        raw[12] = 1; // status byte: Ok -> OutOfRange
        assert_eq!(
            PageReply::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }

    #[test]
    fn reply_checksum_catches_version_tamper() {
        let mut raw = PageReply {
            req_id: 1,
            status: ReplyStatus::Ok,
            version: 5,
            generation: 1,
        }
        .encode()
        .to_vec();
        raw[16] = 9; // version low byte: 5 -> 9
        assert_eq!(
            PageReply::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }

    #[test]
    fn reply_checksum_catches_generation_tamper() {
        let mut raw = PageReply {
            req_id: 1,
            status: ReplyStatus::Ok,
            version: 5,
            generation: 2,
        }
        .encode()
        .to_vec();
        raw[24] = 7; // generation low byte: 2 -> 7
        assert_eq!(
            PageReply::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }

    // ---- deterministic property loops over the versioned wire format ----

    use simcore::SimRng;

    fn for_cases(cases: u64, mut f: impl FnMut(&mut SimRng)) {
        for case in 0..cases {
            let mut rng = SimRng::new(0xC0FF_EE00_5EED ^ (case * 0x100_0000_01B3));
            f(&mut rng);
        }
    }

    fn random_request(rng: &mut SimRng) -> PageRequest {
        PageRequest {
            req_id: rng.next_u64(),
            op: if rng.below(2) == 0 {
                PageOp::Write
            } else {
                PageOp::Read
            },
            server_offset: rng.next_u64(),
            len: rng.next_u64(),
            client_rkey: rng.next_u32(),
            client_offset: rng.next_u64(),
            version: rng.next_u64(),
        }
    }

    fn random_reply(rng: &mut SimRng) -> PageReply {
        let status = match rng.below(4) {
            0 => ReplyStatus::Ok,
            1 => ReplyStatus::OutOfRange,
            2 => ReplyStatus::TransferError,
            _ => ReplyStatus::StaleWrite,
        };
        PageReply {
            req_id: rng.next_u64(),
            status,
            version: rng.next_u64(),
            generation: rng.next_u64(),
        }
    }

    #[test]
    fn prop_request_roundtrip_preserves_version() {
        for_cases(512, |rng| {
            let r = random_request(rng);
            let back = PageRequest::decode(r.encode()).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.version(), r.version);
        });
    }

    #[test]
    fn prop_reply_roundtrip_preserves_version() {
        for_cases(512, |rng| {
            let r = random_reply(rng);
            let back = PageReply::decode(r.encode()).unwrap();
            assert_eq!(back, r);
            assert_eq!(back.version(), r.version);
            assert_eq!(back.generation(), r.generation);
        });
    }

    #[test]
    fn prop_revoke_notice_roundtrip() {
        for_cases(256, |rng| {
            let notice = RevokeNotice::new(rng.next_u64(), rng.next_u64());
            let back = RevokeNotice::decode_slice(&notice.encode()).unwrap();
            assert_eq!(back, notice);
            // The reply channel dispatches notices by magic: the enum
            // decode must agree with the standalone decode.
            assert_eq!(
                ServerMessage::decode_slice(&notice.encode()).unwrap(),
                ServerMessage::Revoke(notice)
            );
        });
    }

    #[test]
    fn prop_truncated_inputs_error_and_never_panic() {
        for_cases(256, |rng| {
            let req = random_request(rng).encode();
            let rep = random_reply(rng).encode();
            let notice = RevokeNotice::new(rng.next_u64(), rng.next_u64()).encode();
            for cut in 0..req.len() {
                assert_eq!(
                    PageRequest::decode_slice(&req[..cut]),
                    Err(ProtoError::Truncated)
                );
            }
            for cut in 0..rep.len() {
                assert_eq!(
                    PageReply::decode_slice(&rep[..cut]),
                    Err(ProtoError::Truncated)
                );
            }
            for cut in 0..notice.len() {
                // Truncated notices must error; a cut below the 4-byte magic
                // cannot even be classified, which is still `Truncated`.
                assert_eq!(
                    ServerMessage::decode_slice(&notice[..cut]),
                    Err(ProtoError::Truncated)
                );
            }
        });
    }

    #[test]
    fn prop_single_byte_corruption_is_rejected_not_applied() {
        for_cases(128, |rng| {
            let r = random_request(rng);
            let mut raw = r.encode().to_vec();
            let at = rng.below(raw.len() as u64) as usize;
            let bit = 1u8 << rng.below(8);
            raw[at] ^= bit;
            // A flipped bit may hit the magic, a field, or the checksum;
            // in every case decode must fail rather than yield `r`.
            match PageRequest::decode_slice(&raw) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(decoded, r, "corruption accepted"),
            }
        });
    }

    #[test]
    fn prop_random_garbage_never_panics() {
        for_cases(256, |rng| {
            let len = rng.below(2 * (REQUEST_WIRE_SIZE as u64 + 4)) as usize;
            let raw: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = PageRequest::decode_slice(&raw);
            let _ = PageReply::decode_slice(&raw);
            let _ = ServerMessage::decode_slice(&raw);
        });
    }

    // ---- merged multi-extent requests ----

    fn random_merged(rng: &mut SimRng) -> MergedRequest {
        let count = 1 + rng.below(MAX_MERGE_SEGMENTS as u64) as usize;
        let op = if rng.below(2) == 0 {
            PageOp::Write
        } else {
            PageOp::Read
        };
        let segs = (0..count)
            .map(|_| {
                MergedSeg::new(
                    4096 * rng.below(1 << 20),
                    4096 * (1 + rng.below(32)),
                    if op == PageOp::Write {
                        rng.next_u64()
                    } else {
                        0
                    },
                )
            })
            .collect();
        MergedRequest::new(rng.next_u64(), op, rng.next_u32(), rng.next_u64(), segs)
    }

    #[test]
    fn merged_roundtrip_all_counts() {
        for count in 1..=MAX_MERGE_SEGMENTS {
            let segs: Vec<MergedSeg> = (0..count)
                .map(|k| MergedSeg::new(1 << 20, 4096 * (k as u64 + 1), k as u64 * 7))
                .collect();
            let m = MergedRequest::new(5, PageOp::Write, 42, 8192, segs);
            let raw = m.encode();
            assert_eq!(raw.len(), merged_wire_size(count));
            assert_eq!(MergedRequest::decode(raw).unwrap(), m);
        }
    }

    #[test]
    fn merged_totals_and_max_version() {
        let m = MergedRequest::new(
            1,
            PageOp::Write,
            1,
            0,
            vec![
                MergedSeg::new(0, 4096, 3),
                MergedSeg::new(8192, 8192, 9),
                MergedSeg::new(65536, 4096, 5),
            ],
        );
        assert_eq!(m.total_len(), 16384);
        assert_eq!(m.max_version(), 9);
        assert_eq!(m.server_offset(), 0);
    }

    #[test]
    #[should_panic(expected = "merged request with 0 segments")]
    fn merged_zero_segments_panics_at_build() {
        MergedRequest::new(1, PageOp::Read, 1, 0, vec![]);
    }

    #[test]
    fn merged_bad_seg_count_on_wire_rejected() {
        let m = MergedRequest::new(1, PageOp::Read, 1, 0, vec![MergedSeg::new(0, 4096, 0)]);
        let mut raw = m.encode().to_vec();
        // Forge seg_count = 0 and = MAX+1; both must be rejected before any
        // segment is trusted (the checksum would also fail, but the field
        // check fires first and bounds the read loop).
        raw[28..32].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            MergedRequest::decode_slice(&raw),
            Err(ProtoError::BadField("seg_count"))
        );
        raw[28..32].copy_from_slice(&((MAX_MERGE_SEGMENTS as u32 + 1).to_le_bytes()));
        assert_eq!(
            MergedRequest::decode_slice(&raw),
            Err(ProtoError::BadField("seg_count"))
        );
    }

    #[test]
    fn client_message_dispatches_by_magic() {
        let single = request().encode();
        let merged = MergedRequest::new(
            9,
            PageOp::Read,
            7,
            0,
            vec![
                MergedSeg::new(4096, 4096, 0),
                MergedSeg::new(16384, 4096, 0),
            ],
        );
        match ClientMessage::decode_slice(&single).unwrap() {
            ClientMessage::Request(r) => assert_eq!(r, request()),
            other => panic!("expected single request, got {other:?}"),
        }
        match ClientMessage::decode_slice(&merged.encode()).unwrap() {
            ClientMessage::Merged(m) => assert_eq!(m, merged),
            other => panic!("expected merged request, got {other:?}"),
        }
    }

    #[test]
    fn prop_merged_roundtrip() {
        for_cases(256, |rng| {
            let m = random_merged(rng);
            let back = MergedRequest::decode(m.encode()).unwrap();
            assert_eq!(back, m);
            assert_eq!(back.total_len(), m.total_len());
            assert_eq!(back.max_version(), m.max_version());
        });
    }

    #[test]
    fn prop_merged_truncation_every_cut_errors() {
        for_cases(64, |rng| {
            let raw = random_merged(rng).encode();
            for cut in 0..raw.len() {
                match MergedRequest::decode_slice(&raw[..cut]) {
                    Err(ProtoError::Truncated) | Err(ProtoError::BadField("seg_count")) => {}
                    other => panic!("cut {cut}: {other:?}"),
                }
            }
        });
    }

    #[test]
    fn prop_merged_single_bit_corruption_rejected() {
        for_cases(128, |rng| {
            let m = random_merged(rng);
            let mut raw = m.encode().to_vec();
            let at = rng.below(raw.len() as u64) as usize;
            raw[at] ^= 1u8 << rng.below(8);
            match MergedRequest::decode_slice(&raw) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(decoded, m, "corruption accepted"),
            }
        });
    }

    #[test]
    fn prop_merged_garbage_never_panics() {
        for_cases(256, |rng| {
            let len = rng.below(2 * MERGED_MAX_WIRE_SIZE as u64) as usize;
            let raw: Vec<u8> = (0..len).map(|_| rng.next_u32() as u8).collect();
            let _ = MergedRequest::decode_slice(&raw);
            let _ = ClientMessage::decode_slice(&raw);
        });
    }
}
