//! The HPBD wire protocol.
//!
//! Two message types travel over the send/recv channel (paper §4.2.1):
//! *control messages* — page requests from client to server — and
//! *acknowledgements* from server to client. Page data itself never rides
//! in a message; it moves by server-initiated RDMA between the client's
//! registered pool and the server's staging buffers.
//!
//! Every message carries a signature (magic + additive checksum over the
//! header fields), validated on receipt: "message signature is used to
//! validate requests and responses" (paper §4.1).

use bytes::{BufMut, Bytes, BytesMut};

/// Magic tag on every HPBD message.
pub const HPBD_MAGIC: u32 = 0x4850_4244; // "HPBD"

/// Magic tag on server-initiated notices (dynamic-memory protocol).
pub const NOTICE_MAGIC: u32 = 0x4850_4E54; // "HPNT"

/// Encoded size of a [`PageRequest`].
pub const REQUEST_WIRE_SIZE: usize = 44;
/// Encoded size of a [`PageReply`].
pub const REPLY_WIRE_SIZE: usize = 20;

/// Operation requested of the memory server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageOp {
    /// Swap-out: server pulls page data from the client with RDMA READ and
    /// stores it.
    Write,
    /// Swap-in: server pushes stored data into the client with RDMA WRITE.
    Read,
}

impl PageOp {
    fn code(self) -> u32 {
        match self {
            PageOp::Write => 1,
            PageOp::Read => 2,
        }
    }

    fn from_code(c: u32) -> Result<PageOp, ProtoError> {
        match c {
            1 => Ok(PageOp::Write),
            2 => Ok(PageOp::Read),
            _ => Err(ProtoError::BadField("op")),
        }
    }
}

/// Decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Message shorter than its fixed layout.
    Truncated,
    /// Magic mismatch.
    BadMagic,
    /// Checksum mismatch (corruption).
    BadChecksum,
    /// Field out of range.
    BadField(&'static str),
}

/// A page request: client → server control message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageRequest {
    req_id: u64,
    op: PageOp,
    server_offset: u64,
    len: u64,
    client_rkey: u32,
    client_offset: u64,
}

impl PageRequest {
    /// Build a request. Fields are sealed so every instance that reaches
    /// the wire went through this constructor or a checksum-validated
    /// decode.
    pub fn new(
        req_id: u64,
        op: PageOp,
        server_offset: u64,
        len: u64,
        client_rkey: u32,
        client_offset: u64,
    ) -> PageRequest {
        PageRequest { req_id, op, server_offset, len, client_rkey, client_offset }
    }

    /// Client-chosen request id, echoed in the reply.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Operation.
    pub fn op(&self) -> PageOp {
        self.op
    }

    /// Byte offset inside the server's swap area.
    pub fn server_offset(&self) -> u64 {
        self.server_offset
    }

    /// Transfer length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// rkey of the client's registered pool region.
    pub fn client_rkey(&self) -> u32 {
        self.client_rkey
    }

    /// Offset of the staged data inside the client pool region.
    pub fn client_offset(&self) -> u64 {
        self.client_offset
    }
}

/// Completion status carried by a reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyStatus {
    /// Request served.
    Ok,
    /// Request referenced storage outside the server's swap area.
    OutOfRange,
    /// RDMA transfer failed.
    TransferError,
}

impl ReplyStatus {
    fn code(self) -> u32 {
        match self {
            ReplyStatus::Ok => 0,
            ReplyStatus::OutOfRange => 1,
            ReplyStatus::TransferError => 2,
        }
    }

    fn from_code(c: u32) -> Result<ReplyStatus, ProtoError> {
        match c {
            0 => Ok(ReplyStatus::Ok),
            1 => Ok(ReplyStatus::OutOfRange),
            2 => Ok(ReplyStatus::TransferError),
            _ => Err(ProtoError::BadField("status")),
        }
    }
}

/// Acknowledgement: server → client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageReply {
    req_id: u64,
    status: ReplyStatus,
}

impl PageReply {
    /// Build a reply.
    pub fn new(req_id: u64, status: ReplyStatus) -> PageReply {
        PageReply { req_id, status }
    }

    /// Echoed request id.
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Outcome.
    pub fn status(&self) -> ReplyStatus {
        self.status
    }
}

/// Server-initiated notice: the server is reclaiming part of its exported
/// memory (the paper's future work: "utilize cluster wise idle memory in a
/// dynamic and cooperative manner"). The client must migrate every page
/// stored in `[offset, offset + len)` elsewhere and stop using the range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevokeNotice {
    offset: u64,
    len: u64,
}

impl RevokeNotice {
    /// Build a notice for the reclaimed range `[offset, offset + len)`.
    pub fn new(offset: u64, len: u64) -> RevokeNotice {
        RevokeNotice { offset, len }
    }

    /// Start of the reclaimed range, server-relative.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Length of the reclaimed range.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Serialise: same 24-byte wire size as a [`PageReply`], so notices
    /// fit the client's pre-posted reply buffers.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REPLY_WIRE_SIZE + 4);
        b.put_u32_le(NOTICE_MAGIC);
        b.put_u64_le(self.offset);
        b.put_u64_le(self.len);
        let sum = checksum(&[
            self.offset as u32,
            (self.offset >> 32) as u32,
            self.len as u32,
            (self.len >> 32) as u32,
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }
}

/// Anything a server can send on the reply channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMessage {
    /// Acknowledgement of a page request.
    Reply(PageReply),
    /// Dynamic-memory revocation.
    Revoke(RevokeNotice),
}

impl ServerMessage {
    /// Parse either message kind by its magic.
    pub fn decode(b: Bytes) -> Result<ServerMessage, ProtoError> {
        ServerMessage::decode_slice(&b)
    }

    /// Parse from a borrowed buffer — the hot receive path reuses one
    /// scratch buffer per connection instead of allocating a `Bytes` per
    /// message.
    pub fn decode_slice(b: &[u8]) -> Result<ServerMessage, ProtoError> {
        if b.len() < 4 {
            return Err(ProtoError::Truncated);
        }
        match read_u32(b, 0)? {
            HPBD_MAGIC => Ok(ServerMessage::Reply(PageReply::decode_slice(b)?)),
            NOTICE_MAGIC => {
                if b.len() < REPLY_WIRE_SIZE + 4 {
                    return Err(ProtoError::Truncated);
                }
                let offset = read_u64(b, 4)?;
                let len = read_u64(b, 12)?;
                let sum = read_u32(b, 20)?;
                let expect = checksum(&[
                    offset as u32,
                    (offset >> 32) as u32,
                    len as u32,
                    (len >> 32) as u32,
                ]);
                if sum != expect {
                    return Err(ProtoError::BadChecksum);
                }
                Ok(ServerMessage::Revoke(RevokeNotice { offset, len }))
            }
            _ => Err(ProtoError::BadMagic),
        }
    }
}

#[inline]
fn read_u32(b: &[u8], at: usize) -> Result<u32, ProtoError> {
    let Some(s) = b.get(at..at + 4) else {
        return Err(ProtoError::Truncated);
    };
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    Ok(u32::from_le_bytes(a))
}

#[inline]
fn read_u64(b: &[u8], at: usize) -> Result<u64, ProtoError> {
    let Some(s) = b.get(at..at + 8) else {
        return Err(ProtoError::Truncated);
    };
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

fn checksum(words: &[u32]) -> u32 {
    words
        .iter()
        .fold(0u32, |acc, &w| acc.wrapping_mul(31).wrapping_add(w))
}

impl PageRequest {
    /// Serialise with magic and checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REQUEST_WIRE_SIZE + 4);
        b.put_u32_le(HPBD_MAGIC);
        b.put_u64_le(self.req_id);
        b.put_u32_le(self.op.code());
        b.put_u64_le(self.server_offset);
        b.put_u64_le(self.len);
        b.put_u32_le(self.client_rkey);
        b.put_u64_le(self.client_offset);
        let sum = checksum(&[
            self.req_id as u32,
            (self.req_id >> 32) as u32,
            self.op.code(),
            self.server_offset as u32,
            (self.server_offset >> 32) as u32,
            self.len as u32,
            (self.len >> 32) as u32,
            self.client_rkey,
            self.client_offset as u32,
            (self.client_offset >> 32) as u32,
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse and validate.
    pub fn decode(b: Bytes) -> Result<PageRequest, ProtoError> {
        PageRequest::decode_slice(&b)
    }

    /// Parse and validate from a borrowed buffer (no `Bytes` needed).
    pub fn decode_slice(b: &[u8]) -> Result<PageRequest, ProtoError> {
        if b.len() < REQUEST_WIRE_SIZE + 4 {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != HPBD_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let req_id = read_u64(b, 4)?;
        let op_code = read_u32(b, 12)?;
        let server_offset = read_u64(b, 16)?;
        let len = read_u64(b, 24)?;
        let client_rkey = read_u32(b, 32)?;
        let client_offset = read_u64(b, 36)?;
        let sum = read_u32(b, 44)?;
        let expect = checksum(&[
            req_id as u32,
            (req_id >> 32) as u32,
            op_code,
            server_offset as u32,
            (server_offset >> 32) as u32,
            len as u32,
            (len >> 32) as u32,
            client_rkey,
            client_offset as u32,
            (client_offset >> 32) as u32,
        ]);
        if sum != expect {
            return Err(ProtoError::BadChecksum);
        }
        Ok(PageRequest {
            req_id,
            op: PageOp::from_code(op_code)?,
            server_offset,
            len,
            client_rkey,
            client_offset,
        })
    }
}

impl PageReply {
    /// Serialise with magic and checksum.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REPLY_WIRE_SIZE + 4);
        b.put_u32_le(HPBD_MAGIC);
        b.put_u64_le(self.req_id);
        b.put_u32_le(self.status.code());
        let sum = checksum(&[
            self.req_id as u32,
            (self.req_id >> 32) as u32,
            self.status.code(),
        ]);
        b.put_u32_le(sum);
        b.freeze()
    }

    /// Parse and validate.
    pub fn decode(b: Bytes) -> Result<PageReply, ProtoError> {
        PageReply::decode_slice(&b)
    }

    /// Parse and validate from a borrowed buffer (no `Bytes` needed).
    pub fn decode_slice(b: &[u8]) -> Result<PageReply, ProtoError> {
        if b.len() < REPLY_WIRE_SIZE {
            return Err(ProtoError::Truncated);
        }
        if read_u32(b, 0)? != HPBD_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let req_id = read_u64(b, 4)?;
        let status_code = read_u32(b, 12)?;
        let sum = read_u32(b, 16)?;
        let expect = checksum(&[req_id as u32, (req_id >> 32) as u32, status_code]);
        if sum != expect {
            return Err(ProtoError::BadChecksum);
        }
        Ok(PageReply {
            req_id,
            status: ReplyStatus::from_code(status_code)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> PageRequest {
        PageRequest {
            req_id: 0x0123_4567_89AB_CDEF,
            op: PageOp::Write,
            server_offset: 7 << 20,
            len: 128 * 1024,
            client_rkey: 42,
            client_offset: 4096,
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = request();
        assert_eq!(PageRequest::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn reply_roundtrip() {
        for status in [
            ReplyStatus::Ok,
            ReplyStatus::OutOfRange,
            ReplyStatus::TransferError,
        ] {
            let r = PageReply { req_id: 99, status };
            assert_eq!(PageReply::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let mut raw = request().encode().to_vec();
        // Flip a byte in the middle of the header (not the magic).
        raw[10] ^= 0xFF;
        assert_eq!(
            PageRequest::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = request().encode().to_vec();
        raw[0] ^= 0xFF;
        assert_eq!(
            PageRequest::decode(Bytes::from(raw)),
            Err(ProtoError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let raw = request().encode().slice(0..10);
        assert_eq!(PageRequest::decode(raw), Err(ProtoError::Truncated));
    }

    #[test]
    fn reply_checksum_catches_status_tamper() {
        let mut raw = PageReply {
            req_id: 1,
            status: ReplyStatus::Ok,
        }
        .encode()
        .to_vec();
        raw[12] = 1; // status byte: Ok -> OutOfRange
        assert_eq!(
            PageReply::decode(Bytes::from(raw)),
            Err(ProtoError::BadChecksum)
        );
    }
}
