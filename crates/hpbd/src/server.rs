//! The HPBD memory server daemon (paper §4.2.1, §5).
//!
//! A user-space program on a remote node exporting part of its memory as a
//! RamDisk-backed page store. The server *initiates all RDMA*: for a
//! swap-out request it RDMA-READs the page data out of the client's
//! registered pool into a local staging buffer, then memcpys it into the
//! store; for swap-in it memcpys store → staging and RDMA-WRITEs into the
//! client's buffer. (The paper chooses server-initiated RDMA because the
//! RamDisk is behind a file interface and because a future dynamic-memory
//! server cannot pre-export addresses.)
//!
//! Staging buffers come from a pre-registered pool, so multiple requests
//! can be in flight with the RDMA of one overlapping the memcpy of another
//! — "by allowing multiple outstanding RDMA operations, RDMA and memcpy
//! overlap is supported, which improves server side CPU utilization".
//!
//! Replies are sent with the solicited-event bit so the client's sleeping
//! receiver thread wakes (paper §5). The server itself sleeps after 200 µs
//! of idling and is woken by the completion event of the next request.

use crate::config::HpbdConfig;
use crate::pool::{PoolBuf, SimBufferPool};
use crate::proto::{
    ClientMessage, MergedRequest, PageOp, PageReply, PageRequest, ProtoError, ReplyStatus,
    RevokeNotice, MERGED_MAX_WIRE_SIZE,
};
use blockdev::Storage;
use ibsim::{
    CompletionQueue, Cq, Fabric, IbNode, Mr, Opcode, Pd, Qp, QueuePair, RemoteSlice, WcStatus,
    WorkKind, WorkRequest,
};
use simcore::{Engine, SimDuration, SimTime};
use simtrace::{intern, LazyCounter, MarkKind};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A validated unit of service: one wire message, one staging span, one
/// RDMA operation, one reply — possibly carrying several independently
/// write-fenced segments (a merged request).
struct Job {
    req_id: u64,
    op: PageOp,
    server_offset: u64,
    client_rkey: u32,
    client_offset: u64,
    /// Total transfer length (sum of segment lengths); the size of the
    /// staging span and of the single RDMA operation.
    len: u64,
    /// Per-segment `(server_offset, len, version)` in staging order;
    /// `None` for a plain single request, which is treated as one segment
    /// covering the whole span (and allocates nothing). Merged segments
    /// may leave gaps between their store extents — staging positions run
    /// back to back regardless.
    segs: Option<Vec<(u64, u64, u64)>>,
    /// Version echoed in the reply: the segment's own stamp for a plain
    /// request, the maximum across segments for a merged one.
    version: u64,
}

impl Job {
    fn from_request(r: &PageRequest) -> Job {
        Job {
            req_id: r.req_id(),
            op: r.op(),
            server_offset: r.server_offset(),
            client_rkey: r.client_rkey(),
            client_offset: r.client_offset(),
            len: r.len(),
            segs: None,
            version: r.version(),
        }
    }

    fn from_merged(m: &MergedRequest) -> Job {
        Job {
            req_id: m.req_id(),
            op: m.op(),
            server_offset: m.server_offset(),
            client_rkey: m.client_rkey(),
            client_offset: m.client_offset(),
            len: m.total_len(),
            segs: Some(
                m.segs()
                    .iter()
                    .map(|s| (s.server_offset(), s.len(), s.version()))
                    .collect(),
            ),
            version: m.max_version(),
        }
    }

    /// Iterate the fencing spans as `(server_offset, len, version)` in
    /// staging order. Allocation-free either way.
    fn spans(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        let single = self
            .segs
            .is_none()
            .then_some((self.server_offset, self.len, self.version));
        let many = self.segs.as_deref().unwrap_or(&[]).iter().copied();
        single.into_iter().chain(many)
    }
}

/// Per-request state while its RDMA is in flight.
struct PendingRdma {
    job: Job,
    staging: PoolBuf,
    conn: usize,
    /// Request arrival instant (trace span start).
    started: SimTime,
}

struct Conn {
    qp: Qp,
    /// Control-message receive buffers (slices of one registration),
    /// indexed by recv wr_id.
    recv_region: Mr,
}

/// Server statistics.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Requests served.
    pub requests: u64,
    /// RDMA READ operations issued (swap-out pulls).
    pub rdma_reads: u64,
    /// RDMA WRITE operations issued (swap-in pushes).
    pub rdma_writes: u64,
    /// Bytes stored (swap-out).
    pub bytes_in: u64,
    /// Bytes served (swap-in).
    pub bytes_out: u64,
    /// Times the server had been idle past the threshold when work arrived
    /// (it had yielded the CPU and paid a wakeup).
    pub wakeups: u64,
    /// Malformed control messages dropped.
    pub bad_messages: u64,
    /// Revocation notices sent (dynamic memory).
    pub revokes_sent: u64,
    /// Writes fenced off (every covered page already held an
    /// equal-or-newer version) and acknowledged with `StaleWrite`
    /// instead of being applied.
    pub stale_writes: u64,
    /// Merged multi-extent requests served (client batching mode).
    pub merged_requests: u64,
}

/// Write-fencing granularity: versions are tracked per 4 KiB page, the
/// swap unit the client stamps.
const VERSION_PAGE: u64 = 4096;

/// The store pages a byte range touches.
fn page_range(offset: u64, len: u64) -> std::ops::RangeInclusive<u64> {
    // `validate` guarantees len > 0.
    let first = offset / VERSION_PAGE;
    let last = (offset + len - 1) / VERSION_PAGE;
    first..=last
}

struct ServerInner {
    engine: Engine,
    config: HpbdConfig,
    ibnode: IbNode,
    storage: Storage,
    /// Protection domain scoping the server's registrations and CQs.
    pd: Pd,
    staging_mr: Mr,
    staging_pool: SimBufferPool,
    send_cq: Cq,
    recv_cq: Cq,
    conns: RefCell<Vec<Conn>>,
    qp_to_conn: RefCell<BTreeMap<u32, usize>>,
    pending: RefCell<BTreeMap<u64, PendingRdma>>,
    /// Write fence: highest version applied per store page. A write whose
    /// version is not newer than what a page holds is dropped for that
    /// page — stale retries, failover reissues, and duplicate deliveries
    /// can never undo newer data. (BTreeMap for deterministic iteration.)
    versions: RefCell<BTreeMap<u64, u64>>,
    /// Receive buffers consumed while crashed (never re-posted by the dead
    /// daemon); a restart re-posts them. `(conn, wr_id)` pairs.
    lost_recvs: RefCell<Vec<(usize, u64)>>,
    next_token: Cell<u64>,
    last_activity: Cell<SimTime>,
    crashed: Cell<bool>,
    /// Storage generation (DESIGN.md §13): 1 at boot, bumped by every
    /// restart. Echoed in each reply so clients can detect an amnesiac
    /// restart that happened inside their timeout window.
    generation: Cell<u64>,
    stats: RefCell<ServerStats>,
    name: String,
    /// High-water mark of concurrently pending RDMA operations, published
    /// as a per-server gauge at stats time (never on the hot path).
    peak_pending: Cell<usize>,
    /// Scratch for decoding one control message (reused per request).
    wire_scratch: RefCell<Vec<u8>>,
    /// Freelist of staging-copy data buffers.
    data_pool: RefCell<Vec<Vec<u8>>>,
    ctr_wakeups: LazyCounter,
    ctr_requests: LazyCounter,
}

/// One HPBD memory server. Clone shares the instance.
#[derive(Clone)]
pub struct HpbdServer {
    inner: Rc<ServerInner>,
}

impl HpbdServer {
    /// Create a server on a fresh fabric node exporting `capacity` bytes.
    pub fn new(fabric: &Fabric, name: &str, capacity: u64, config: HpbdConfig) -> HpbdServer {
        let engine = fabric.engine().clone();
        let ibnode = fabric.add_node(name.to_string());
        // Staging pool is registered once at startup; charge the one-time
        // registration against the server CPU.
        let reg_cost = fabric
            .calibration()
            .registration_time(config.server_staging_size);
        ibnode.node().cpu().reserve(engine.now(), reg_cost);
        let pd = Pd::new(ibnode.clone());
        let staging_mr = pd.register(config.server_staging_size as usize);
        let staging_pool = SimBufferPool::new(config.server_staging_size);
        let send_cq = pd.create_cq();
        let recv_cq = pd.create_cq();
        let server = HpbdServer {
            inner: Rc::new(ServerInner {
                wire_scratch: RefCell::new(Vec::new()),
                data_pool: RefCell::new(Vec::new()),
                ctr_wakeups: engine.metrics().lazy_counter("hpbd_server.wakeups"),
                ctr_requests: engine.metrics().lazy_counter("hpbd_server.requests"),
                engine,
                config,
                ibnode,
                storage: Storage::new(capacity),
                pd,
                staging_mr,
                staging_pool,
                send_cq,
                recv_cq,
                conns: RefCell::new(Vec::new()),
                qp_to_conn: RefCell::new(BTreeMap::new()),
                pending: RefCell::new(BTreeMap::new()),
                versions: RefCell::new(BTreeMap::new()),
                lost_recvs: RefCell::new(Vec::new()),
                next_token: Cell::new(1),
                last_activity: Cell::new(SimTime::ZERO),
                crashed: Cell::new(false),
                generation: Cell::new(1),
                stats: RefCell::new(ServerStats::default()),
                name: name.to_string(),
                peak_pending: Cell::new(0),
            }),
        };
        server.install_handlers();
        server
    }

    /// The server's fabric node.
    pub fn ibnode(&self) -> &IbNode {
        &self.inner.ibnode
    }

    /// The receive CQ (the cluster builder wires QPs to it).
    pub fn recv_cq(&self) -> &CompletionQueue {
        self.inner.recv_cq.raw()
    }

    /// The send CQ.
    pub fn send_cq(&self) -> &CompletionQueue {
        self.inner.send_cq.raw()
    }

    /// Exported page-store capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.inner.storage.capacity()
    }

    /// Current storage generation: 1 at boot, +1 per restart. The cluster
    /// builder hands this to the client at connect time (the handshake's
    /// generation exchange), and every reply echoes it.
    pub fn generation(&self) -> u64 {
        self.inner.generation.get()
    }

    /// Statistics snapshot. Also publishes the peak pending-RDMA depth
    /// gauge (tracked in a cell on the hot path, registry-touched only
    /// here).
    pub fn stats(&self) -> ServerStats {
        self.inner.engine.metrics().set_gauge(
            intern(&format!(
                "hpbd_server.{}.peak_pending_rdma",
                self.inner.name
            )),
            self.inner.peak_pending.get() as f64,
        );
        self.inner.stats.borrow().clone()
    }

    /// Dynamic memory (the paper's future work): reclaim
    /// `[offset, offset + len)` of the exported store. A revocation notice
    /// goes to every client, which must migrate the pages it keeps there
    /// to spare capacity on other servers and stop using the range. The
    /// reclaim is advisory during the migration window (reads continue to
    /// be served), matching a cooperative host that wants its memory back
    /// but will not corrupt a tenant.
    pub fn revoke(&self, offset: u64, len: u64) {
        let inner = &self.inner;
        assert!(
            inner.storage.in_range(offset, len),
            "revoking a range outside the store"
        );
        inner.stats.borrow_mut().revokes_sent += 1;
        let notice = RevokeNotice::new(offset, len);
        let conns = inner.conns.borrow();
        for conn in conns.iter() {
            // Best-effort: a notice squeezed out by a full send queue is
            // re-issued by the next reclaim pass, so a failed post is
            // dropped rather than treated as fatal.
            let mut chain = conn.qp.chain();
            // Notices carry no request id.
            chain.send(u64::MAX, notice.encode(), true);
            let _ = chain.post();
        }
    }

    /// Failure injection: the server process dies. Every request from now
    /// on is silently dropped (a dead daemon sends nothing); in-flight
    /// RDMA data may still land, but no acknowledgement follows. The
    /// stored chunks are GONE — the process's memory is reclaimed by its
    /// host — so a later [`HpbdServer::restart`] comes back empty, exactly
    /// why the client must mirror writes to survive a crash. The client's
    /// timeout/failover machinery (when configured) is what keeps the swap
    /// device alive.
    pub fn crash(&self) {
        if self.inner.crashed.replace(true) {
            return;
        }
        // The exported page store evaporates with the process — and with
        // it the write fence: a restarted server starts from version 0,
        // matching its empty store.
        self.inner.storage.wipe();
        self.inner.versions.borrow_mut().clear();
        // In-flight RDMA state machines die with the daemon. Their staging
        // buffers return to the pool wholesale (the restart would rebuild
        // the pool; freeing models that without a pool reset). Late wire
        // completions for these tokens are dropped in finish_pull/push.
        let pending: Vec<PendingRdma> = {
            let mut map = self.inner.pending.borrow_mut();
            std::mem::take(&mut *map).into_values().collect()
        };
        for p in pending {
            self.inner.staging_pool.free(p.staging);
        }
        if self.inner.engine.trace_enabled() {
            self.inner.engine.tracer().instant(
                "hpbd_server",
                "crash",
                self.inner.engine.now().as_nanos(),
                &[],
            );
        }
    }

    /// Failure injection: the crashed daemon comes back up. The staging
    /// pool is re-registered (same CPU cost as boot), receive buffers the
    /// dead process consumed are re-posted, and service resumes — with an
    /// EMPTY store: pages swapped out before the crash are only
    /// recoverable from a mirror replica.
    pub fn restart(&self) {
        if !self.inner.crashed.get() {
            return;
        }
        let inner = &self.inner;
        // Drain anything that queued on the CQs while the daemon was down,
        // remembering which receives were consumed.
        self.reap_while_crashed();
        inner.send_cq.drain();
        // Boot cost: the staging pool must be pinned and registered again.
        let reg = inner
            .ibnode
            .memory_model()
            .calibration()
            .registration_time(inner.config.server_staging_size);
        inner.ibnode.node().cpu().reserve(inner.engine.now(), reg);
        // Receives consumed by the dead process go back on the QPs.
        let wire = MERGED_MAX_WIRE_SIZE as u64;
        let lost: Vec<(usize, u64)> = inner.lost_recvs.borrow_mut().drain(..).collect();
        {
            let conns = inner.conns.borrow();
            for (conn_idx, buf_idx) in lost {
                let conn = &conns[conn_idx];
                conn.qp
                    .post_recv(buf_idx, conn.recv_region.slice(buf_idx * wire, wire))
                    // simlint: allow(I001): restart re-posts only buffers the crash drained, so the fixed-size receive queue cannot overflow
                    .expect("re-posting receives at restart");
            }
        }
        // The store this process serves is a fresh, empty one: advertise a
        // new generation so clients can tell its replies come from after
        // the wipe, even if they never noticed the daemon was gone.
        inner.generation.set(inner.generation.get() + 1);
        inner.crashed.set(false);
        inner.last_activity.set(inner.engine.now());
        inner.recv_cq.req_notify(true);
        if inner.engine.trace_enabled() {
            inner.engine.tracer().instant(
                "hpbd_server",
                "restart",
                inner.engine.now().as_nanos(),
                &[],
            );
        }
    }

    /// Record the recv completions a dead daemon would have consumed, so a
    /// restart can re-post their buffers.
    fn reap_while_crashed(&self) {
        for completion in self.inner.recv_cq.drain() {
            let Some(conn_idx) = self
                .inner
                .qp_to_conn
                .borrow()
                .get(&completion.qp_num)
                .copied()
            else {
                // A completion from a QP no connection claims: count it
                // and drop rather than poison the restart bookkeeping.
                self.inner.stats.borrow_mut().bad_messages += 1;
                continue;
            };
            self.inner
                .lost_recvs
                .borrow_mut()
                .push((conn_idx, completion.wr_id));
        }
    }

    /// Whether the server has been crashed by failure injection.
    pub fn is_crashed(&self) -> bool {
        self.inner.crashed.get()
    }

    /// Attach a client connection: pre-posts `credits` control-message
    /// receive buffers on `qp`. Called by the cluster builder after the QP
    /// exchange.
    pub fn attach_connection(&self, qp: QueuePair) {
        let qp = Qp::from(qp);
        let inner = &self.inner;
        let credits = inner.config.credits;
        // Buffers are sized for the largest control message — a maximally
        // merged request — so plain and merged requests share the pool.
        let wire = MERGED_MAX_WIRE_SIZE as u64;
        let recv_region = inner.pd.register((credits as u64 * wire) as usize);
        for i in 0..credits {
            qp.post_recv(i as u64, recv_region.slice(i as u64 * wire, wire))
                // simlint: allow(I001): connection setup posts into an empty receive queue sized for exactly these buffers
                .expect("pre-posting control receives");
        }
        let idx = inner.conns.borrow().len();
        inner.qp_to_conn.borrow_mut().insert(qp.qp_num(), idx);
        inner.conns.borrow_mut().push(Conn { qp, recv_region });
    }

    fn install_handlers(&self) {
        // Receiver: woken by the solicited event of an incoming request,
        // drains every available request (bursty processing), re-arms.
        let this = self.clone();
        self.inner
            .recv_cq
            .set_event_handler(move || this.on_recv_event());
        self.inner.recv_cq.req_notify(true);

        // Sender-side completions: RDMA finishes drive the protocol.
        let this = self.clone();
        self.inner
            .send_cq
            .set_event_handler(move || this.on_send_event());
        self.inner.send_cq.req_notify(false);
    }

    fn note_activity(&self) {
        let now = self.inner.engine.now();
        let last = self.inner.last_activity.get();
        if now.since(last).as_nanos() > self.inner.config.server_idle_ns {
            // The server had yielded the CPU; this arrival paid a wakeup.
            self.inner.stats.borrow_mut().wakeups += 1;
            self.inner.ctr_wakeups.inc();
            if self.inner.engine.trace_enabled() {
                self.inner.engine.tracer().instant(
                    "hpbd_server",
                    "wakeup",
                    now.as_nanos(),
                    &[("idle_ns", now.since(last).as_nanos())],
                );
            }
        }
        self.inner.last_activity.set(now);
    }

    fn on_recv_event(&self) {
        if self.inner.crashed.get() {
            // Dead daemon: drop everything silently, but remember which
            // receive buffers were consumed so a restart can re-post them.
            self.reap_while_crashed();
            return;
        }
        self.note_activity();
        while let Some(completion) = self.inner.recv_cq.poll() {
            assert_eq!(completion.opcode, Opcode::Recv);
            assert_eq!(completion.status, WcStatus::Success, "control recv failed");
            let Some(conn_idx) = self
                .inner
                .qp_to_conn
                .borrow()
                .get(&completion.qp_num)
                .copied()
            else {
                // Unroutable completion (e.g. a connection torn down by
                // fault injection): count and drop, per the signature
                // validation discipline of paper §4.1.
                self.inner.stats.borrow_mut().bad_messages += 1;
                continue;
            };
            self.handle_request(conn_idx, completion.wr_id);
        }
        self.inner.recv_cq.req_notify(true);
    }

    fn handle_request(&self, conn_idx: usize, buf_idx: u64) {
        let inner = &self.inner;
        let wire = MERGED_MAX_WIRE_SIZE as u64;
        let decoded: Result<ClientMessage, ProtoError> = {
            let conns = inner.conns.borrow();
            let conn = &conns[conn_idx];
            let mut raw = inner.wire_scratch.borrow_mut();
            raw.clear();
            raw.resize(wire as usize, 0);
            conn.recv_region.read((buf_idx * wire) as usize, &mut raw);
            ClientMessage::decode_slice(&raw)
        };
        // Buffer consumed: re-post it for the next request.
        {
            let conns = inner.conns.borrow();
            let conn = &conns[conn_idx];
            conn.qp
                .post_recv(buf_idx, conn.recv_region.slice(buf_idx * wire, wire))
                // simlint: allow(I001): re-posting the buffer just consumed cannot overflow the fixed-size receive queue
                .expect("re-posting control receive");
        }
        let job = match decoded {
            Ok(ClientMessage::Request(r)) => Job::from_request(&r),
            Ok(ClientMessage::Merged(m)) => {
                self.inner.stats.borrow_mut().merged_requests += 1;
                Job::from_merged(&m)
            }
            Err(_) => {
                inner.stats.borrow_mut().bad_messages += 1;
                return;
            }
        };
        inner.stats.borrow_mut().requests += 1;
        inner.ctr_requests.inc();
        let started = inner.engine.now();
        if inner.engine.lifecycle_enabled() {
            // Route the mark back to the client-side span context by the
            // physical request id; a merged id fans out to every carried
            // part. Unknown ids (e.g. the context completed after a
            // timeout) are a silent no-op.
            inner.engine.lifecycle().mark_phys(
                job.req_id,
                MarkKind::ServerReceived,
                started.as_nanos(),
            );
        }
        // CPU cost of parsing + dispatching the message — paid once per
        // wire message, which is exactly the overhead merging amortises.
        let proc = SimDuration::from_nanos(inner.config.request_proc_ns);
        let (_, t_proc) = inner.ibnode.node().cpu().reserve(started, proc);

        if !self.validate(&job) {
            let this = self.clone();
            inner.engine.schedule_at(t_proc, move || {
                this.send_reply(conn_idx, job.req_id, ReplyStatus::OutOfRange, job.version);
            });
            return;
        }

        let this = self.clone();
        inner.engine.schedule_at(t_proc, move || {
            this.serve(conn_idx, job, started);
        });
    }

    fn validate(&self, job: &Job) -> bool {
        job.len > 0
            && job.len <= self.inner.config.server_staging_size
            && job
                .spans()
                .all(|(offset, len, _)| len > 0 && self.inner.storage.in_range(offset, len))
    }

    /// Fencing check: true when every page every segment covers already
    /// holds data from an equal-or-newer version, so applying the write
    /// could only undo newer data (or redundantly rewrite identical
    /// data). A merged write with ANY live segment must still be served;
    /// the apply-time fence then skips its stale segments page by page.
    fn write_fully_stale(&self, job: &Job) -> bool {
        if job.op != PageOp::Write {
            return false;
        }
        let versions = self.inner.versions.borrow();
        job.spans().all(|(offset, len, version)| {
            version > 0
                && page_range(offset, len).all(|p| versions.get(&p).is_some_and(|&v| v >= version))
        })
    }

    /// A write lost the fence race: acknowledge with `StaleWrite` so the
    /// client can retire it, without touching the store (and, when caught
    /// before the pull, without spending any RDMA).
    fn drop_stale(&self, conn_idx: usize, job: &Job, started: SimTime) {
        self.inner.stats.borrow_mut().stale_writes += 1;
        self.serve_span(job, started, true);
        self.send_reply(conn_idx, job.req_id, ReplyStatus::StaleWrite, job.version);
    }

    /// Dispatch a validated request: allocate staging, then drive the
    /// server-initiated RDMA state machine.
    fn serve(&self, conn_idx: usize, job: Job, started: SimTime) {
        if self.write_fully_stale(&job) {
            // Fenced before staging: a newer write already covers every
            // page; skip the staging wait and the RDMA pull entirely.
            self.drop_stale(conn_idx, &job, started);
            return;
        }
        let this = self.clone();
        // Staging allocation may wait for in-flight requests to release
        // buffers (the staging pool is its own wait queue). One span per
        // message, merged or not.
        self.inner.staging_pool.alloc(job.len, move |staging| {
            this.serve_with_staging(conn_idx, job, staging, started);
        });
    }

    fn serve_with_staging(&self, conn_idx: usize, job: Job, staging: PoolBuf, started: SimTime) {
        let inner = &self.inner;
        if inner.crashed.get() {
            // The daemon died while this request waited for staging.
            inner.staging_pool.free(staging);
            return;
        }
        if self.write_fully_stale(&job) {
            // A newer write to every covered page landed while this one
            // waited for staging; fence it off before spending RDMA.
            inner.staging_pool.free(staging);
            self.drop_stale(conn_idx, &job, started);
            return;
        }
        let token = inner.next_token.get();
        inner.next_token.set(token + 1);
        let remote = RemoteSlice {
            rkey: job.client_rkey,
            offset: job.client_offset,
            len: job.len,
        };
        let local = inner.staging_mr.slice(staging.offset, job.len);
        let (req_id, op, len) = (job.req_id, job.op, job.len);
        // Swap-in gathers store extents into one contiguous data buffer in
        // staging order (merged segments may be scattered on the store).
        let read_data = (op == PageOp::Read).then(|| {
            let mut data = self.take_data_buf(len as usize);
            let mut base = 0usize;
            for (offset, seg_len, _) in job.spans() {
                inner
                    .storage
                    .read_at(offset, &mut data[base..base + seg_len as usize]);
                base += seg_len as usize;
            }
            data
        });
        {
            let mut pending = inner.pending.borrow_mut();
            pending.insert(
                token,
                PendingRdma {
                    job,
                    staging,
                    conn: conn_idx,
                    started,
                },
            );
            inner
                .peak_pending
                .set(inner.peak_pending.get().max(pending.len()));
        }
        match op {
            PageOp::Write => {
                // Swap-out: pull the page data from the client — ONE
                // scatter-gather read for the whole merged span.
                inner.stats.borrow_mut().rdma_reads += 1;
                if inner.engine.lifecycle_enabled() {
                    inner.engine.lifecycle().mark_phys(
                        req_id,
                        MarkKind::RdmaPosted,
                        inner.engine.now().as_nanos(),
                    );
                }
                self.post_rdma(
                    conn_idx,
                    WorkRequest {
                        wr_id: token,
                        kind: WorkKind::RdmaRead { local, remote },
                        solicited: false,
                    },
                );
            }
            PageOp::Read => {
                // Swap-in: copy store -> staging, then push with RDMA WRITE.
                // simlint: allow(I001): populated above for every Read op
                let data = read_data.expect("gathered above for reads");
                let copy = inner.ibnode.memory_model().memcpy_time(len);
                let (_, t_copy) = inner.ibnode.node().cpu().reserve(inner.engine.now(), copy);
                if inner.engine.trace_enabled() {
                    inner.engine.tracer().span(
                        "hpbd_server",
                        "store_to_staging",
                        inner.engine.now().as_nanos(),
                        t_copy.as_nanos(),
                        &[("bytes", len)],
                    );
                }
                let this = self.clone();
                inner.engine.schedule_at(t_copy, move || {
                    if this.inner.crashed.get() {
                        // Crash landed mid-copy; the staging buffer is in
                        // `pending`, which the crash already reclaimed.
                        this.recycle_data_buf(data);
                        return;
                    }
                    this.inner.staging_mr.write(staging.offset as usize, &data);
                    this.recycle_data_buf(data);
                    this.inner.stats.borrow_mut().rdma_writes += 1;
                    if this.inner.engine.lifecycle_enabled() {
                        this.inner.engine.lifecycle().mark_phys(
                            req_id,
                            MarkKind::RdmaPosted,
                            this.inner.engine.now().as_nanos(),
                        );
                    }
                    this.post_rdma(
                        conn_idx,
                        WorkRequest {
                            wr_id: token,
                            kind: WorkKind::RdmaWrite {
                                local: this.inner.staging_mr.slice(staging.offset, len),
                                remote,
                            },
                            solicited: false,
                        },
                    );
                });
            }
        }
    }

    fn post_rdma(&self, conn_idx: usize, wr: WorkRequest) {
        let token = wr.wr_id;
        let posted = {
            let conns = self.inner.conns.borrow();
            let mut chain = conns[conn_idx].qp.chain();
            chain.push(wr);
            chain.post()
        };
        if posted.is_err() {
            // Send-queue overflow: fail the request instead of wedging it.
            // Its staging returns to the pool and the client gets a typed
            // TransferError to drive its own retry machinery.
            let dropped = self.inner.pending.borrow_mut().remove(&token);
            if let Some(p) = dropped {
                self.inner.staging_pool.free(p.staging);
                self.send_reply(
                    p.conn,
                    p.job.req_id,
                    ReplyStatus::TransferError,
                    p.job.version,
                );
            }
        }
    }

    fn on_send_event(&self) {
        if self.inner.crashed.get() {
            self.inner.send_cq.drain();
            return;
        }
        self.note_activity();
        while let Some(completion) = self.inner.send_cq.poll() {
            match completion.opcode {
                Opcode::Send => {
                    // A reply left the node; nothing further to do. An
                    // injected link fault may have errored it — the client's
                    // timeout machinery recovers, not us.
                }
                Opcode::RdmaRead => self.finish_pull(completion.wr_id, completion.status),
                Opcode::RdmaWrite => self.finish_push(completion.wr_id, completion.status),
                Opcode::Recv => unreachable!("recv completion on send CQ"),
            }
        }
        self.inner.send_cq.req_notify(false);
    }

    /// RDMA READ done: the swap-out data is in staging; memcpy it into the
    /// store (overlapping any other in-flight RDMA), then acknowledge.
    fn finish_pull(&self, token: u64, status: WcStatus) {
        let inner = &self.inner;
        let Some(PendingRdma {
            job,
            staging,
            conn,
            started,
        }) = inner.pending.borrow_mut().remove(&token)
        else {
            return; // state dropped by a crash between post and completion
        };
        if inner.engine.lifecycle_enabled() {
            inner.engine.lifecycle().mark_phys(
                job.req_id,
                MarkKind::RdmaDone,
                inner.engine.now().as_nanos(),
            );
        }
        if status != WcStatus::Success {
            inner.staging_pool.free(staging);
            self.serve_span(&job, started, false);
            self.send_reply(conn, job.req_id, ReplyStatus::TransferError, job.version);
            return;
        }
        let mut data = self.take_data_buf(job.len as usize);
        inner.staging_mr.read(staging.offset as usize, &mut data);
        let copy = inner.ibnode.memory_model().memcpy_time(job.len);
        let (_, t_copy) = inner.ibnode.node().cpu().reserve(inner.engine.now(), copy);
        if inner.engine.trace_enabled() {
            inner.engine.tracer().span(
                "hpbd_server",
                "staging_to_store",
                inner.engine.now().as_nanos(),
                t_copy.as_nanos(),
                &[("bytes", job.len)],
            );
        }
        let this = self.clone();
        inner.engine.schedule_at(t_copy, move || {
            if this.inner.crashed.get() {
                // Crash landed mid-copy; this request already left
                // `pending`, so its staging buffer is ours to return.
                this.recycle_data_buf(data);
                this.inner.staging_pool.free(staging);
                return;
            }
            // The apply-time fence: the authoritative check. A newer write
            // may have been applied while this pull was on the wire, so
            // each page is re-checked at the moment it would be written.
            let applied = this.apply_versioned(&job, &data);
            this.recycle_data_buf(data);
            this.inner.staging_pool.free(staging);
            if applied {
                this.inner.stats.borrow_mut().bytes_in += job.len;
                this.serve_span(&job, started, true);
                this.send_reply(conn, job.req_id, ReplyStatus::Ok, job.version);
            } else {
                this.drop_stale(conn, &job, started);
            }
        });
    }

    /// Apply pulled swap-out data page-by-page under the write fence: a
    /// page is written only when the incoming version is newer than the
    /// version it holds. Each merged segment fences independently with its
    /// own version, so a merged message carrying one stale and one live
    /// write applies exactly the live one. Returns whether any page was
    /// applied.
    fn apply_versioned(&self, job: &Job, data: &[u8]) -> bool {
        let inner = &self.inner;
        let mut applied_any = false;
        let mut data_base = 0usize;
        for (offset, len, version) in job.spans() {
            let span_data = &data[data_base..data_base + len as usize];
            data_base += len as usize;
            if version == 0 {
                // Unversioned write (a client that opted out of fencing):
                // apply wholesale, as before versioning existed.
                inner.storage.write_at(offset, span_data);
                applied_any = true;
                continue;
            }
            let mut versions = inner.versions.borrow_mut();
            for page in page_range(offset, len) {
                let stored = versions.get(&page).copied().unwrap_or(0);
                if stored >= version {
                    continue;
                }
                // Intersect the page with the span's byte range (the first
                // and last pages may be partially covered).
                let page_start = page * VERSION_PAGE;
                let start = offset.max(page_start);
                let end = (offset + len).min(page_start + VERSION_PAGE);
                let src = (start - offset) as usize;
                inner
                    .storage
                    .write_at(start, &span_data[src..src + (end - start) as usize]);
                versions.insert(page, version);
                applied_any = true;
            }
        }
        applied_any
    }

    /// RDMA WRITE done: the swap-in data is placed in the client;
    /// acknowledge and release staging.
    fn finish_push(&self, token: u64, status: WcStatus) {
        let inner = &self.inner;
        let Some(PendingRdma {
            job,
            staging,
            conn,
            started,
        }) = inner.pending.borrow_mut().remove(&token)
        else {
            return; // state dropped by a crash between post and completion
        };
        if inner.engine.lifecycle_enabled() {
            inner.engine.lifecycle().mark_phys(
                job.req_id,
                MarkKind::RdmaDone,
                inner.engine.now().as_nanos(),
            );
        }
        inner.staging_pool.free(staging);
        if status != WcStatus::Success {
            self.serve_span(&job, started, false);
            self.send_reply(conn, job.req_id, ReplyStatus::TransferError, job.version);
            return;
        }
        inner.stats.borrow_mut().bytes_out += job.len;
        self.serve_span(&job, started, true);
        self.send_reply(conn, job.req_id, ReplyStatus::Ok, job.version);
    }

    /// Pop a recycled data buffer (or grow a fresh one), sized to `len`.
    fn take_data_buf(&self, len: usize) -> Vec<u8> {
        let mut buf = self.inner.data_pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Return a data buffer to the freelist (bounded).
    fn recycle_data_buf(&self, buf: Vec<u8>) {
        let mut pool = self.inner.data_pool.borrow_mut();
        if pool.len() < 64 {
            pool.push(buf);
        }
    }

    /// Emit the request-arrival -> reply trace span for one served request.
    fn serve_span(&self, job: &Job, started: SimTime, ok: bool) {
        let engine = &self.inner.engine;
        if !engine.trace_enabled() {
            return;
        }
        engine.tracer().span(
            "hpbd_server",
            match job.op {
                PageOp::Write => "serve_write",
                PageOp::Read => "serve_read",
            },
            started.as_nanos(),
            engine.now().as_nanos(),
            &[("req", job.req_id), ("bytes", job.len), ("ok", ok as u64)],
        );
    }

    fn send_reply(&self, conn_idx: usize, req_id: u64, status: ReplyStatus, version: u64) {
        if self.inner.crashed.get() {
            return; // a dead daemon sends nothing
        }
        if self.inner.engine.lifecycle_enabled() {
            self.inner.engine.lifecycle().mark_phys(
                req_id,
                MarkKind::ReplyPosted,
                self.inner.engine.now().as_nanos(),
            );
        }
        let reply = PageReply::new(req_id, status, version, self.inner.generation.get());
        let conns = self.inner.conns.borrow();
        // Best-effort: a reply squeezed out by a full send queue is
        // indistinguishable from a lost ack, and the client's timeout
        // machinery already recovers from that. Solicited so the client's
        // sleeping receiver thread wakes (paper §5: the server sets the
        // solicitation control field of the send descriptor).
        let mut chain = conns[conn_idx].qp.chain();
        chain.send(req_id, reply.encode(), true);
        let _ = chain.post();
    }
}
