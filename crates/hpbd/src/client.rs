//! The HPBD client: a block device driver over InfiniBand verbs.
//!
//! Serves the VM's paging I/O by staging pages through the pre-registered
//! buffer pool and exchanging control messages with the memory servers
//! (paper §4.2). The asynchronous design follows §4.2.3: the *sender* path
//! issues requests as soon as the kernel submits them (subject to pool
//! space and flow-control credits); the *receiver* path sleeps until the
//! solicited completion event fires, then drains every available reply in
//! one burst before re-arming.
//!
//! Multi-server support (§4.2.5) distributes the swap area across servers
//! in a contiguous **blocking** (non-striped) pattern; a request crossing
//! an extent boundary splits into physical requests, and the parent I/O
//! completes when every physical part is acknowledged.
//!
//! Flow control (§4.2.4) is a per-server credit water-mark equal to the
//! pre-posted receive buffers at the server; requests over the water-mark
//! queue inside the driver.

use crate::config::{Distribution, HpbdConfig, StagingMode};
use crate::pool::{PoolBuf, SimBufferPool};
use crate::proto::{
    MergedRequest, MergedSeg, PageOp, PageRequest, ReplyStatus, RevokeNotice, ServerMessage,
    MAX_MERGE_SEGMENTS, REPLY_WIRE_SIZE,
};
use blockdev::{new_buffer, Bio, BlockDevice, DeviceHealth, FaultKind, IoError, IoOp, IoRequest};
use ibsim::{
    CompletionQueue, Cq, IbNode, MemoryRegion, Mr, Opcode, Pd, Qp, QueuePair, WcStatus, WorkKind,
    WorkRequest,
};
use simcore::{Engine, EventId, SimDuration, SimTime};
use simtrace::{intern, Counter, Histogram, LazyCounter, MarkKind, RequestCtx};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

/// Client statistics.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Block-layer requests accepted.
    pub requests: u64,
    /// Physical (per-server) requests issued.
    pub phys_requests: u64,
    /// Requests that had to split across server extents.
    pub split_requests: u64,
    /// Times a physical request waited for pool space.
    pub pool_waits: u64,
    /// Times a physical request waited for flow-control credits.
    pub flow_stalls: u64,
    /// Payload bytes swapped out.
    pub bytes_out: u64,
    /// Payload bytes swapped in.
    pub bytes_in: u64,
    /// Replies processed.
    pub replies: u64,
    /// Corrupt or unroutable server messages dropped (paper §4.1:
    /// signature validation; recovery is the requester's timeout).
    pub bad_messages: u64,
    /// Receiver-thread wakeups (completion events).
    pub receiver_wakeups: u64,
    /// Mirror-replica physical requests issued (mirror mode only).
    pub mirrored_phys: u64,
    /// Requests that timed out (failover mode only).
    pub timeouts: u64,
    /// Timed-out or send-failed requests re-issued to the SAME server
    /// (transient-fault tolerance; bounded by `max_retries`).
    pub retries: u64,
    /// Requests re-routed to a buddy server's replica region.
    pub failovers: u64,
    /// Revocation notices received (dynamic memory).
    pub revocations: u64,
    /// Chunks migrated to spare capacity.
    pub migrations: u64,
    /// Block requests deferred behind an in-progress migration.
    pub deferred_requests: u64,
    /// Writes a server fenced off as stale (a newer version already
    /// covered every page); completed as success since the superseding
    /// write is the state the device must converge to.
    pub stale_drops: u64,
    /// Mirror replicas dropped because their home server was dead: the
    /// buddy's replica region belongs to a *different* extent, so
    /// re-routing there would alias two device pages onto one slot. The
    /// write keeps its primary copy and runs with degraded redundancy.
    pub mirror_drops: u64,
    /// Migration transfers re-enqueued after a failed read or write
    /// completion (the chunk stays deferred until a retry succeeds).
    pub migration_retries: u64,
    /// Control messages exchanged with the servers: requests posted plus
    /// replies/notices decoded. The per-page ratio (messages / pages
    /// swapped) is the overhead the ROADMAP's batching item attacks.
    pub messages: u64,
    /// Merged multi-extent messages posted (batching mode only).
    pub merged_requests: u64,
    /// Logical parts carried inside merged messages; the mean merge depth
    /// is `merged_segments / merged_requests`.
    pub merged_segments: u64,
    /// Replies whose storage generation differed from the one learned at
    /// connect time: the server restarted (wiping its store) inside our
    /// timeout window. The connection is retired and the request recovered
    /// from the mirror/buddy, exactly like a timeout — but *detected*, not
    /// waited for.
    pub epoch_wipes: u64,
}

impl ClientStats {
    /// Control messages per 4 KiB page swapped (0 when nothing moved).
    pub fn messages_per_page(&self) -> f64 {
        let pages = (self.bytes_in + self.bytes_out) / 4096;
        if pages == 0 {
            0.0
        } else {
            self.messages as f64 / pages as f64
        }
    }
}

/// Parent bookkeeping for a (possibly split) block request.
struct Parent {
    req: RefCell<Option<IoRequest>>,
    remaining: Cell<usize>,
    error: Cell<Option<IoError>>,
    /// Submission instant (trace span start).
    started: SimTime,
    op: PageOp,
    len: u64,
    /// Physical parts issued (including mirror replicas).
    parts: Cell<usize>,
    /// Pre-resolved swap-in/out latency histogram for this op.
    latency_hist: Histogram,
    /// Lifecycle span context stamped at block-queue dispatch; the parts
    /// append phase marks through it. `None` when lifecycle tracing is off
    /// or the request bypassed the queue (migration traffic).
    ctx: Option<Rc<RequestCtx>>,
}

impl Parent {
    fn finish_part(&self, engine: &Engine) {
        let left = self.remaining.get() - 1;
        self.remaining.set(left);
        if left == 0 {
            // simlint: allow(I001): `remaining` hitting zero exactly once is the Parent invariant; a second take means simulator corruption, not an I/O error
            let req = self.req.borrow_mut().take().expect("completed twice");
            let result = match self.error.get() {
                Some(e) => Err(e),
                None => Ok(()),
            };
            if engine.trace_enabled() {
                engine.tracer().span(
                    "hpbd",
                    match self.op {
                        PageOp::Read => "request_read",
                        PageOp::Write => "request_write",
                    },
                    self.started.as_nanos(),
                    engine.now().as_nanos(),
                    &[
                        ("bytes", self.len),
                        ("parts", self.parts.get() as u64),
                        ("ok", result.is_ok() as u64),
                    ],
                );
            }
            self.latency_hist
                .observe(engine.now().since(self.started).as_micros_f64());
            req.complete(result);
        }
    }
}

/// Where a physical request's data is staged for RDMA.
enum Staging {
    /// A span of the pre-registered pool (the paper's design).
    Pool(PoolBuf),
    /// An ephemeral on-the-fly registration (ablation / zero-copy mode).
    Ephemeral(MemoryRegion),
}

/// One logical part (a slice of one block request) carried by a physical
/// wire message. An unmerged message carries exactly one; a merged message
/// carries several, packed back-to-back in one staging span but free to
/// address scattered extents of the server's store.
struct Segment {
    parent: Rc<Parent>,
    parent_off: u64,
    /// Store offset of this part inside the target server's swap area.
    /// For single-segment requests this always equals `Phys::server_offset`
    /// (failover remaps both together).
    server_offset: u64,
    len: u64,
    /// Write-fencing stamp (0 for reads). Retries and failover reissues
    /// keep the stamp they were born with: a reissue is the SAME logical
    /// write, and must lose to any newer write that overtook it.
    version: u64,
    /// Lifecycle part index within the parent context (0 when off).
    part: u16,
}

/// Segment storage for a physical request: the unmerged hot path keeps its
/// one segment inline, with no heap allocation per request.
enum Segs {
    One(Segment),
    Many(Vec<Segment>),
}

impl Segs {
    fn as_slice(&self) -> &[Segment] {
        match self {
            Segs::One(seg) => std::slice::from_ref(seg),
            Segs::Many(segs) => segs,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [Segment] {
        match self {
            Segs::One(seg) => std::slice::from_mut(seg),
            Segs::Many(segs) => segs,
        }
    }
}

/// One physical request in flight or awaiting credits.
struct Phys {
    req_id: u64,
    op: PageOp,
    server_idx: usize,
    /// Store offset of the FIRST segment (single-segment requests: the
    /// whole message's offset). Merged messages carry per-segment offsets
    /// in `segs`.
    server_offset: u64,
    /// Total transfer length — the sum of the segment lengths (the size
    /// of the staging span and of the single RDMA operation).
    len: u64,
    staging: Staging,
    /// Mirror copies do not scatter data back on reads and are counted
    /// separately in the stats.
    is_mirror: bool,
    /// Armed timeout timer, cancelled when the reply lands (so an
    /// answered request costs no stray wakeup event).
    timer: Cell<Option<EventId>>,
    /// Delivery attempts so far; drives the retry backoff.
    attempts: u32,
    /// Lifecycle attempt counter: bumped on retries AND failover
    /// reissues, so each delivery attempt gets a distinct mark key
    /// (unlike `attempts`, which failover deliberately does not bump —
    /// the reissue keeps its backoff budget). A merged message retries,
    /// fails over, and completes as a unit, so the counter lives here,
    /// not per segment.
    trace_attempt: u16,
    /// The logical parts this message carries.
    segs: Segs,
}

impl Phys {
    /// The fencing version the reply is expected to echo: the segment's
    /// own stamp for a plain request, the maximum across segments for a
    /// merged one (matching `MergedRequest::max_version`).
    fn reply_version(&self) -> u64 {
        self.segs
            .as_slice()
            .iter()
            .map(|s| s.version)
            .max()
            .unwrap_or(0)
    }

    /// Whether any carried part has a lifecycle context attached.
    fn has_ctx(&self) -> bool {
        self.segs.as_slice().iter().any(|s| s.parent.ctx.is_some())
    }

    /// Whether any carried segment overlaps the store range `[lo, hi)`.
    /// Merged requests may span gaps, so `server_offset..+len` alone would
    /// understate (and sometimes overstate) the touched extent.
    fn touches_store(&self, lo: u64, hi: u64) -> bool {
        self.segs
            .as_slice()
            .iter()
            .any(|s| s.server_offset < hi && lo < s.server_offset + s.len)
    }
}

/// A part parked in the per-server batch accumulator until its merge
/// window closes (batching mode). The store offset lives in the segment.
struct PendingPart {
    op: PageOp,
    is_mirror: bool,
    seg: Segment,
}

/// Per-server merge accumulator (batching mode).
struct BatchState {
    pending: RefCell<Vec<PendingPart>>,
    /// A flush event is already scheduled; dedups arming per window.
    armed: Cell<bool>,
}

struct ServerConn {
    qp: Qp,
    credits: Cell<usize>,
    queued: RefCell<VecDeque<Phys>>,
    /// High-water mark of the credit-stall queue, published as the
    /// per-server queue-depth gauge at stats time (never on the hot path).
    peak_queued: Cell<usize>,
    recv_region: Mr,
    extent_len: u64,
    /// Marked on the first request timeout; all traffic re-routes to the
    /// buddy afterwards.
    dead: Cell<bool>,
    /// The server storage generation learned in the connect handshake. A
    /// reply carrying a different generation exposes an amnesiac restart
    /// (the store was wiped inside our timeout window): its data must not
    /// be trusted, and the connection is retired like a timed-out one.
    generation: Cell<u64>,
}

/// One entry of the device-to-server mapping (dynamic-memory indirection).
#[derive(Clone, Copy, Debug)]
struct Chunk {
    /// Device offset this chunk starts at.
    device_base: u64,
    /// Length (the last chunk of an extent may be short).
    len: u64,
    /// Current home.
    server: usize,
    /// Server-relative offset of the chunk's storage.
    server_offset: u64,
}

struct ClientInner {
    engine: Engine,
    config: HpbdConfig,
    ibnode: IbNode,
    /// Protection domain scoping the client's registrations and CQs.
    pd: Pd,
    pool_mr: Mr,
    pool: SimBufferPool,
    send_cq: Cq,
    recv_cq: Cq,
    conns: RefCell<Vec<ServerConn>>,
    qp_to_conn: RefCell<BTreeMap<u32, usize>>,
    outstanding: RefCell<BTreeMap<u64, Phys>>,
    next_req_id: Cell<u64>,
    /// Write-fencing version source: one fresh stamp per block-layer
    /// write, shared by every physical part (primary and mirror replica)
    /// of that write. Monotonic, so later writes always win the fence.
    next_version: Cell<u64>,
    /// Failed-migration retry counts per chunk (cleared on success).
    migration_attempts: RefCell<BTreeMap<usize, u32>>,
    capacity: Cell<u64>,
    stats: RefCell<ClientStats>,
    /// Device-chunk → server-location mapping, sorted by `device_base`.
    chunk_map: RefCell<Vec<Chunk>>,
    /// Per-server free spare chunk offsets (migration targets).
    spares: RefCell<Vec<Vec<u64>>>,
    /// Chunk indices currently migrating: requests touching them defer.
    migrating: RefCell<BTreeSet<usize>>,
    /// Block requests held back until their chunks finish migrating.
    deferred: RefCell<Vec<IoRequest>>,
    name: String,
    /// Set by [`BlockDevice::shutdown`]: new submissions fail cleanly.
    shut_down: Cell<bool>,
    /// Scratch for decoding one reply off a receive buffer (reused — the
    /// receiver burst never allocates per message).
    wire_scratch: RefCell<Vec<u8>>,
    /// Scratch for gathering write payloads out of the parent request.
    gather_scratch: RefCell<Vec<u8>>,
    /// Freelist of swap-in data buffers (filled from the pool MR, scattered
    /// back to the page frames, then recycled).
    data_pool: RefCell<Vec<Vec<u8>>>,
    /// Per-server merge accumulators, indexed like `conns` (batching mode;
    /// present but idle otherwise).
    batch: RefCell<Vec<BatchState>>,
    /// Flush-scoped doorbell spool: `(conn index, work request)` pairs
    /// collected while a batch flush is on the stack, posted as chained
    /// WRs — one doorbell per server per flush — when it unwinds.
    spool: RefCell<Vec<(usize, WorkRequest)>>,
    spool_active: Cell<bool>,
    /// Pre-resolved handles for metrics that are registered at construction
    /// anyway; hot emit sites bump these without a registry lookup.
    ctr_credit_stalls: Counter,
    hist_swap_in: Histogram,
    hist_swap_out: Histogram,
    /// Lazily-resolved handles: the registry entry appears at the first
    /// increment, exactly like the string-keyed `inc` path they replace.
    ctr_requests: LazyCounter,
    ctr_phys_requests: LazyCounter,
    ctr_pool_waits: LazyCounter,
    ctr_receiver_wakeups: LazyCounter,
    ctr_messages: LazyCounter,
}

/// The HPBD block device. Clone shares the device instance.
#[derive(Clone)]
pub struct HpbdClient {
    inner: Rc<ClientInner>,
}

impl HpbdClient {
    /// Create the client driver on `ibnode`. Connections are added by the
    /// cluster builder via [`HpbdClient::attach_server`].
    pub fn new(engine: Engine, ibnode: IbNode, config: HpbdConfig) -> HpbdClient {
        // Pre-register the headline metrics so reports always show them,
        // even for runs where the condition never fires.
        let metrics = engine.metrics();
        let ctr_credit_stalls = metrics.counter_handle("hpbd.credit_stalls");
        metrics.add("hpbd.split_requests", 0);
        metrics.add("hpbd.failovers", 0);
        let hist_swap_in = metrics.histogram_handle("hpbd.swap_in_latency_us");
        let hist_swap_out = metrics.histogram_handle("hpbd.swap_out_latency_us");
        // The pool is registered once at device load time (paper §4.2.2);
        // charge the registration cost against the client CPU.
        let reg = ibnode
            .memory_model()
            .calibration()
            .registration_time(config.pool_size);
        ibnode.node().cpu().reserve(engine.now(), reg);
        let pd = Pd::new(ibnode.clone());
        let pool_mr = pd.register(config.pool_size as usize);
        let pool = SimBufferPool::new(config.pool_size);
        let send_cq = pd.create_cq();
        let recv_cq = pd.create_cq();
        let client = HpbdClient {
            inner: Rc::new(ClientInner {
                engine,
                config,
                ibnode,
                pd,
                pool_mr,
                pool,
                send_cq,
                recv_cq,
                conns: RefCell::new(Vec::new()),
                qp_to_conn: RefCell::new(BTreeMap::new()),
                outstanding: RefCell::new(BTreeMap::new()),
                next_req_id: Cell::new(1),
                next_version: Cell::new(1),
                migration_attempts: RefCell::new(BTreeMap::new()),
                capacity: Cell::new(0),
                stats: RefCell::new(ClientStats::default()),
                chunk_map: RefCell::new(Vec::new()),
                spares: RefCell::new(Vec::new()),
                migrating: RefCell::new(BTreeSet::new()),
                deferred: RefCell::new(Vec::new()),
                name: "hpbd0".to_string(),
                shut_down: Cell::new(false),
                wire_scratch: RefCell::new(Vec::new()),
                gather_scratch: RefCell::new(Vec::new()),
                data_pool: RefCell::new(Vec::new()),
                batch: RefCell::new(Vec::new()),
                spool: RefCell::new(Vec::new()),
                spool_active: Cell::new(false),
                ctr_credit_stalls,
                hist_swap_in,
                hist_swap_out,
                ctr_requests: metrics.lazy_counter("hpbd.requests"),
                ctr_phys_requests: metrics.lazy_counter("hpbd.phys_requests"),
                ctr_pool_waits: metrics.lazy_counter("hpbd.pool_waits"),
                ctr_receiver_wakeups: metrics.lazy_counter("hpbd.receiver_wakeups"),
                ctr_messages: metrics.lazy_counter("hpbd.messages"),
            }),
        };
        client.install_receiver();
        client
    }

    /// The client's fabric node (shared with the VM and applications).
    pub fn ibnode(&self) -> &IbNode {
        &self.inner.ibnode
    }

    /// CQs for the cluster builder to wire server QPs to:
    /// (send CQ, recv CQ) — shared among the QPs to all servers (paper §5).
    pub fn cqs(&self) -> (&CompletionQueue, &CompletionQueue) {
        (self.inner.send_cq.raw(), self.inner.recv_cq.raw())
    }

    /// Number of attached servers.
    pub fn server_count(&self) -> usize {
        self.inner.conns.borrow().len()
    }

    /// Statistics snapshot. Also publishes the derived gauges
    /// (`hpbd.messages_per_page`, per-server peak queue depth) so they
    /// appear in metric snapshots taken afterwards — peaks are tracked in
    /// cells on the hot path and only hit the registry here.
    pub fn stats(&self) -> ClientStats {
        let stats = self.inner.stats.borrow().clone();
        let metrics = self.inner.engine.metrics();
        metrics.set_gauge("hpbd.messages_per_page", stats.messages_per_page());
        for (i, conn) in self.inner.conns.borrow().iter().enumerate() {
            metrics.set_gauge(
                intern(&format!("hpbd.server{i}.peak_queue_depth")),
                conn.peak_queued.get() as f64,
            );
        }
        stats
    }

    /// Attach a server whose extent covers the next `extent_len` bytes of
    /// the device (blocking distribution: extents are contiguous and in
    /// attach order). Pre-posts reply receive buffers on `qp`.
    /// `generation` is the server's storage generation from the connect
    /// handshake; replies carrying any other value reveal an in-window
    /// restart (see [`ClientStats::epoch_wipes`]).
    pub fn attach_server(&self, qp: QueuePair, extent_len: u64, generation: u64) {
        let qp = Qp::from(qp);
        let inner = &self.inner;
        let credits = inner.config.credits;
        // Two extra receives beyond the credit window absorb
        // server-initiated notices (revocations).
        let recvs = credits + 2;
        let wire = REPLY_WIRE_SIZE as u64 + 4;
        let recv_region = inner.pd.register((recvs as u64 * wire) as usize);
        for i in 0..recvs {
            qp.post_recv(i as u64, recv_region.slice(i as u64 * wire, wire))
                // simlint: allow(I001): connection setup posts into an empty receive queue sized for exactly these buffers
                .expect("pre-posting reply receives");
        }
        let base = inner.capacity.get();
        let idx = inner.conns.borrow().len();
        inner.qp_to_conn.borrow_mut().insert(qp.qp_num(), idx);
        let idx_new = inner.conns.borrow().len();
        inner.conns.borrow_mut().push(ServerConn {
            qp,
            credits: Cell::new(credits),
            queued: RefCell::new(VecDeque::new()),
            peak_queued: Cell::new(0),
            recv_region,
            extent_len,
            dead: Cell::new(false),
            generation: Cell::new(generation),
        });
        inner.batch.borrow_mut().push(BatchState {
            pending: RefCell::new(Vec::new()),
            armed: Cell::new(false),
        });
        inner.capacity.set(base + extent_len);
        // Device-chunk map entries for the new extent.
        {
            let chunk = inner.config.chunk_bytes.max(4096);
            let mut map = inner.chunk_map.borrow_mut();
            let mut at = 0;
            while at < extent_len {
                let len = chunk.min(extent_len - at);
                map.push(Chunk {
                    device_base: base + at,
                    len,
                    server: idx_new,
                    server_offset: at,
                });
                at += len;
            }
        }
        // Spare chunks live past the extent (and past the mirror replica
        // region when both features are on).
        {
            let chunk = inner.config.chunk_bytes.max(4096);
            let spare_base = if inner.config.mirror_writes {
                extent_len * 2
            } else {
                extent_len
            };
            let spares: Vec<u64> = (0..inner.config.spare_chunks as u64)
                .map(|i| spare_base + i * chunk)
                .collect();
            inner.spares.borrow_mut().push(spares);
        }
    }

    // -- sender path ---------------------------------------------------------

    /// Split a device extent into per-server physical parts, according to
    /// the configured distribution (paper §4.2.5).
    fn split(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64, u64)> {
        // (server_idx, server_offset, parent_off, part_len)
        match self.inner.config.distribution {
            Distribution::Blocking => self.split_blocking(offset, len),
            Distribution::Striped { stripe_bytes } => self.split_striped(offset, len, stripe_bytes),
        }
    }

    fn split_blocking(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64, u64)> {
        // Resolve through the chunk map (identity until migrations move
        // chunks), coalescing runs that stay contiguous on one server.
        let map = self.inner.chunk_map.borrow();
        let mut parts: Vec<(usize, u64, u64, u64)> = Vec::new();
        let mut at = offset;
        let end = offset + len;
        let mut idx = map.partition_point(|c| c.device_base + c.len <= at);
        while at < end {
            let c = &map[idx];
            let within = at - c.device_base;
            let server_at = c.server_offset + within;
            let part_end = end.min(c.device_base + c.len);
            let part_len = part_end - at;
            match parts.last_mut() {
                Some((srv, soff, _, plen)) if *srv == c.server && *soff + *plen == server_at => {
                    *plen += part_len;
                }
                _ => parts.push((c.server, server_at, at - offset, part_len)),
            }
            at = part_end;
            idx += 1;
        }
        parts
    }

    /// Does `[offset, offset+len)` touch a chunk that is mid-migration?
    fn touches_migrating(&self, offset: u64, len: u64) -> bool {
        if self.inner.migrating.borrow().is_empty() {
            return false;
        }
        let map = self.inner.chunk_map.borrow();
        let migrating = self.inner.migrating.borrow();
        let mut idx = map.partition_point(|c| c.device_base + c.len <= offset);
        let end = offset + len;
        while idx < map.len() && map[idx].device_base < end {
            if migrating.contains(&idx) {
                return true;
            }
            idx += 1;
        }
        false
    }

    /// Round-robin striping: stripe `k` lives on server `k % n` at
    /// within-server offset `(k / n) * stripe + intra`.
    fn split_striped(&self, offset: u64, len: u64, stripe: u64) -> Vec<(usize, u64, u64, u64)> {
        assert!(
            stripe >= 4096 && stripe.is_multiple_of(4096),
            "stripe must be page-multiple"
        );
        let n = self.inner.conns.borrow().len() as u64;
        let mut parts = Vec::new();
        let mut at = offset;
        let end = offset + len;
        while at < end {
            let k = at / stripe;
            let server = (k % n) as usize;
            let intra = at % stripe;
            let server_offset = (k / n) * stripe + intra;
            let part_end = end.min((k + 1) * stripe);
            parts.push((server, server_offset, at - offset, part_end - at));
            at = part_end;
        }
        parts
    }

    fn stage_part(&self, phys: Phys) {
        let inner = &self.inner;
        let Staging::Pool(pool_buf) = phys.staging else {
            unreachable!("stage_part is the pool path");
        };
        match phys.op {
            PageOp::Write => {
                // Copy the page data into the registered pool (the paper's
                // copy-instead-of-register decision), then send. A merged
                // request packs its segments back-to-back so the server's
                // single RDMA pull sees one contiguous span.
                {
                    let mut data = inner.gather_scratch.borrow_mut();
                    let mut at = pool_buf.offset as usize;
                    for seg in phys.segs.as_slice() {
                        {
                            let parent = seg.parent.req.borrow();
                            // simlint: allow(I001): the Parent holds its request until the last part finishes; this part has not finished
                            parent.as_ref().expect("parent alive").gather_range_into(
                                seg.parent_off,
                                seg.len,
                                &mut data,
                            );
                        }
                        inner.pool_mr.write(at, &data);
                        at += seg.len as usize;
                    }
                }
                let copy = inner.ibnode.memory_model().memcpy_time(phys.len);
                let (_, t_copy) = inner.ibnode.node().cpu().reserve(inner.engine.now(), copy);
                if inner.engine.trace_enabled() {
                    inner.engine.tracer().span(
                        "hpbd",
                        "stage_copy",
                        inner.engine.now().as_nanos(),
                        t_copy.as_nanos(),
                        &[("req", phys.req_id), ("bytes", phys.len)],
                    );
                }
                let this = self.clone();
                inner
                    .engine
                    .schedule_at(t_copy, move || this.enqueue_send(phys));
            }
            PageOp::Read => self.enqueue_send(phys),
        }
    }

    /// Register-on-the-fly path (ablation): the page buffers become an
    /// ephemeral MR — no staging copy, but the registration cost sits on
    /// the critical path of every request, which is exactly what Figure 3
    /// says loses for swap-sized transfers.
    fn stage_registered(&self, phys: Phys) {
        let inner = &self.inner;
        let Staging::Ephemeral(mr) = &phys.staging else {
            unreachable!("stage_registered is the on-the-fly path");
        };
        if phys.op == PageOp::Write {
            // Zero-copy: the MR *is* the page memory (we mirror the bytes
            // into the simulated region without a timing charge).
            let mut data = inner.gather_scratch.borrow_mut();
            let mut at = 0usize;
            for seg in phys.segs.as_slice() {
                {
                    let parent = seg.parent.req.borrow();
                    // simlint: allow(I001): the Parent holds its request until the last part finishes; this part has not finished
                    parent.as_ref().expect("parent alive").gather_range_into(
                        seg.parent_off,
                        seg.len,
                        &mut data,
                    );
                }
                mr.write(at, &data);
                at += seg.len as usize;
            }
        }
        let reg = inner
            .ibnode
            .memory_model()
            .calibration()
            .registration_time(phys.len);
        let (_, t_reg) = inner.ibnode.node().cpu().reserve(inner.engine.now(), reg);
        let this = self.clone();
        inner
            .engine
            .schedule_at(t_reg, move || this.enqueue_send(phys));
    }

    fn enqueue_send(&self, mut phys: Phys) {
        // A server known to be dead gets no traffic: re-target the buddy's
        // replica region up front (requires mirroring).
        if self.inner.conns.borrow()[phys.server_idx].dead.get() {
            if phys.is_mirror {
                self.drop_mirror(phys);
                return;
            }
            match self.failover_target(&phys) {
                Some((buddy, offset)) => {
                    self.inner.stats.borrow_mut().failovers += 1;
                    self.inner.engine.metrics().inc("hpbd.failovers");
                    if self.inner.engine.trace_enabled() {
                        self.inner.engine.tracer().instant(
                            "hpbd",
                            "failover",
                            self.inner.engine.now().as_nanos(),
                            &[("req", phys.req_id), ("buddy", buddy as u64)],
                        );
                    }
                    // A pre-post re-route (the part never reached the dead
                    // server) counts as a failover but not a doomed attempt:
                    // its wait so far stays attributed to Queue.
                    for seg in phys.segs.as_slice() {
                        if let Some(ctx) = &seg.parent.ctx {
                            ctx.note_failover();
                        }
                    }
                    self.retarget(&mut phys, buddy, offset);
                }
                None => {
                    self.fail_phys(phys, IoError::Fault(FaultKind::ServerDead));
                    return;
                }
            }
        }
        let conns = self.inner.conns.borrow();
        let conn = &conns[phys.server_idx];
        if conn.credits.get() == 0 {
            // Water-mark reached: queue until credits return (§4.2.4).
            self.inner.stats.borrow_mut().flow_stalls += 1;
            self.inner.ctr_credit_stalls.inc();
            if self.inner.engine.trace_enabled() {
                self.inner.engine.tracer().instant(
                    "hpbd",
                    "credit_stall",
                    self.inner.engine.now().as_nanos(),
                    &[
                        ("server", phys.server_idx as u64),
                        ("req", phys.req_id),
                        ("bytes", phys.len),
                    ],
                );
            }
            let mut queued = conn.queued.borrow_mut();
            queued.push_back(phys);
            conn.peak_queued
                .set(conn.peak_queued.get().max(queued.len()));
            return;
        }
        conn.credits.set(conn.credits.get() - 1);
        self.post_request(conn, phys);
    }

    fn post_request(&self, conn: &ServerConn, phys: Phys) {
        let (client_rkey, client_offset) = match &phys.staging {
            Staging::Pool(buf) => (self.inner.pool_mr.rkey(), buf.offset),
            Staging::Ephemeral(mr) => (mr.rkey(), 0),
        };
        let payload = match &phys.segs {
            Segs::One(seg) => PageRequest::new(
                phys.req_id,
                phys.op,
                phys.server_offset,
                phys.len,
                client_rkey,
                client_offset,
                seg.version,
            )
            .encode(),
            Segs::Many(segs) => {
                {
                    let mut stats = self.inner.stats.borrow_mut();
                    stats.merged_requests += 1;
                    stats.merged_segments += segs.len() as u64;
                }
                MergedRequest::new(
                    phys.req_id,
                    phys.op,
                    client_rkey,
                    client_offset,
                    segs.iter()
                        .map(|s| MergedSeg::new(s.server_offset, s.len, s.version))
                        .collect(),
                )
                .encode()
            }
        };
        {
            let mut stats = self.inner.stats.borrow_mut();
            stats.phys_requests += 1;
            stats.messages += 1;
            self.inner.ctr_phys_requests.inc();
            self.inner.ctr_messages.inc();
            if phys.is_mirror {
                stats.mirrored_phys += 1;
            }
        }
        let now_ns = self.inner.engine.now().as_nanos();
        for seg in phys.segs.as_slice() {
            if let Some(ctx) = &seg.parent.ctx {
                ctx.mark(seg.part, phys.trace_attempt, MarkKind::Posted, now_ns);
            }
        }
        self.register_lifecycle(&phys);
        let wr = WorkRequest {
            wr_id: phys.req_id,
            kind: WorkKind::Send { payload },
            // Solicited so the (possibly sleeping) server wakes.
            solicited: true,
        };
        let posted = if self.inner.spool_active.get() {
            // A batch flush is on the stack: spool the WR so the whole
            // flush rings one doorbell per server. Chain-post errors are
            // recovered per-WR when the spool drains.
            self.inner.spool.borrow_mut().push((phys.server_idx, wr));
            Ok(1)
        } else {
            let mut chain = conn.qp.chain();
            chain.push(wr);
            chain.post()
        };
        if posted.is_err() {
            // Send-queue overflow: treat like a lost send. The recovery
            // runs after `phys` lands in `outstanding` below, entering
            // the same timeout/retry path as a wire-level send failure.
            let this = self.clone();
            let req_id = phys.req_id;
            self.inner
                .engine
                .schedule_in(SimDuration::from_nanos(0), move || {
                    this.on_send_failed(req_id);
                });
        }
        if let Some(timeout_ns) = self.inner.config.request_timeout_ns {
            // Exponential backoff: each retry of this request waits twice
            // as long for its answer, capped at 8x the base timeout.
            let scaled = timeout_ns << phys.attempts.min(3);
            let this = self.clone();
            let req_id = phys.req_id;
            let timer = self.inner.engine.schedule_cancellable_in(
                SimDuration::from_nanos(scaled),
                move || {
                    this.on_timeout(req_id);
                },
            );
            phys.timer.set(Some(timer));
        }
        self.inner
            .outstanding
            .borrow_mut()
            .insert(phys.req_id, phys);
    }

    /// Bind a posted message's id to the lifecycle contexts of every part
    /// it carries, so the netmodel wire/server marks fan out to each one.
    fn register_lifecycle(&self, phys: &Phys) {
        let lifecycle = self.inner.engine.lifecycle();
        match &phys.segs {
            Segs::One(seg) => {
                if let Some(ctx) = &seg.parent.ctx {
                    lifecycle.register_phys(phys.req_id, ctx, seg.part, phys.trace_attempt);
                }
            }
            Segs::Many(segs) => lifecycle.register_phys_many(
                phys.req_id,
                segs.iter().filter_map(|s| {
                    s.parent
                        .ctx
                        .as_ref()
                        .map(|ctx| (ctx.clone(), s.part, phys.trace_attempt))
                }),
            ),
        }
    }

    /// The buddy server and replica offset for a physical request, if the
    /// deployment mirrors writes (replicas live in the upper half of the
    /// buddy's store). `None` when there is nowhere to fail over to.
    fn failover_target(&self, phys: &Phys) -> Option<(usize, u64)> {
        if !self.inner.config.mirror_writes || self.server_count() < 2 {
            return None;
        }
        let conns = self.inner.conns.borrow();
        let buddy = (phys.server_idx + 1) % conns.len();
        if conns[buddy].dead.get() {
            return None;
        }
        // `% extent_len` strips a previous failover re-route (replica
        // offsets live past the extent), yielding the primary offset.
        let base = phys.server_offset % conns[buddy].extent_len;
        Some((buddy, conns[buddy].extent_len + base))
    }

    /// Re-target a physical request at its buddy's replica region. Every
    /// carried segment gets the same extent transform as the head offset,
    /// so merged requests land each extent on its own replica slot.
    fn retarget(&self, phys: &mut Phys, buddy: usize, offset: u64) {
        let extent_len = self.inner.conns.borrow()[buddy].extent_len;
        phys.server_idx = buddy;
        phys.server_offset = offset;
        for seg in phys.segs.as_mut_slice() {
            seg.server_offset = extent_len + (seg.server_offset % extent_len);
        }
    }

    /// A request send errored in the fabric (injected link fault, or RNR
    /// against a crashed server that stopped consuming): the server never
    /// saw it. Recover through the timeout path right away instead of
    /// waiting out the timer.
    fn on_send_failed(&self, req_id: u64) {
        if self.inner.outstanding.borrow().contains_key(&req_id) {
            self.on_timeout(req_id);
        }
    }

    /// A request timed out (or its send failed): retry with backoff while
    /// attempts remain, else presume the server dead and re-route to the
    /// replica or fail the I/O.
    fn on_timeout(&self, req_id: u64) {
        let Some(mut phys) = self.inner.outstanding.borrow_mut().remove(&req_id) else {
            return; // answered in time
        };
        if let Some(timer) = phys.timer.take() {
            // Still armed when we got here via a send failure.
            self.inner.engine.cancel(timer);
        }
        self.inner.stats.borrow_mut().timeouts += 1;
        self.inner.engine.metrics().inc("hpbd.timeouts");
        if self.inner.engine.trace_enabled() {
            self.inner.engine.tracer().instant(
                "hpbd",
                "timeout",
                self.inner.engine.now().as_nanos(),
                &[("req", req_id), ("server", phys.server_idx as u64)],
            );
        }
        if phys.has_ctx() {
            // Dooms the attempt: the fold relabels its whole lifetime (and
            // the gap until the next attempt is queued) to RetryOverhead.
            // A merged message times out as a unit, so every carried part
            // is doomed together.
            let now_ns = self.inner.engine.now().as_nanos();
            for seg in phys.segs.as_slice() {
                if let Some(ctx) = &seg.parent.ctx {
                    ctx.mark(seg.part, phys.trace_attempt, MarkKind::TimedOut, now_ns);
                }
            }
            self.inner.engine.lifecycle().unregister_phys(req_id);
        }
        {
            // The credit consumed by the lost request never returns via a
            // reply; restore it so accounting stays consistent.
            let conns = self.inner.conns.borrow();
            let conn = &conns[phys.server_idx];
            conn.credits.set(conn.credits.get() + 1);
        }
        if phys.attempts < self.inner.config.max_retries {
            // Transient-fault tolerance: give the same server another
            // chance (with a backed-off timeout) before declaring it dead.
            phys.attempts += 1;
            phys.trace_attempt += 1;
            self.inner.stats.borrow_mut().retries += 1;
            self.inner.engine.metrics().inc("hpbd.retries");
            if self.inner.engine.trace_enabled() {
                self.inner.engine.tracer().instant(
                    "hpbd",
                    "retry",
                    self.inner.engine.now().as_nanos(),
                    &[("req", req_id), ("attempt", phys.attempts as u64)],
                );
            }
            let now_ns = self.inner.engine.now().as_nanos();
            for seg in phys.segs.as_slice() {
                if let Some(ctx) = &seg.parent.ctx {
                    ctx.note_retry();
                    ctx.mark(seg.part, phys.trace_attempt, MarkKind::Queued, now_ns);
                }
            }
            self.enqueue_send(phys);
            return;
        }
        let stranded: Vec<Phys> = {
            let conns = self.inner.conns.borrow();
            let conn = &conns[phys.server_idx];
            conn.dead.set(true);
            // Requests still queued for the dead server will never get
            // credits back: pull them out for re-routing.
            let stranded: Vec<Phys> = conn.queued.borrow_mut().drain(..).collect();
            stranded
        };
        for queued in stranded {
            self.enqueue_send(queued);
        }
        if phys.is_mirror {
            self.drop_mirror(phys);
            return;
        }
        match self.failover_target(&phys) {
            Some((buddy, offset)) => {
                self.inner.stats.borrow_mut().failovers += 1;
                self.inner.engine.metrics().inc("hpbd.failovers");
                if self.inner.engine.trace_enabled() {
                    self.inner.engine.tracer().instant(
                        "hpbd",
                        "failover",
                        self.inner.engine.now().as_nanos(),
                        &[("req", phys.req_id), ("buddy", buddy as u64)],
                    );
                }
                let mut reissued = Phys {
                    trace_attempt: phys.trace_attempt + 1,
                    ..phys
                };
                self.retarget(&mut reissued, buddy, offset);
                let now_ns = self.inner.engine.now().as_nanos();
                for seg in reissued.segs.as_slice() {
                    if let Some(ctx) = &seg.parent.ctx {
                        ctx.note_failover();
                        ctx.mark(seg.part, reissued.trace_attempt, MarkKind::Queued, now_ns);
                    }
                }
                self.enqueue_send(reissued);
            }
            None => self.fail_phys(phys, IoError::Fault(FaultKind::Timeout)),
        }
    }

    /// A mirror replica has nowhere safe to go: its home server is dead,
    /// and the buddy's replica region is a *different* extent's replica
    /// namespace — re-routing there would alias two device pages onto one
    /// slot and corrupt whichever loses the race. Drop the copy instead:
    /// the write keeps its primary, and the device runs with degraded
    /// redundancy until the server returns.
    fn drop_mirror(&self, phys: Phys) {
        debug_assert!(phys.is_mirror);
        self.inner.stats.borrow_mut().mirror_drops += 1;
        self.inner.engine.metrics().inc("hpbd.mirror_drops");
        if self.inner.engine.trace_enabled() {
            self.inner.engine.tracer().instant(
                "hpbd",
                "mirror_dropped",
                self.inner.engine.now().as_nanos(),
                &[("req", phys.req_id), ("server", phys.server_idx as u64)],
            );
        }
        self.release_staging(&phys);
        self.finish_parts_at(&phys, self.inner.engine.now());
    }

    /// Complete a physical request as failed: every carried part's parent
    /// sees the error.
    fn fail_phys(&self, phys: Phys, error: IoError) {
        for seg in phys.segs.as_slice() {
            seg.parent.error.set(Some(error));
        }
        self.release_staging(&phys);
        if phys.has_ctx() {
            self.inner.engine.lifecycle().unregister_phys(phys.req_id);
        }
        self.finish_parts_at(&phys, self.inner.engine.now());
    }

    /// Schedule the parent completion of every carried part at `at`,
    /// appending the lifecycle `Done` marks at that instant (inside the
    /// event, so the context's mark log stays in execution order).
    fn finish_parts_at(&self, phys: &Phys, at: SimTime) {
        let engine = self.inner.engine.clone();
        let attempt = phys.trace_attempt;
        match &phys.segs {
            Segs::One(seg) => {
                let parent = seg.parent.clone();
                let part = seg.part;
                self.inner.engine.schedule_at(at, move || {
                    if let Some(ctx) = &parent.ctx {
                        ctx.mark(part, attempt, MarkKind::Done, engine.now().as_nanos());
                    }
                    parent.finish_part(&engine);
                });
            }
            Segs::Many(segs) => {
                let parts: Vec<(Rc<Parent>, u16)> =
                    segs.iter().map(|s| (s.parent.clone(), s.part)).collect();
                self.inner.engine.schedule_at(at, move || {
                    let now_ns = engine.now().as_nanos();
                    for (parent, part) in &parts {
                        if let Some(ctx) = &parent.ctx {
                            ctx.mark(*part, attempt, MarkKind::Done, now_ns);
                        }
                        parent.finish_part(&engine);
                    }
                });
            }
        }
    }

    // -- receiver path --------------------------------------------------------

    fn install_receiver(&self) {
        let this = self.clone();
        self.inner
            .recv_cq
            .set_event_handler(move || this.on_replies());
        self.inner.recv_cq.req_notify(true);

        // The send CQ is normally drained opportunistically from the reply
        // burst. Arm it solicited-only so ERROR completions — which always
        // qualify regardless of the solicited flag — wake the driver at
        // once; send successes are unsolicited and never trigger it, so a
        // healthy run schedules no extra events through this path.
        let this = self.clone();
        self.inner
            .send_cq
            .set_event_handler(move || this.on_send_events());
        self.inner.send_cq.req_notify(true);
    }

    /// Send-CQ event: only fires for error completions (see
    /// `install_receiver`); route them into the recovery path and re-arm.
    fn on_send_events(&self) {
        while let Some(c) = self.inner.send_cq.poll() {
            match c.status {
                WcStatus::Success => {}
                WcStatus::RetryExceeded | WcStatus::RnrRetryExceeded => {
                    self.on_send_failed(c.wr_id);
                }
                other => panic!("request send failed: {other:?}"),
            }
        }
        self.inner.send_cq.req_notify(true);
    }

    /// The receiver thread body: drain all available replies in one burst,
    /// then re-arm and go back to sleep (paper §4.2.3).
    fn on_replies(&self) {
        let inner = &self.inner;
        inner.stats.borrow_mut().receiver_wakeups += 1;
        inner.ctr_receiver_wakeups.inc();
        while let Some(completion) = inner.recv_cq.poll() {
            assert_eq!(completion.opcode, Opcode::Recv);
            assert_eq!(completion.status, WcStatus::Success, "reply recv failed");
            let Some(conn_idx) = inner.qp_to_conn.borrow().get(&completion.qp_num).copied() else {
                // A reply from a QP no connection claims (e.g. torn down
                // by fault injection): count it and drop.
                inner.stats.borrow_mut().bad_messages += 1;
                continue;
            };
            self.handle_reply(conn_idx, completion.wr_id);
        }
        // Drain send-side completions too: successes carry no actions, but
        // a failed request send must enter the recovery path (the server
        // never saw the message, so no reply will ever come).
        while let Some(c) = inner.send_cq.poll() {
            match c.status {
                WcStatus::Success => {}
                WcStatus::RetryExceeded | WcStatus::RnrRetryExceeded => {
                    self.on_send_failed(c.wr_id);
                }
                other => panic!("request send failed: {other:?}"),
            }
        }
        inner.recv_cq.req_notify(true);
    }

    fn handle_reply(&self, conn_idx: usize, buf_idx: u64) {
        let inner = &self.inner;
        let wire = REPLY_WIRE_SIZE as u64 + 4;
        let decoded = {
            let conns = inner.conns.borrow();
            let conn = &conns[conn_idx];
            let mut raw = inner.wire_scratch.borrow_mut();
            raw.clear();
            raw.resize(wire as usize, 0);
            conn.recv_region.read((buf_idx * wire) as usize, &mut raw);
            let decoded = ServerMessage::decode_slice(&raw);
            // Re-post the consumed receive buffer.
            conn.qp
                .post_recv(buf_idx, conn.recv_region.slice(buf_idx * wire, wire))
                // simlint: allow(I001): re-posting the buffer just consumed cannot overflow the fixed-size receive queue
                .expect("re-posting reply receive");
            decoded
        };
        let message = match decoded {
            Ok(message) => message,
            Err(_) => {
                // Signature validation failed (paper §4.1): drop the
                // corrupt message; the requester's timeout recovers.
                inner.stats.borrow_mut().bad_messages += 1;
                return;
            }
        };
        {
            let mut stats = inner.stats.borrow_mut();
            stats.messages += 1;
            inner.ctr_messages.inc();
        }
        let reply = match message {
            ServerMessage::Reply(reply) => reply,
            ServerMessage::Revoke(notice) => {
                self.on_revoke(conn_idx, notice);
                return;
            }
        };
        let phys = {
            let mut outstanding = inner.outstanding.borrow_mut();
            // A reply may arrive after its request timed out (and was
            // re-routed or failed), or from a server the request no longer
            // targets after a failover reissue. Either way the timeout
            // path already restored the credit; drop the stale reply.
            match outstanding.remove(&reply.req_id()) {
                Some(p) if p.server_idx == conn_idx => p,
                Some(p) => {
                    // Stale reply from a pre-failover server: the live
                    // request still awaits its buddy's answer.
                    outstanding.insert(reply.req_id(), p);
                    return;
                }
                None => return,
            }
        };
        if let Some(timer) = phys.timer.take() {
            inner.engine.cancel(timer);
        }
        // Server epochs (DESIGN.md §13): a reply stamped with a generation
        // other than the one learned at connect time means the server
        // restarted — and lost every page — within this request's window.
        // Whatever this reply claims, the store behind it is empty. Adopt
        // the new generation (so detection fires once, not per reply) and
        // force the request down the timeout path with its retry budget
        // exhausted: the server is dead-marked and the mirror/buddy serves
        // the data, exactly as if the restart had been noticed by a timer.
        let gen_mismatch = {
            let conns = inner.conns.borrow();
            let conn = &conns[conn_idx];
            let mismatch = reply.generation() != conn.generation.get();
            if mismatch {
                conn.generation.set(reply.generation());
            }
            mismatch
        };
        if gen_mismatch {
            inner.stats.borrow_mut().epoch_wipes += 1;
            inner.engine.metrics().inc("hpbd.epoch_wipes");
            if inner.engine.trace_enabled() {
                inner.engine.tracer().instant(
                    "hpbd",
                    "epoch_wipe",
                    inner.engine.now().as_nanos(),
                    &[("req", reply.req_id()), ("server", conn_idx as u64)],
                );
            }
            let mut phys = phys;
            phys.attempts = inner.config.max_retries;
            let req_id = phys.req_id;
            // Every other in-flight request to this conn is equally doomed:
            // now that the expected generation is updated, their replies
            // would pass the check and a read could hand back stale-empty
            // pages. Retire them all through the same path, in req-id
            // order (the map is a BTreeMap, so this is deterministic).
            let doomed: Vec<u64> = {
                let mut outstanding = inner.outstanding.borrow_mut();
                outstanding.insert(req_id, phys);
                outstanding
                    .iter_mut()
                    .filter(|(_, p)| p.server_idx == conn_idx)
                    .map(|(id, p)| {
                        p.attempts = inner.config.max_retries;
                        *id
                    })
                    .collect()
            };
            for id in doomed {
                self.on_timeout(id);
            }
            return;
        }
        inner.stats.borrow_mut().replies += 1;
        if phys.has_ctx() {
            let now_ns = inner.engine.now().as_nanos();
            for seg in phys.segs.as_slice() {
                if let Some(ctx) = &seg.parent.ctx {
                    ctx.mark(
                        seg.part,
                        phys.trace_attempt,
                        MarkKind::ReplyReceived,
                        now_ns,
                    );
                }
            }
            inner.engine.lifecycle().unregister_phys(phys.req_id);
        }
        // Receiver-thread CPU cost per reply.
        let proc = SimDuration::from_nanos(inner.config.reply_proc_ns);
        let (_, t_proc) = inner.ibnode.node().cpu().reserve(inner.engine.now(), proc);

        // Credit returns; queued requests for this server may now go.
        {
            let conns = inner.conns.borrow();
            let conn = &conns[conn_idx];
            conn.credits.set(conn.credits.get() + 1);
            let next = conn.queued.borrow_mut().pop_front();
            if let Some(next) = next {
                conn.credits.set(conn.credits.get() - 1);
                self.post_request(conn, next);
            }
        }

        if reply.status() == ReplyStatus::StaleWrite {
            // The server fenced this write: a newer version already covers
            // every page it touched. From the block layer's point of view
            // that is success — the superseding write is the state the
            // device must converge to, and applying this one could only
            // have undone it. Typical sources: a timed-out write whose
            // original delivery landed late, or a failover reissue racing
            // its own mirror copy.
            debug_assert_eq!(phys.op, PageOp::Write);
            debug_assert_eq!(reply.version(), phys.reply_version());
            inner.stats.borrow_mut().stale_drops += 1;
            inner.engine.metrics().inc("hpbd.stale_drops");
            if inner.engine.trace_enabled() {
                inner.engine.tracer().instant(
                    "hpbd",
                    "stale_write_dropped",
                    inner.engine.now().as_nanos(),
                    &[("req", phys.req_id), ("version", phys.reply_version())],
                );
            }
            self.release_staging(&phys);
            self.finish_parts_at(&phys, t_proc);
            return;
        }

        if reply.status() != ReplyStatus::Ok {
            let error = match reply.status() {
                // The server's RDMA to/from our pool failed on the wire.
                ReplyStatus::TransferError => IoError::Fault(FaultKind::LinkDown),
                _ => IoError::DeviceError("hpbd server error"),
            };
            for seg in phys.segs.as_slice() {
                seg.parent.error.set(Some(error));
            }
            self.release_staging(&phys);
            self.finish_parts_at(&phys, t_proc);
            return;
        }

        match phys.op {
            PageOp::Write => {
                debug_assert_eq!(reply.version(), phys.reply_version());
                inner.stats.borrow_mut().bytes_out += phys.len;
                self.release_staging(&phys);
                self.finish_parts_at(&phys, t_proc);
            }
            PageOp::Read => {
                // Swap-in data was RDMA-WRITTEN into the staging buffer;
                // copy it out to the page frames (no copy in the
                // register-on-the-fly mode — the MR is the page memory).
                inner.stats.borrow_mut().bytes_in += phys.len;
                let (data, t_data) = match &phys.staging {
                    Staging::Pool(buf) => {
                        let mut data = self.take_data_buf(phys.len as usize);
                        inner.pool_mr.read(buf.offset as usize, &mut data);
                        let copy = inner.ibnode.memory_model().memcpy_time(phys.len);
                        let (_, t_copy) = inner.ibnode.node().cpu().reserve(t_proc, copy);
                        if inner.engine.trace_enabled() {
                            inner.engine.tracer().span(
                                "hpbd",
                                "unstage_copy",
                                t_proc.as_nanos(),
                                t_copy.as_nanos(),
                                &[("req", phys.req_id), ("bytes", phys.len)],
                            );
                        }
                        (data, t_copy)
                    }
                    Staging::Ephemeral(mr) => {
                        let mut data = self.take_data_buf(phys.len as usize);
                        mr.read(0, &mut data);
                        (data, t_proc)
                    }
                };
                let this = self.clone();
                inner.engine.schedule_at(t_data, move || {
                    // Scatter each carried part out of the contiguous span
                    // at its running offset, then complete them all.
                    let mut at = 0usize;
                    for seg in phys.segs.as_slice() {
                        let chunk = &data[at..at + seg.len as usize];
                        {
                            let parent = seg.parent.req.borrow();
                            parent
                                .as_ref()
                                // simlint: allow(I001): the Parent holds its request until the last part finishes; this part has not finished
                                .expect("parent alive")
                                .scatter_range(seg.parent_off, chunk);
                        }
                        at += seg.len as usize;
                    }
                    this.recycle_data_buf(data);
                    this.release_staging(&phys);
                    let now_ns = this.inner.engine.now().as_nanos();
                    for seg in phys.segs.as_slice() {
                        if let Some(ctx) = &seg.parent.ctx {
                            ctx.mark(seg.part, phys.trace_attempt, MarkKind::Done, now_ns);
                        }
                        seg.parent.finish_part(&this.inner.engine);
                    }
                });
            }
        }
    }

    /// Pop a recycled swap-in data buffer (or grow a fresh one), sized and
    /// zeroed to `len`.
    fn take_data_buf(&self, len: usize) -> Vec<u8> {
        let mut buf = self.inner.data_pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Return a swap-in data buffer to the freelist (bounded so an I/O
    /// burst cannot pin memory forever).
    fn recycle_data_buf(&self, buf: Vec<u8>) {
        let mut pool = self.inner.data_pool.borrow_mut();
        if pool.len() < 64 {
            pool.push(buf);
        }
    }

    /// Return staging resources: pool spans back to the allocator (waking
    /// its wait queue), ephemeral MRs deregistered with the cost charged.
    fn release_staging(&self, phys: &Phys) {
        match &phys.staging {
            Staging::Pool(buf) => self.inner.pool.free(*buf),
            Staging::Ephemeral(mr) => {
                let dereg = self
                    .inner
                    .ibnode
                    .memory_model()
                    .calibration()
                    .deregistration_time(phys.len);
                self.inner
                    .ibnode
                    .node()
                    .cpu()
                    .reserve(self.inner.engine.now(), dereg);
                self.inner.ibnode.hca().deregister(mr);
            }
        }
    }

    // -- hot-path batching (RDMAbox-style request merging) --------------------

    fn alloc_req_id(&self) -> u64 {
        let id = self.inner.next_req_id.get();
        self.inner.next_req_id.set(id + 1);
        id
    }

    /// Park a part in its target server's merge accumulator and arm the
    /// window flush. Window 0 flushes at the same virtual instant, after
    /// every already-queued event — so a same-tick burst coalesces without
    /// delaying an isolated demand fault.
    fn batch_part(&self, server_idx: usize, part: PendingPart) {
        let inner = &self.inner;
        let batch = inner.batch.borrow();
        let state = &batch[server_idx];
        state.pending.borrow_mut().push(part);
        if !state.armed.get() {
            state.armed.set(true);
            let this = self.clone();
            let window = SimDuration::from_nanos(inner.config.merge_window_ns);
            inner
                .engine
                .schedule_in(window, move || this.flush_batch(server_idx));
        }
    }

    /// Close a server's merge window: sort the parked parts, greedily merge
    /// non-overlapping extents, and issue each group as one physical
    /// request (scatter-gather: each segment keeps its own store offset). The
    /// whole flush posts through the doorbell spool, so every request that
    /// reaches the wire synchronously (reads with pool space) rides one
    /// chained doorbell per server.
    fn flush_batch(&self, server_idx: usize) {
        let inner = &self.inner;
        let mut parts = {
            let batch = inner.batch.borrow();
            let state = &batch[server_idx];
            state.armed.set(false);
            let taken = std::mem::take(&mut *state.pending.borrow_mut());
            taken
        };
        if parts.is_empty() {
            return;
        }
        // Stable sort: equal keys keep submission order, so duplicate
        // same-page writes stay in fence order (they overlap and therefore
        // never share a group).
        parts.sort_by_key(|p| (p.op == PageOp::Write, p.is_mirror, p.seg.server_offset));
        // A merged span must fit the client pool and the server staging
        // pool with room to spare, or merging would manufacture pool
        // stalls that separate requests never hit.
        let cap = (inner.config.server_staging_size.min(inner.config.pool_size) / 2).max(4096);
        let max_segs = inner.config.max_merge_segments.clamp(1, MAX_MERGE_SEGMENTS);
        let keys: Vec<(bool, bool, u64, u64)> = parts
            .iter()
            .map(|p| {
                (
                    p.op == PageOp::Write,
                    p.is_mirror,
                    p.seg.server_offset,
                    p.seg.len,
                )
            })
            .collect();
        let ends = plan_merge(&keys, cap, max_segs);
        let spooling = !inner.spool_active.get();
        if spooling {
            inner.spool_active.set(true);
        }
        let mut rest = parts;
        let mut prev = 0;
        for end in ends {
            let tail = rest.split_off(end - prev);
            let group = std::mem::replace(&mut rest, tail);
            prev = end;
            self.issue_group(server_idx, group);
        }
        if spooling {
            inner.spool_active.set(false);
            self.drain_spool();
        }
    }

    /// Issue one merged group (possibly a group of one) as a single
    /// physical request through the normal staging path.
    fn issue_group(&self, server_idx: usize, group: Vec<PendingPart>) {
        let inner = &self.inner;
        debug_assert!(!group.is_empty());
        let op = group[0].op;
        let is_mirror = group[0].is_mirror;
        let server_offset = group[0].seg.server_offset;
        let total: u64 = group.iter().map(|p| p.seg.len).sum();
        let req_id = self.alloc_req_id();
        let segs = if group.len() == 1 {
            let mut it = group.into_iter();
            // simlint: allow(I001): the branch condition just proved len == 1
            Segs::One(it.next().unwrap().seg)
        } else {
            Segs::Many(group.into_iter().map(|p| p.seg).collect())
        };
        let had_space = inner.pool.free_bytes() >= total && inner.pool.queued_waiters() == 0;
        if !had_space {
            inner.stats.borrow_mut().pool_waits += 1;
            inner.ctr_pool_waits.inc();
            if inner.engine.trace_enabled() {
                inner.engine.tracer().instant(
                    "hpbd",
                    "pool_wait",
                    inner.engine.now().as_nanos(),
                    &[("req", req_id), ("bytes", total)],
                );
            }
        }
        let this = self.clone();
        inner.pool.alloc(total, move |pool_buf| {
            this.stage_part(Phys {
                req_id,
                op,
                server_idx,
                server_offset,
                len: total,
                staging: Staging::Pool(pool_buf),
                is_mirror,
                timer: Cell::new(None),
                attempts: 0,
                trace_attempt: 0,
                segs,
            });
        });
    }

    /// Post the spooled WRs, one chained doorbell per run of same-server
    /// entries. A rejected chain is all-or-nothing: every WR in it already
    /// sits in `outstanding` with its timer armed, so each one routes
    /// through the ordinary send-failure recovery.
    fn drain_spool(&self) {
        let entries: Vec<(usize, WorkRequest)> = {
            let mut spool = self.inner.spool.borrow_mut();
            if spool.is_empty() {
                return;
            }
            spool.drain(..).collect()
        };
        let conns = self.inner.conns.borrow();
        let mut iter = entries.into_iter().peekable();
        while let Some((conn_idx, wr)) = iter.next() {
            let mut wr_ids = vec![wr.wr_id];
            let conn = &conns[conn_idx];
            let mut chain = conn.qp.chain();
            chain.push(wr);
            while let Some((next_idx, _)) = iter.peek() {
                if *next_idx != conn_idx {
                    break;
                }
                // simlint: allow(I001): peek() just returned Some for this entry
                let (_, wr) = iter.next().unwrap();
                wr_ids.push(wr.wr_id);
                chain.push(wr);
            }
            if chain.post().is_err() {
                let this = self.clone();
                self.inner
                    .engine
                    .schedule_in(SimDuration::from_nanos(0), move || {
                        for req_id in wr_ids {
                            this.on_send_failed(req_id);
                        }
                    });
            }
        }
    }
}

/// Greedy merge planner over a batch-sorted part list. `keys` holds
/// `(is_write, is_mirror, server_offset, len)` per part, already sorted by
/// exactly that tuple; returns the exclusive end index of each merged
/// group. Parts merge while they share the operation and mirror-ness, do
/// not overlap in server space (gaps are fine — the wire format carries a
/// store offset per segment), and keep the group within `cap_bytes` and
/// `max_segs`. Overlapping parts never merge: two versions of the same
/// page must stay separate messages so the server's write fence sees them
/// in order. The first part of a group is always accepted, so an oversized
/// single part still travels (unmerged).
fn plan_merge(keys: &[(bool, bool, u64, u64)], cap_bytes: u64, max_segs: usize) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let (op, mirror, _, len0) = keys[i];
        let mut total = len0;
        let mut j = i + 1;
        while j < keys.len() && j - i < max_segs {
            let (op2, mirror2, off2, len2) = keys[j];
            let (_, _, prev_off, prev_len) = keys[j - 1];
            if op2 != op
                || mirror2 != mirror
                || off2 < prev_off + prev_len
                || total + len2 > cap_bytes
            {
                break;
            }
            total += len2;
            j += 1;
        }
        ends.push(j);
        i = j;
    }
    ends
}

impl HpbdClient {
    // -- dynamic memory (the paper's future work) -----------------------------

    /// A server is reclaiming memory: migrate every chunk mapped into the
    /// revoked range to spare capacity elsewhere, deferring application
    /// I/O to those chunks until their data has moved.
    fn on_revoke(&self, server_idx: usize, notice: RevokeNotice) {
        self.inner.stats.borrow_mut().revocations += 1;
        self.inner.engine.metrics().inc("hpbd.revocations");
        if self.inner.engine.trace_enabled() {
            self.inner.engine.tracer().instant(
                "hpbd",
                "revoke",
                self.inner.engine.now().as_nanos(),
                &[
                    ("server", server_idx as u64),
                    ("offset", notice.offset()),
                    ("len", notice.len()),
                ],
            );
        }
        let victims: Vec<usize> = {
            let map = self.inner.chunk_map.borrow();
            map.iter()
                .enumerate()
                .filter(|(_, c)| {
                    c.server == server_idx
                        && c.server_offset < notice.offset() + notice.len()
                        && notice.offset() < c.server_offset + c.len
                })
                .map(|(i, _)| i)
                .collect()
        };
        for idx in victims {
            self.inner.migrating.borrow_mut().insert(idx);
            self.migrate_when_quiesced(idx);
        }
    }

    /// Wait for in-flight traffic to the chunk to drain, then migrate.
    fn migrate_when_quiesced(&self, chunk_idx: usize) {
        let (server, lo, hi) = {
            let map = self.inner.chunk_map.borrow();
            let c = map[chunk_idx];
            (c.server, c.server_offset, c.server_offset + c.len)
        };
        let busy = {
            let outstanding = self.inner.outstanding.borrow();
            let conns = self.inner.conns.borrow();
            let queued_busy = conns[server]
                .queued
                .borrow()
                .iter()
                .any(|p| p.server_idx == server && p.touches_store(lo, hi));
            // Parts parked in the merge accumulator are in flight too: they
            // will hit the old location once their window closes.
            let batch_busy = self.inner.batch.borrow()[server]
                .pending
                .borrow()
                .iter()
                .any(|p| p.seg.server_offset < hi && lo < p.seg.server_offset + p.seg.len);
            queued_busy
                || batch_busy
                || outstanding
                    .values()
                    .any(|p| p.server_idx == server && p.touches_store(lo, hi))
        };
        if busy {
            let this = self.clone();
            self.inner
                .engine
                .schedule_in(SimDuration::from_micros(100), move || {
                    this.migrate_when_quiesced(chunk_idx)
                });
            return;
        }
        self.migrate_chunk(chunk_idx);
    }

    /// A migration transfer failed (typically because a server died
    /// mid-move): re-enqueue the whole migration after a short delay. The
    /// chunk stays in `migrating`, so application I/O keeps deferring
    /// instead of racing a half-moved chunk. Bounded: when every attempt
    /// fails there is no recoverable copy of the data anywhere, and
    /// continuing silently would lose pages.
    fn retry_migration(&self, chunk_idx: usize) {
        const MAX_MIGRATION_ATTEMPTS: u32 = 10;
        let attempts = {
            let mut map = self.inner.migration_attempts.borrow_mut();
            let n = map.entry(chunk_idx).or_insert(0);
            *n += 1;
            *n
        };
        assert!(
            attempts <= MAX_MIGRATION_ATTEMPTS,
            "migration of chunk {chunk_idx} failed {attempts} times — no recoverable copy left"
        );
        self.inner.stats.borrow_mut().migration_retries += 1;
        self.inner.engine.metrics().inc("hpbd.migration_retries");
        if self.inner.engine.trace_enabled() {
            self.inner.engine.tracer().instant(
                "hpbd",
                "migration_retry",
                self.inner.engine.now().as_nanos(),
                &[("chunk", chunk_idx as u64), ("attempt", attempts as u64)],
            );
        }
        let this = self.clone();
        self.inner
            .engine
            .schedule_in(SimDuration::from_micros(200), move || {
                this.migrate_when_quiesced(chunk_idx)
            });
    }

    /// Move one chunk: read its data from the old home through the normal
    /// request path, repoint the map at a spare chunk, write the data to
    /// the new home, then release deferred I/O.
    fn migrate_chunk(&self, chunk_idx: usize) {
        let (device_base, len, old_server, old_offset) = {
            let map = self.inner.chunk_map.borrow();
            let c = map[chunk_idx];
            (c.device_base, c.len, c.server, c.server_offset)
        };
        // Pick a spare on any *other* live server (round-robin by fill).
        let target = {
            let conns = self.inner.conns.borrow();
            let mut spares = self.inner.spares.borrow_mut();
            let mut pick = None;
            for s in 0..spares.len() {
                if s == old_server || conns[s].dead.get() {
                    continue;
                }
                if let Some(offset) = spares[s].pop() {
                    pick = Some((s, offset));
                    break;
                }
            }
            pick
        };
        let Some((new_server, new_offset)) = target else {
            panic!(
                "revocation of chunk at device offset {device_base}: no spare                  capacity anywhere — pages would be lost"
            );
        };

        // Read old contents (the map still points at the old home).
        let buf = new_buffer(len as usize);
        let this = self.clone();
        let read_buf = buf.clone();
        self.submit_internal(IoRequest::single(Bio::new(
            IoOp::Read,
            device_base,
            read_buf,
            move |result| {
                if result.is_err() {
                    // The source (and any replica) could not produce the
                    // data right now. Nothing has been repointed yet:
                    // return the spare and re-enqueue the migration.
                    this.inner.spares.borrow_mut()[new_server].push(new_offset);
                    this.retry_migration(chunk_idx);
                    return;
                }
                // Repoint the chunk, then write the data to the new home.
                {
                    let mut map = this.inner.chunk_map.borrow_mut();
                    map[chunk_idx].server = new_server;
                    map[chunk_idx].server_offset = new_offset;
                }
                let this2 = this.clone();
                this.submit_internal(IoRequest::single(Bio::new(
                    IoOp::Write,
                    device_base,
                    buf.clone(),
                    move |result| {
                        if result.is_err() {
                            // The new home failed the write: point the
                            // chunk back at its source (whose data is
                            // still intact — reclaims are advisory until
                            // the move completes), return the spare, and
                            // re-enqueue the migration. The dead-marking
                            // done by the failed write steers the next
                            // attempt to a different target.
                            {
                                let mut map = this2.inner.chunk_map.borrow_mut();
                                map[chunk_idx].server = old_server;
                                map[chunk_idx].server_offset = old_offset;
                            }
                            this2.inner.spares.borrow_mut()[new_server].push(new_offset);
                            this2.retry_migration(chunk_idx);
                            return;
                        }
                        this2
                            .inner
                            .migration_attempts
                            .borrow_mut()
                            .remove(&chunk_idx);
                        this2.inner.migrating.borrow_mut().remove(&chunk_idx);
                        this2.inner.stats.borrow_mut().migrations += 1;
                        this2.inner.engine.metrics().inc("hpbd.migrations");
                        if this2.inner.engine.trace_enabled() {
                            this2.inner.engine.tracer().instant(
                                "hpbd",
                                "migration_done",
                                this2.inner.engine.now().as_nanos(),
                                &[("chunk", chunk_idx as u64), ("server", new_server as u64)],
                            );
                        }
                        this2.release_deferred();
                    },
                )));
            },
        )));
    }

    /// Resubmit deferred requests; those still blocked re-defer.
    fn release_deferred(&self) {
        let held: Vec<IoRequest> = self.inner.deferred.borrow_mut().drain(..).collect();
        for req in held {
            self.submit(req);
        }
    }

    /// Stage and send the physical parts of one block request. `version`
    /// is the write-fencing stamp shared by every part (0 for reads).
    fn issue_parts(
        &self,
        op: PageOp,
        version: u64,
        parts: Vec<(usize, u64, u64, u64)>,
        parent: Rc<Parent>,
    ) {
        let inner = &self.inner;
        // Mirrored writes double the physical parts (one per replica).
        // Replicas live in the upper half of the buddy server's store (the
        // cluster builder doubles server capacity in mirror mode), so they
        // never collide with the buddy's primary extent.
        let mirror = inner.config.mirror_writes && op == PageOp::Write;
        if mirror {
            let extra = parts.len();
            parent.remaining.set(parent.remaining.get() + extra);
            parent.parts.set(parent.parts.get() + extra);
            assert!(
                self.server_count() >= 2,
                "mirrored writes need at least two servers"
            );
            assert!(
                matches!(inner.config.distribution, Distribution::Blocking),
                "mirroring is only defined for the blocking distribution"
            );
        }
        for (server_idx, server_offset, parent_off, len) in parts {
            let primary = (server_idx, false, server_offset);
            let mirror_replica = if mirror {
                let buddy = (server_idx + 1) % self.server_count();
                let buddy_extent = inner.conns.borrow()[buddy].extent_len;
                // Note: both replicas are staged independently; a real
                // implementation would share one staged buffer.
                Some((buddy, true, buddy_extent + server_offset))
            } else {
                None
            };
            for (target, is_mirror, server_offset) in std::iter::once(primary).chain(mirror_replica)
            {
                let parent = parent.clone();
                // Part created: from here until it posts (pool wait, credit
                // stall) its time is Queue.
                let part = match &parent.ctx {
                    Some(ctx) => {
                        let p = ctx.alloc_part();
                        ctx.mark(p, 0, MarkKind::Queued, inner.engine.now().as_nanos());
                        p
                    }
                    None => 0,
                };
                let seg = Segment {
                    parent,
                    parent_off,
                    server_offset,
                    len,
                    version,
                    part,
                };
                match inner.config.staging {
                    // Batching parks the part in the per-server accumulator;
                    // the merge-window flush stages whole (possibly merged)
                    // groups. Only the pool path batches: on-the-fly
                    // registration has no contiguous staging span to merge
                    // into.
                    StagingMode::CopyToPool if inner.config.batching => {
                        self.batch_part(target, PendingPart { op, is_mirror, seg });
                    }
                    StagingMode::CopyToPool => {
                        let req_id = self.alloc_req_id();
                        let this = self.clone();
                        let had_space =
                            inner.pool.free_bytes() >= len && inner.pool.queued_waiters() == 0;
                        if !had_space {
                            inner.stats.borrow_mut().pool_waits += 1;
                            inner.ctr_pool_waits.inc();
                            if inner.engine.trace_enabled() {
                                inner.engine.tracer().instant(
                                    "hpbd",
                                    "pool_wait",
                                    inner.engine.now().as_nanos(),
                                    &[("req", req_id), ("bytes", len)],
                                );
                            }
                        }
                        inner.pool.alloc(len, move |pool_buf| {
                            this.stage_part(Phys {
                                req_id,
                                op,
                                server_idx: target,
                                server_offset,
                                len,
                                staging: Staging::Pool(pool_buf),
                                is_mirror,
                                timer: Cell::new(None),
                                attempts: 0,
                                trace_attempt: 0,
                                segs: Segs::One(seg),
                            });
                        });
                    }
                    StagingMode::RegisterOnFly => {
                        self.stage_registered(Phys {
                            req_id: self.alloc_req_id(),
                            op,
                            server_idx: target,
                            server_offset,
                            len,
                            staging: Staging::Ephemeral(inner.ibnode.hca().register(len as usize)),
                            is_mirror,
                            timer: Cell::new(None),
                            attempts: 0,
                            trace_attempt: 0,
                            segs: Segs::One(seg),
                        });
                    }
                }
            }
        }
    }

    /// Submission path shared by the block-device interface and the
    /// migration engine (which must bypass the migration deferral).
    fn do_submit(&self, req: IoRequest, internal: bool) {
        let inner = &self.inner;
        let engine = inner.engine.clone();
        if inner.shut_down.get() {
            engine.schedule_at(engine.now(), move || {
                req.complete(Err(IoError::Fault(FaultKind::ServerDead)))
            });
            return;
        }
        if req.offset() + req.len() > self.capacity() {
            engine.schedule_at(engine.now(), move || req.complete(Err(IoError::OutOfRange)));
            return;
        }
        if !internal && self.touches_migrating(req.offset(), req.len()) {
            inner.stats.borrow_mut().deferred_requests += 1;
            inner.deferred.borrow_mut().push(req);
            return;
        }
        inner.stats.borrow_mut().requests += 1;
        let op = match req.op() {
            IoOp::Write => PageOp::Write,
            IoOp::Read => PageOp::Read,
        };
        // Stamp every write with a fresh fence version at SUBMISSION time:
        // the block layer serialises same-page writes (a page is rewritten
        // only after its previous write completed), so submission order is
        // the order the fence must enforce.
        let version = match op {
            PageOp::Write => {
                let v = inner.next_version.get();
                inner.next_version.set(v + 1);
                v
            }
            PageOp::Read => 0,
        };
        inner.ctr_requests.inc();
        let parts = self.split(req.offset(), req.len());
        if parts.len() > 1 {
            inner.stats.borrow_mut().split_requests += 1;
            engine.metrics().inc("hpbd.split_requests");
            if engine.trace_enabled() {
                engine.tracer().instant(
                    "hpbd",
                    "request_split",
                    engine.now().as_nanos(),
                    &[("parts", parts.len() as u64), ("bytes", req.len())],
                );
            }
        }
        let ctx = req.lifecycle().cloned();
        let parent = Rc::new(Parent {
            started: engine.now(),
            op,
            len: req.len(),
            parts: Cell::new(parts.len()),
            req: RefCell::new(Some(req)),
            remaining: Cell::new(parts.len()),
            error: Cell::new(None),
            latency_hist: match op {
                PageOp::Read => inner.hist_swap_in.clone(),
                PageOp::Write => inner.hist_swap_out.clone(),
            },
            ctx,
        });
        self.issue_parts(op, version, parts, parent);
    }

    fn submit_internal(&self, req: IoRequest) {
        self.do_submit(req, true);
    }
}

impl BlockDevice for HpbdClient {
    fn capacity(&self) -> u64 {
        self.inner.capacity.get()
    }

    fn name(&self) -> &str {
        &self.inner.name
    }

    fn submit(&self, req: IoRequest) {
        self.do_submit(req, false);
    }

    fn shutdown(&self) {
        self.inner.shut_down.set(true);
    }

    fn health(&self) -> DeviceHealth {
        if self.inner.shut_down.get() {
            return DeviceHealth::Failed;
        }
        let conns = self.inner.conns.borrow();
        let failed = conns.iter().filter(|c| c.dead.get()).count();
        if failed == 0 {
            DeviceHealth::Healthy
        } else if failed == conns.len() {
            DeviceHealth::Failed
        } else {
            DeviceHealth::Degraded {
                failed_servers: failed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::plan_merge;

    const PAGE: u64 = 4096;

    /// Build keys for reads at the given page-granular offsets.
    fn read_pages(pages: &[u64]) -> Vec<(bool, bool, u64, u64)> {
        pages
            .iter()
            .map(|p| (false, false, p * PAGE, PAGE))
            .collect()
    }

    #[test]
    fn adjacent_parts_form_one_group() {
        let keys = read_pages(&[0, 1, 2, 3]);
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![4]);
    }

    #[test]
    fn gaps_merge_within_group() {
        // Scatter-gather wire format: a hole in server space does not
        // split the group — each segment carries its own store offset.
        let keys = read_pages(&[0, 1, 3, 4]);
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![4]);
    }

    #[test]
    fn op_boundary_splits_groups() {
        // Sorted order puts reads (false) before writes (true); the op
        // flip must break the group even though offsets stay adjacent.
        let keys = vec![
            (false, false, 0, PAGE),
            (false, false, PAGE, PAGE),
            (true, false, 2 * PAGE, PAGE),
            (true, false, 3 * PAGE, PAGE),
        ];
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![2, 4]);
    }

    #[test]
    fn mirror_boundary_splits_groups() {
        let keys = vec![(true, false, 0, PAGE), (true, true, PAGE, PAGE)];
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![1, 2]);
    }

    #[test]
    fn max_segments_bounds_group_size() {
        let keys = read_pages(&[0, 1, 2, 3, 4]);
        assert_eq!(plan_merge(&keys, u64::MAX, 2), vec![2, 4, 5]);
    }

    #[test]
    fn byte_cap_bounds_group_size() {
        let keys = read_pages(&[0, 1, 2]);
        // Two pages fit, the third would exceed the cap.
        assert_eq!(plan_merge(&keys, 2 * PAGE, 32), vec![2, 3]);
    }

    #[test]
    fn oversized_first_part_still_travels_alone() {
        // A single part larger than the cap must not be dropped: the cap
        // only bounds *merging*.
        let keys = vec![
            (false, false, 0, 10 * PAGE),
            (false, false, 10 * PAGE, PAGE),
        ];
        assert_eq!(plan_merge(&keys, PAGE, 32), vec![1, 2]);
    }

    #[test]
    fn duplicate_offsets_never_merge() {
        // Two writes to the same page overlap, so they stay separate
        // messages and fence ordering between them survives batching.
        let keys = vec![(true, false, 0, PAGE), (true, false, 0, PAGE)];
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![1, 2]);
    }

    #[test]
    fn overlapping_retry_never_merges() {
        // An overlapping (but not identical) pair — e.g. a wide write and a
        // narrower retry inside it — must also stay separate.
        let keys = vec![(true, false, 0, 2 * PAGE), (true, false, PAGE, PAGE)];
        assert_eq!(plan_merge(&keys, u64::MAX, 32), vec![1, 2]);
    }

    #[test]
    fn groups_tile_the_input() {
        let keys = vec![
            (false, false, 0, PAGE),
            (false, false, PAGE, PAGE),
            (true, false, 5 * PAGE, PAGE),
            (true, false, 20 * PAGE, PAGE),
            (true, true, 21 * PAGE, PAGE),
        ];
        let ends = plan_merge(&keys, u64::MAX, 32);
        assert_eq!(*ends.last().unwrap() as usize, keys.len());
        assert!(ends.windows(2).all(|w| w[0] < w[1]));
    }
}
