//! Cluster wiring: one client, N memory servers.
//!
//! Stands in for HPBD's initialisation phase (paper §5): a socket
//! connection exchanges queue-pair information, after which the client
//! holds an IBA context per minor device — HCA handles, *shared completion
//! queues*, the registered pool, and a QP per server.

use crate::client::HpbdClient;
use crate::config::HpbdConfig;
use crate::server::HpbdServer;
use ibsim::{Fabric, IbNode};
use netmodel::Calibration;
use simcore::Engine;
use std::rc::Rc;

/// A built HPBD deployment.
pub struct HpbdCluster {
    /// The fabric (owns calibration and node creation).
    pub fabric: Fabric,
    /// The client block device.
    pub client: HpbdClient,
    /// The memory servers, in extent order.
    pub servers: Vec<HpbdServer>,
}

impl HpbdCluster {
    /// Build a cluster: a client node plus `n_servers` memory servers each
    /// exporting `per_server_capacity` bytes. The swap area is the
    /// concatenation of the server extents (blocking distribution).
    pub fn build(
        engine: &Engine,
        cal: Rc<Calibration>,
        config: HpbdConfig,
        n_servers: usize,
        per_server_capacity: u64,
    ) -> HpbdCluster {
        assert!(n_servers > 0, "at least one memory server");
        assert!(
            per_server_capacity.is_multiple_of(4096),
            "server capacity must be page-aligned"
        );
        let fabric = Fabric::new(engine.clone(), cal);
        let client_node = fabric.add_node("hpbd-client");
        Self::build_on(&fabric, client_node, config, n_servers, per_server_capacity)
    }

    /// Build on an existing fabric/client node (lets scenarios share the
    /// client node with the VM and applications).
    pub fn build_on(
        fabric: &Fabric,
        client_node: IbNode,
        config: HpbdConfig,
        n_servers: usize,
        per_server_capacity: u64,
    ) -> HpbdCluster {
        let engine = fabric.engine().clone();
        let client = HpbdClient::new(engine, client_node, config.clone());
        let mut servers = Vec::with_capacity(n_servers);
        // In mirror mode each server stores its own extent plus the
        // replicas of its predecessor's extent; spare chunks for dynamic
        // memory live after that.
        let base_store = if config.mirror_writes {
            assert!(n_servers >= 2, "mirrored writes need at least two servers");
            per_server_capacity * 2
        } else {
            per_server_capacity
        };
        let server_store = base_store + config.spare_chunks as u64 * config.chunk_bytes.max(4096);
        for i in 0..n_servers {
            let server = HpbdServer::new(
                fabric,
                &format!("mem-server-{i}"),
                server_store,
                config.clone(),
            );
            // QP exchange: connect with queue depths sized for the credit
            // window (requests, replies, and in-flight RDMA).
            let depth = config.credits * 2 + 8;
            let (c_send, c_recv) = client.cqs();
            let (qp_c, qp_s) = fabric.connect_with_depth(
                client.ibnode(),
                c_send,
                c_recv,
                server.ibnode(),
                server.send_cq(),
                server.recv_cq(),
                depth,
                config.credits + 2,
            );
            client.attach_server(qp_c, per_server_capacity);
            server.attach_connection(qp_s);
            servers.push(server);
        }
        HpbdCluster {
            fabric: fabric.clone(),
            client,
            servers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
    use simcore::Engine;
    use std::cell::Cell;
    use std::rc::Rc;

    fn cluster(n_servers: usize, per_server: u64) -> (Engine, HpbdCluster) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster =
            HpbdCluster::build(&engine, cal, HpbdConfig::default(), n_servers, per_server);
        (engine, cluster)
    }

    fn write_read_roundtrip(engine: &Engine, dev: &HpbdClient, offset: u64, len: usize, fill: u8) {
        let wbuf = new_buffer(len);
        wbuf.borrow_mut().fill(fill);
        let done = Rc::new(Cell::new(false));
        {
            let done = done.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                offset,
                wbuf,
                move |r| {
                    r.unwrap();
                    done.set(true);
                },
            )));
        }
        engine.run_until_idle();
        assert!(done.get(), "write completed");

        let rbuf = new_buffer(len);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            offset,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(
            rbuf.borrow().iter().all(|&b| b == fill),
            "data must round-trip through the remote server"
        );
    }

    #[test]
    fn single_server_roundtrip() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 0xA7);
        let s = cluster.client.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.phys_requests, 2);
        assert_eq!(s.bytes_out, 4096);
        assert_eq!(s.bytes_in, 4096);
        let srv = cluster.servers[0].stats();
        assert_eq!(
            srv.rdma_reads, 1,
            "swap-out uses server-initiated RDMA READ"
        );
        assert_eq!(srv.rdma_writes, 1, "swap-in uses RDMA WRITE");
    }

    #[test]
    fn large_request_roundtrip() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 0, 128 * 1024, 0x3E);
    }

    #[test]
    fn capacity_is_sum_of_extents() {
        let (_, cluster) = cluster(4, 1 << 20);
        assert_eq!(cluster.client.capacity(), 4 << 20);
        assert_eq!(cluster.client.server_count(), 4);
    }

    #[test]
    fn blocking_distribution_routes_by_extent() {
        let (engine, cluster) = cluster(2, 1 << 20);
        // Write into each server's extent; only that server stores bytes.
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 1);
        write_read_roundtrip(&engine, &cluster.client, 1 << 20, 4096, 2);
        assert_eq!(cluster.servers[0].stats().bytes_in, 4096);
        assert_eq!(cluster.servers[1].stats().bytes_in, 4096);
    }

    #[test]
    fn boundary_spanning_request_splits() {
        let (engine, cluster) = cluster(2, 1 << 20);
        // 8K extent-straddling write: 4K to server 0, 4K to server 1.
        write_read_roundtrip(&engine, &cluster.client, (1 << 20) - 4096, 8192, 9);
        let s = cluster.client.stats();
        assert!(s.split_requests >= 1, "boundary request must split");
        assert_eq!(cluster.servers[0].stats().bytes_in, 4096);
        assert_eq!(cluster.servers[1].stats().bytes_in, 4096);
    }

    #[test]
    fn out_of_range_rejected() {
        let (engine, cluster) = cluster(1, 1 << 20);
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                1 << 20,
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(blockdev::IoError::OutOfRange)));
    }

    #[test]
    fn flow_control_queues_beyond_water_mark() {
        let config = HpbdConfig {
            credits: 2,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 1, 8 << 20);
        let done = Rc::new(Cell::new(0));
        // 8 concurrent 4K writes with only 2 credits.
        for i in 0..8u64 {
            let done = done.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                new_buffer(4096),
                move |r| {
                    r.unwrap();
                    done.set(done.get() + 1);
                },
            )));
        }
        engine.run_until_idle();
        assert_eq!(done.get(), 8, "all writes eventually complete");
        let s = cluster.client.stats();
        assert!(s.flow_stalls > 0, "water-mark must have throttled");
    }

    #[test]
    fn pool_exhaustion_queues_requests() {
        let config = HpbdConfig {
            pool_size: 128 * 1024, // one max-size request
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 1, 8 << 20);
        let done = Rc::new(Cell::new(0));
        for i in 0..4u64 {
            let done = done.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 128 * 1024,
                new_buffer(128 * 1024),
                move |r| {
                    r.unwrap();
                    done.set(done.get() + 1);
                },
            )));
        }
        engine.run_until_idle();
        assert_eq!(done.get(), 4);
        assert!(
            cluster.client.stats().pool_waits > 0,
            "pool must have queued"
        );
    }

    #[test]
    fn concurrent_mixed_traffic_integrity() {
        let (engine, cluster) = cluster(2, 4 << 20);
        // Fill 64 pages with distinct patterns, then read back all.
        let n = 64u64;
        for i in 0..n {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill((i % 251) as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let bufs: Vec<_> = (0..n)
            .map(|i| {
                let buf = new_buffer(4096);
                cluster.client.submit(IoRequest::single(Bio::new(
                    IoOp::Read,
                    i * 4096,
                    buf.clone(),
                    |r| r.unwrap(),
                )));
                buf
            })
            .collect();
        engine.run_until_idle();
        for (i, buf) in bufs.iter().enumerate() {
            let expect = (i as u64 % 251) as u8 + 1;
            assert!(
                buf.borrow().iter().all(|&b| b == expect),
                "page {i} corrupted"
            );
        }
    }

    #[test]
    fn server_sleeps_and_wakes() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 1);
        // Let far more than 200us pass with no traffic.
        engine.advance(simcore::SimDuration::from_millis(5));
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 2);
        assert!(
            cluster.servers[0].stats().wakeups >= 1,
            "server should have slept through the idle gap and woken"
        );
    }

    #[test]
    fn striped_distribution_fans_requests_across_servers() {
        use crate::config::Distribution;
        let config = HpbdConfig {
            distribution: Distribution::Striped {
                stripe_bytes: 8 * 4096,
            },
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 4, 2 << 20);
        // One 128K request spans 4 stripes of 32K: all four servers serve.
        write_read_roundtrip(&engine, &cluster.client, 0, 128 * 1024, 0x6B);
        for (i, server) in cluster.servers.iter().enumerate() {
            assert!(
                server.stats().bytes_in > 0,
                "striping should spread the write to server {i}"
            );
        }
        assert!(cluster.client.stats().split_requests >= 1);
    }

    #[test]
    fn striped_data_integrity_over_many_offsets() {
        use crate::config::Distribution;
        let config = HpbdConfig {
            distribution: Distribution::Striped { stripe_bytes: 4096 },
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 3, 2 << 20);
        for i in 0..24u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        for i in 0..24u64 {
            let buf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(
                buf.borrow().iter().all(|&b| b == i as u8 + 1),
                "page {i} corrupted under striping"
            );
        }
    }

    #[test]
    fn register_on_fly_works_but_costs_more() {
        use crate::config::StagingMode;
        let run = |staging: StagingMode| {
            let config = HpbdConfig {
                staging,
                ..HpbdConfig::default()
            };
            let engine = Engine::new();
            let cal = Rc::new(Calibration::cluster_2005());
            let cluster = HpbdCluster::build(&engine, cal, config, 1, 8 << 20);
            let t0 = engine.now();
            // 16 sequential 64K writes.
            for i in 0..16u64 {
                let buf = new_buffer(64 * 1024);
                buf.borrow_mut().fill(3);
                cluster.client.submit(IoRequest::single(Bio::new(
                    IoOp::Write,
                    i * 64 * 1024,
                    buf,
                    |r| r.unwrap(),
                )));
            }
            engine.run_until_idle();
            // Read one back for integrity.
            let buf = new_buffer(64 * 1024);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                0,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(buf.borrow().iter().all(|&b| b == 3));
            (engine.now() - t0).as_nanos()
        };
        let copy = run(StagingMode::CopyToPool);
        let reg = run(StagingMode::RegisterOnFly);
        // Figure 3's verdict: for swap-sized requests, registering on the
        // fly must lose to copying through the pre-registered pool.
        assert!(
            reg > copy,
            "register-on-fly ({reg}ns) should be slower than copy ({copy}ns)"
        );
    }

    #[test]
    fn mirrored_writes_survive_primary_data_loss() {
        let config = HpbdConfig {
            mirror_writes: true,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 0x7C);
        // The replica landed on the buddy server's upper half.
        let s0 = cluster.servers[0].stats();
        let s1 = cluster.servers[1].stats();
        assert_eq!(
            s0.bytes_in + s1.bytes_in,
            2 * 4096,
            "write stored twice (primary + replica)"
        );
        assert!(s0.bytes_in > 0 && s1.bytes_in > 0);
    }

    #[test]
    fn mirrored_write_completes_only_after_both_replicas() {
        let config = HpbdConfig {
            mirror_writes: true,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal.clone(), config, 2, 1 << 20);
        let t0 = engine.now();
        let buf = new_buffer(64 * 1024);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let mirrored = (engine.now() - t0).as_nanos();

        // Same write without mirroring.
        let engine2 = Engine::new();
        let cluster2 = HpbdCluster::build(&engine2, cal, HpbdConfig::default(), 2, 1 << 20);
        let buf = new_buffer(64 * 1024);
        cluster2
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine2.run_until_idle();
        let plain = (engine2.now() - t0).as_nanos();
        assert!(
            mirrored > plain,
            "mirroring must cost something: {mirrored} vs {plain}"
        );
    }

    #[test]
    fn failover_reads_replica_after_primary_crash() {
        let config = HpbdConfig {
            mirror_writes: true,
            request_timeout_ns: Some(5_000_000), // 5ms
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        // Write data (mirrored to both servers).
        let wbuf = new_buffer(8192);
        wbuf.borrow_mut().fill(0x9D);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        // Primary of extent 0 dies.
        cluster.servers[0].crash();
        // Read must transparently come back from server 1's replica.
        let rbuf = new_buffer(8192);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(
            rbuf.borrow().iter().all(|&b| b == 0x9D),
            "replica data must survive the crash"
        );
        let stats = cluster.client.stats();
        assert!(stats.timeouts >= 1, "the lost request must time out");
        assert!(stats.failovers >= 1, "and fail over to the buddy");
    }

    #[test]
    fn post_crash_traffic_routes_away_without_new_timeouts() {
        let config = HpbdConfig {
            mirror_writes: true,
            request_timeout_ns: Some(5_000_000),
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        cluster.servers[0].crash();
        // First access pays the timeout and marks the server dead...
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(1);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let t_after_first = cluster.client.stats().timeouts;
        // ...subsequent writes to the dead extent go straight to the buddy.
        for i in 1..8u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let stats = cluster.client.stats();
        assert_eq!(
            stats.timeouts, t_after_first,
            "dead-server traffic must not keep timing out"
        );
        assert!(stats.failovers >= 8);
        // Everything is readable from the survivor.
        for i in 0..8u64 {
            let rbuf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                rbuf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            let expect = if i == 0 { 1 } else { i as u8 };
            assert!(rbuf.borrow().iter().all(|&b| b == expect), "page {i}");
        }
    }

    #[test]
    fn crash_without_mirroring_fails_the_io() {
        let config = HpbdConfig {
            request_timeout_ns: Some(5_000_000),
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        cluster.servers[0].crash();
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                0,
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert!(
            matches!(got.get(), Some(Err(blockdev::IoError::DeviceError(_)))),
            "without a replica the I/O must fail: {:?}",
            got.get()
        );
    }

    #[test]
    fn revocation_migrates_chunks_and_preserves_data() {
        let config = HpbdConfig {
            chunk_bytes: 256 * 1024,
            spare_chunks: 4,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        // Fill server 0's extent with distinct patterns.
        for i in 0..64u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill((i % 250) as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        // Server 0 wants its first 256K back.
        cluster.servers[0].revoke(0, 256 * 1024);
        engine.run_until_idle();
        let cs = cluster.client.stats();
        assert_eq!(cs.revocations, 1, "notice received");
        assert_eq!(cs.migrations, 1, "one chunk migrated");
        // Data must be intact — the first 256K now lives on server 1.
        let bytes_before = cluster.servers[1].stats().bytes_out;
        for i in 0..64u64 {
            let buf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(
                buf.borrow().iter().all(|&b| b == (i % 250) as u8 + 1),
                "page {i} corrupted by migration"
            );
        }
        assert!(
            cluster.servers[1].stats().bytes_out > bytes_before,
            "migrated pages must be served by the new home"
        );
    }

    #[test]
    fn io_during_migration_is_deferred_not_lost() {
        let config = HpbdConfig {
            chunk_bytes: 256 * 1024,
            spare_chunks: 4,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(0x11);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        // Revoke, and immediately (same instant) write to the migrating
        // chunk: the write must defer behind the migration and then apply.
        cluster.servers[0].revoke(0, 256 * 1024);
        // Let the notice arrive and the migration start.
        engine.advance(simcore::SimDuration::from_micros(200));
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(0x22);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let cs = cluster.client.stats();
        assert!(cs.deferred_requests >= 1, "write should have deferred");
        // The deferred write must have won (it is the latest).
        let buf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            buf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(buf.borrow().iter().all(|&b| b == 0x22));
    }

    #[test]
    fn revocation_of_untouched_range_is_cheap() {
        let config = HpbdConfig {
            chunk_bytes: 256 * 1024,
            spare_chunks: 2,
            ..HpbdConfig::default()
        };
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = HpbdCluster::build(&engine, cal, config, 2, 1 << 20);
        // Nothing was ever written; revoking still migrates the (zeroed)
        // chunk — and data reads back as zeros.
        cluster.servers[0].revoke(512 * 1024, 256 * 1024);
        engine.run_until_idle();
        assert_eq!(cluster.client.stats().migrations, 1);
        let buf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            512 * 1024,
            buf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(buf.borrow().iter().all(|&b| b == 0));
    }

    #[test]
    fn write_latency_is_microseconds_not_milliseconds() {
        // A single 4K swap-out over HPBD should cost on the order of tens
        // of microseconds (Figure 1 scale), far below a disk access.
        let (engine, cluster) = cluster(1, 8 << 20);
        let t0 = engine.now();
        let wbuf = new_buffer(4096);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let elapsed = engine.now() - t0;
        assert!(
            elapsed.as_nanos() < 200_000,
            "4K HPBD write took {elapsed}, expected tens of microseconds"
        );
        assert!(elapsed.as_nanos() > 10_000, "but not free: {elapsed}");
    }
}
