//! Cluster wiring: one client, N memory servers.
//!
//! Stands in for HPBD's initialisation phase (paper §5): a socket
//! connection exchanges queue-pair information, after which the client
//! holds an IBA context per minor device — HCA handles, *shared completion
//! queues*, the registered pool, and a QP per server.
//!
//! Deployments are described with [`ClusterBuilder`]: typed setters over
//! the [`HpbdConfig`] defaults, plus a [`ClusterBuilder::fault_plan`] hook
//! that arms a deterministic [`simfault::FaultPlan`] against the built
//! cluster — server crashes/restarts and per-link degradation, loss, and
//! completion errors, all scheduled on the virtual clock.

use crate::client::HpbdClient;
use crate::config::{Distribution, HpbdConfig, StagingMode};
use crate::server::HpbdServer;
use ibsim::{Fabric, IbNode, LinkFaults};
use netmodel::Calibration;
use simcore::{Engine, SimTime};
use simfault::{FaultEvent, FaultPlan};
use std::rc::Rc;

/// A built HPBD deployment.
pub struct HpbdCluster {
    /// The fabric (owns calibration and node creation).
    pub fabric: Fabric,
    /// The client block device.
    pub client: HpbdClient,
    /// The memory servers, in extent order.
    pub servers: Vec<HpbdServer>,
    /// Per-server link fault handles (client↔server connection `i`).
    /// Empty unless a non-empty fault plan was armed — an unfaulted
    /// cluster carries no fault state at all.
    pub links: Vec<LinkFaults>,
}

/// Describes an HPBD deployment and builds it: one client, N memory
/// servers, optional fault plan.
///
/// ```
/// use hpbd::ClusterBuilder;
/// use netmodel::Calibration;
/// use simcore::Engine;
/// use std::rc::Rc;
///
/// let engine = Engine::new();
/// let cal = Rc::new(Calibration::cluster_2005());
/// let cluster = ClusterBuilder::new()
///     .servers(4)
///     .per_server_capacity(8 << 20)
///     .mirror_writes(true)
///     .request_timeout_ns(5_000_000)
///     .build(&engine, cal);
/// assert_eq!(cluster.servers.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    config: HpbdConfig,
    n_servers: usize,
    per_server_capacity: u64,
    fault_plan: FaultPlan,
}

impl Default for ClusterBuilder {
    fn default() -> ClusterBuilder {
        ClusterBuilder::new()
    }
}

impl ClusterBuilder {
    /// A builder with the paper-default [`HpbdConfig`], two servers of
    /// 8 MiB each, and no faults.
    pub fn new() -> ClusterBuilder {
        ClusterBuilder {
            config: HpbdConfig::default(),
            n_servers: 2,
            per_server_capacity: 8 << 20,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Replace the whole configuration (setters below tweak individual
    /// fields on top of whatever was set last).
    pub fn config(mut self, config: HpbdConfig) -> ClusterBuilder {
        self.config = config;
        self
    }

    /// Number of memory servers (extents are attached in order).
    pub fn servers(mut self, n_servers: usize) -> ClusterBuilder {
        self.n_servers = n_servers;
        self
    }

    /// Exported swap capacity per server, in bytes (page-multiple).
    pub fn per_server_capacity(mut self, bytes: u64) -> ClusterBuilder {
        self.per_server_capacity = bytes;
        self
    }

    /// Client registered-pool size (paper default 1 MiB).
    pub fn pool_size(mut self, bytes: u64) -> ClusterBuilder {
        self.config.pool_size = bytes;
        self
    }

    /// Per-server flow-control credit water-mark.
    pub fn credits(mut self, credits: usize) -> ClusterBuilder {
        self.config.credits = credits;
        self
    }

    /// Swap-area-to-server mapping.
    pub fn distribution(mut self, distribution: Distribution) -> ClusterBuilder {
        self.config.distribution = distribution;
        self
    }

    /// Data staging strategy.
    pub fn staging(mut self, staging: StagingMode) -> ClusterBuilder {
        self.config.staging = staging;
        self
    }

    /// Mirror every write to the buddy server's replica region.
    pub fn mirror_writes(mut self, on: bool) -> ClusterBuilder {
        self.config.mirror_writes = on;
        self
    }

    /// Arm per-request timeouts: a request unanswered after `ns` enters
    /// the retry/failover path.
    pub fn request_timeout_ns(mut self, ns: u64) -> ClusterBuilder {
        self.config.request_timeout_ns = Some(ns);
        self
    }

    /// Same-server retries (with exponential backoff) before a timeout
    /// declares the server dead.
    pub fn max_retries(mut self, retries: u32) -> ClusterBuilder {
        self.config.max_retries = retries;
        self
    }

    /// Dynamic-memory remapping granularity.
    pub fn chunk_bytes(mut self, bytes: u64) -> ClusterBuilder {
        self.config.chunk_bytes = bytes;
        self
    }

    /// Spare chunks per server (migration targets for revocation).
    pub fn spare_chunks(mut self, chunks: usize) -> ClusterBuilder {
        self.config.spare_chunks = chunks;
        self
    }

    /// Coalesce per-server request bursts into merged wire messages with
    /// one doorbell per burst (off by default: paper-exact behaviour).
    pub fn batching(mut self, on: bool) -> ClusterBuilder {
        self.config.batching = on;
        self
    }

    /// How long a batched part waits for mergeable neighbours (ns).
    /// Implies nothing without `batching(true)`.
    pub fn merge_window_ns(mut self, ns: u64) -> ClusterBuilder {
        self.config.merge_window_ns = ns;
        self
    }

    /// Cap on parts per merged message (clamped to the wire format limit).
    pub fn max_merge_segments(mut self, segs: usize) -> ClusterBuilder {
        self.config.max_merge_segments = segs;
        self
    }

    /// Attach a deterministic fault plan. An EMPTY plan (the default) arms
    /// nothing: no link-fault handles, no scheduled events — the built
    /// cluster is bit-for-bit the unfaulted one.
    pub fn fault_plan(mut self, plan: FaultPlan) -> ClusterBuilder {
        self.fault_plan = plan;
        self
    }

    /// Build the cluster on a fresh fabric. The swap area is the
    /// concatenation of the server extents (blocking distribution).
    pub fn build(self, engine: &Engine, cal: Rc<Calibration>) -> HpbdCluster {
        let fabric = Fabric::new(engine.clone(), cal);
        let client_node = fabric.add_node("hpbd-client");
        self.build_on(&fabric, client_node)
    }

    /// Build on an existing fabric/client node (lets scenarios share the
    /// client node with the VM and applications).
    pub fn build_on(self, fabric: &Fabric, client_node: IbNode) -> HpbdCluster {
        let ClusterBuilder {
            config,
            n_servers,
            per_server_capacity,
            fault_plan,
        } = self;
        assert!(n_servers > 0, "at least one memory server");
        assert!(
            per_server_capacity.is_multiple_of(4096),
            "server capacity must be page-aligned"
        );
        let engine = fabric.engine().clone();
        let client = HpbdClient::new(engine.clone(), client_node, config.clone());
        let mut servers = Vec::with_capacity(n_servers);
        let mut links = Vec::new();
        let arm_faults = !fault_plan.is_empty();
        // In mirror mode each server stores its own extent plus the
        // replicas of its predecessor's extent; spare chunks for dynamic
        // memory live after that.
        let base_store = if config.mirror_writes {
            assert!(n_servers >= 2, "mirrored writes need at least two servers");
            per_server_capacity * 2
        } else {
            per_server_capacity
        };
        let server_store = base_store + config.spare_chunks as u64 * config.chunk_bytes.max(4096);
        for i in 0..n_servers {
            let server = HpbdServer::new(
                fabric,
                &format!("mem-server-{i}"),
                server_store,
                config.clone(),
            );
            // QP exchange: connect with queue depths sized for the credit
            // window (requests, replies, and in-flight RDMA).
            let depth = config.credits * 2 + 8;
            let (c_send, c_recv) = client.cqs();
            let (qp_c, qp_s) = fabric.connect_with_depth(
                client.ibnode(),
                c_send,
                c_recv,
                server.ibnode(),
                server.send_cq(),
                server.recv_cq(),
                depth,
                config.credits + 2,
            );
            if arm_faults {
                // One shared handle per connection, installed on both
                // directions of the link.
                let link = LinkFaults::new();
                qp_c.set_link_faults(link.clone());
                qp_s.set_link_faults(link.clone());
                links.push(link);
            }
            // The connect handshake carries the server's boot generation so
            // the client can spot an in-window amnesiac restart (§13).
            client.attach_server(qp_c, per_server_capacity, server.generation());
            server.attach_connection(qp_s);
            servers.push(server);
        }
        let cluster = HpbdCluster {
            fabric: fabric.clone(),
            client,
            servers,
            links,
        };
        if arm_faults {
            schedule_fault_plan(&engine, &cluster, &fault_plan, n_servers);
        }
        cluster
    }
}

/// Schedule every timed fault of `plan` against the built cluster on the
/// engine's virtual clock.
fn schedule_fault_plan(engine: &Engine, cluster: &HpbdCluster, plan: &FaultPlan, n_servers: usize) {
    if let Some(max) = plan.max_server_index() {
        assert!(
            max < n_servers,
            "fault plan names server {max}, but the cluster has {n_servers} servers"
        );
    }
    for fault in plan.events() {
        let at = SimTime(fault.at_ns);
        match fault.event {
            FaultEvent::ServerCrash { server } => {
                let s = cluster.servers[server].clone();
                engine.schedule_at(at, move || s.crash());
            }
            FaultEvent::ServerRestart { server } => {
                let s = cluster.servers[server].clone();
                engine.schedule_at(at, move || s.restart());
            }
            FaultEvent::LinkDegrade {
                server,
                added_latency_ns,
                bandwidth_factor,
            } => {
                let link = cluster.links[server].clone();
                engine.schedule_at(at, move || link.degrade(added_latency_ns, bandwidth_factor));
            }
            FaultEvent::MessageLoss { server, count } => {
                let link = cluster.links[server].clone();
                engine.schedule_at(at, move || link.drop_next(count));
            }
            FaultEvent::CompletionError { server, count } => {
                let link = cluster.links[server].clone();
                engine.schedule_at(at, move || link.error_next(count));
            }
            FaultEvent::MessageDelay {
                server,
                count,
                delay_ns,
            } => {
                let link = cluster.links[server].clone();
                engine.schedule_at(at, move || link.delay_next(count, delay_ns));
            }
            FaultEvent::MessageDuplicate { server, count } => {
                let link = cluster.links[server].clone();
                engine.schedule_at(at, move || link.duplicate_next(count));
            }
            // TCP resets target the NBD baseline; a plan shared between
            // an HPBD and an NBD deployment simply has no HPBD-side
            // effect for them.
            FaultEvent::TcpReset => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
    use simcore::Engine;
    use std::cell::Cell;
    use std::rc::Rc;

    fn cluster(n_servers: usize, per_server: u64) -> (Engine, HpbdCluster) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .servers(n_servers)
            .per_server_capacity(per_server)
            .build(&engine, cal);
        (engine, cluster)
    }

    fn write_read_roundtrip(engine: &Engine, dev: &HpbdClient, offset: u64, len: usize, fill: u8) {
        let wbuf = new_buffer(len);
        wbuf.borrow_mut().fill(fill);
        let done = Rc::new(Cell::new(false));
        {
            let done = done.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                offset,
                wbuf,
                move |r| {
                    r.unwrap();
                    done.set(true);
                },
            )));
        }
        engine.run_until_idle();
        assert!(done.get(), "write completed");

        let rbuf = new_buffer(len);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            offset,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(
            rbuf.borrow().iter().all(|&b| b == fill),
            "data must round-trip through the remote server"
        );
    }

    #[test]
    fn single_server_roundtrip() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 0xA7);
        let s = cluster.client.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.phys_requests, 2);
        assert_eq!(s.bytes_out, 4096);
        assert_eq!(s.bytes_in, 4096);
        let srv = cluster.servers[0].stats();
        assert_eq!(
            srv.rdma_reads, 1,
            "swap-out uses server-initiated RDMA READ"
        );
        assert_eq!(srv.rdma_writes, 1, "swap-in uses RDMA WRITE");
    }

    #[test]
    fn large_request_roundtrip() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 0, 128 * 1024, 0x3E);
    }

    #[test]
    fn capacity_is_sum_of_extents() {
        let (_, cluster) = cluster(4, 1 << 20);
        assert_eq!(cluster.client.capacity(), 4 << 20);
        assert_eq!(cluster.client.server_count(), 4);
    }

    #[test]
    fn blocking_distribution_routes_by_extent() {
        let (engine, cluster) = cluster(2, 1 << 20);
        // Write into each server's extent; only that server stores bytes.
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 1);
        write_read_roundtrip(&engine, &cluster.client, 1 << 20, 4096, 2);
        assert_eq!(cluster.servers[0].stats().bytes_in, 4096);
        assert_eq!(cluster.servers[1].stats().bytes_in, 4096);
    }

    #[test]
    fn boundary_spanning_request_splits() {
        let (engine, cluster) = cluster(2, 1 << 20);
        // 8K extent-straddling write: 4K to server 0, 4K to server 1.
        write_read_roundtrip(&engine, &cluster.client, (1 << 20) - 4096, 8192, 9);
        let s = cluster.client.stats();
        assert!(s.split_requests >= 1, "boundary request must split");
        assert_eq!(cluster.servers[0].stats().bytes_in, 4096);
        assert_eq!(cluster.servers[1].stats().bytes_in, 4096);
    }

    #[test]
    fn out_of_range_rejected() {
        let (engine, cluster) = cluster(1, 1 << 20);
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                1 << 20,
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(blockdev::IoError::OutOfRange)));
    }

    #[test]
    fn flow_control_queues_beyond_water_mark() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .credits(2)
            .servers(1)
            .per_server_capacity(8 << 20)
            .build(&engine, cal);
        let done = Rc::new(Cell::new(0));
        // 8 concurrent 4K writes with only 2 credits.
        for i in 0..8u64 {
            let done = done.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                new_buffer(4096),
                move |r| {
                    r.unwrap();
                    done.set(done.get() + 1);
                },
            )));
        }
        engine.run_until_idle();
        assert_eq!(done.get(), 8, "all writes eventually complete");
        let s = cluster.client.stats();
        assert!(s.flow_stalls > 0, "water-mark must have throttled");
    }

    #[test]
    fn pool_exhaustion_queues_requests() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .pool_size(128 * 1024) // one max-size request
            .servers(1)
            .per_server_capacity(8 << 20)
            .build(&engine, cal);
        let done = Rc::new(Cell::new(0));
        for i in 0..4u64 {
            let done = done.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 128 * 1024,
                new_buffer(128 * 1024),
                move |r| {
                    r.unwrap();
                    done.set(done.get() + 1);
                },
            )));
        }
        engine.run_until_idle();
        assert_eq!(done.get(), 4);
        assert!(
            cluster.client.stats().pool_waits > 0,
            "pool must have queued"
        );
    }

    #[test]
    fn concurrent_mixed_traffic_integrity() {
        let (engine, cluster) = cluster(2, 4 << 20);
        // Fill 64 pages with distinct patterns, then read back all.
        let n = 64u64;
        for i in 0..n {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill((i % 251) as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let bufs: Vec<_> = (0..n)
            .map(|i| {
                let buf = new_buffer(4096);
                cluster.client.submit(IoRequest::single(Bio::new(
                    IoOp::Read,
                    i * 4096,
                    buf.clone(),
                    |r| r.unwrap(),
                )));
                buf
            })
            .collect();
        engine.run_until_idle();
        for (i, buf) in bufs.iter().enumerate() {
            let expect = (i as u64 % 251) as u8 + 1;
            assert!(
                buf.borrow().iter().all(|&b| b == expect),
                "page {i} corrupted"
            );
        }
    }

    #[test]
    fn server_sleeps_and_wakes() {
        let (engine, cluster) = cluster(1, 8 << 20);
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 1);
        // Let far more than 200us pass with no traffic.
        engine.advance(simcore::SimDuration::from_millis(5));
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 2);
        assert!(
            cluster.servers[0].stats().wakeups >= 1,
            "server should have slept through the idle gap and woken"
        );
    }

    #[test]
    fn striped_distribution_fans_requests_across_servers() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .distribution(Distribution::Striped {
                stripe_bytes: 8 * 4096,
            })
            .servers(4)
            .per_server_capacity(2 << 20)
            .build(&engine, cal);
        // One 128K request spans 4 stripes of 32K: all four servers serve.
        write_read_roundtrip(&engine, &cluster.client, 0, 128 * 1024, 0x6B);
        for (i, server) in cluster.servers.iter().enumerate() {
            assert!(
                server.stats().bytes_in > 0,
                "striping should spread the write to server {i}"
            );
        }
        assert!(cluster.client.stats().split_requests >= 1);
    }

    #[test]
    fn striped_data_integrity_over_many_offsets() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .distribution(Distribution::Striped { stripe_bytes: 4096 })
            .servers(3)
            .per_server_capacity(2 << 20)
            .build(&engine, cal);
        for i in 0..24u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        for i in 0..24u64 {
            let buf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(
                buf.borrow().iter().all(|&b| b == i as u8 + 1),
                "page {i} corrupted under striping"
            );
        }
    }

    #[test]
    fn register_on_fly_works_but_costs_more() {
        let run = |staging: StagingMode| {
            let engine = Engine::new();
            let cal = Rc::new(Calibration::cluster_2005());
            let cluster = ClusterBuilder::new()
                .staging(staging)
                .servers(1)
                .per_server_capacity(8 << 20)
                .build(&engine, cal);
            let t0 = engine.now();
            // 16 sequential 64K writes.
            for i in 0..16u64 {
                let buf = new_buffer(64 * 1024);
                buf.borrow_mut().fill(3);
                cluster.client.submit(IoRequest::single(Bio::new(
                    IoOp::Write,
                    i * 64 * 1024,
                    buf,
                    |r| r.unwrap(),
                )));
            }
            engine.run_until_idle();
            // Read one back for integrity.
            let buf = new_buffer(64 * 1024);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                0,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(buf.borrow().iter().all(|&b| b == 3));
            (engine.now() - t0).as_nanos()
        };
        let copy = run(StagingMode::CopyToPool);
        let reg = run(StagingMode::RegisterOnFly);
        // Figure 3's verdict: for swap-sized requests, registering on the
        // fly must lose to copying through the pre-registered pool.
        assert!(
            reg > copy,
            "register-on-fly ({reg}ns) should be slower than copy ({copy}ns)"
        );
    }

    #[test]
    fn mirrored_writes_survive_primary_data_loss() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .mirror_writes(true)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        write_read_roundtrip(&engine, &cluster.client, 4096, 4096, 0x7C);
        // The replica landed on the buddy server's upper half.
        let s0 = cluster.servers[0].stats();
        let s1 = cluster.servers[1].stats();
        assert_eq!(
            s0.bytes_in + s1.bytes_in,
            2 * 4096,
            "write stored twice (primary + replica)"
        );
        assert!(s0.bytes_in > 0 && s1.bytes_in > 0);
    }

    #[test]
    fn mirrored_write_completes_only_after_both_replicas() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .mirror_writes(true)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal.clone());
        let t0 = engine.now();
        let buf = new_buffer(64 * 1024);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let mirrored = (engine.now() - t0).as_nanos();

        // Same write without mirroring.
        let engine2 = Engine::new();
        let cluster2 = ClusterBuilder::new()
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine2, cal);
        let buf = new_buffer(64 * 1024);
        cluster2
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine2.run_until_idle();
        let plain = (engine2.now() - t0).as_nanos();
        assert!(
            mirrored > plain,
            "mirroring must cost something: {mirrored} vs {plain}"
        );
    }

    #[test]
    fn failover_reads_replica_after_primary_crash() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .mirror_writes(true)
            .request_timeout_ns(5_000_000) // 5ms
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        // Write data (mirrored to both servers).
        let wbuf = new_buffer(8192);
        wbuf.borrow_mut().fill(0x9D);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        // Primary of extent 0 dies.
        cluster.servers[0].crash();
        // Read must transparently come back from server 1's replica.
        let rbuf = new_buffer(8192);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(
            rbuf.borrow().iter().all(|&b| b == 0x9D),
            "replica data must survive the crash"
        );
        let stats = cluster.client.stats();
        assert!(stats.timeouts >= 1, "the lost request must time out");
        assert!(stats.failovers >= 1, "and fail over to the buddy");
    }

    #[test]
    fn post_crash_traffic_routes_away_without_new_timeouts() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .mirror_writes(true)
            .request_timeout_ns(5_000_000)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        cluster.servers[0].crash();
        // First access pays the timeout and marks the server dead...
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(1);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let t_after_first = cluster.client.stats().timeouts;
        // ...subsequent writes to the dead extent go straight to the buddy.
        for i in 1..8u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let stats = cluster.client.stats();
        assert_eq!(
            stats.timeouts, t_after_first,
            "dead-server traffic must not keep timing out"
        );
        assert!(stats.failovers >= 8);
        // Everything is readable from the survivor.
        for i in 0..8u64 {
            let rbuf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                rbuf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            let expect = if i == 0 { 1 } else { i as u8 };
            assert!(rbuf.borrow().iter().all(|&b| b == expect), "page {i}");
        }
    }

    #[test]
    fn crash_without_mirroring_fails_the_io() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .request_timeout_ns(5_000_000)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        cluster.servers[0].crash();
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                0,
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert_eq!(
            got.get(),
            Some(Err(blockdev::IoError::Fault(blockdev::FaultKind::Timeout))),
            "without a replica the I/O must fail with the fault surfaced"
        );
    }

    #[test]
    fn revocation_migrates_chunks_and_preserves_data() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .chunk_bytes(256 * 1024)
            .spare_chunks(4)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        // Fill server 0's extent with distinct patterns.
        for i in 0..64u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill((i % 250) as u8 + 1);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        // Server 0 wants its first 256K back.
        cluster.servers[0].revoke(0, 256 * 1024);
        engine.run_until_idle();
        let cs = cluster.client.stats();
        assert_eq!(cs.revocations, 1, "notice received");
        assert_eq!(cs.migrations, 1, "one chunk migrated");
        // Data must be intact — the first 256K now lives on server 1.
        let bytes_before = cluster.servers[1].stats().bytes_out;
        for i in 0..64u64 {
            let buf = new_buffer(4096);
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                i * 4096,
                buf.clone(),
                |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(
                buf.borrow().iter().all(|&b| b == (i % 250) as u8 + 1),
                "page {i} corrupted by migration"
            );
        }
        assert!(
            cluster.servers[1].stats().bytes_out > bytes_before,
            "migrated pages must be served by the new home"
        );
    }

    #[test]
    fn io_during_migration_is_deferred_not_lost() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .chunk_bytes(256 * 1024)
            .spare_chunks(4)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(0x11);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        // Revoke, and immediately (same instant) write to the migrating
        // chunk: the write must defer behind the migration and then apply.
        cluster.servers[0].revoke(0, 256 * 1024);
        // Let the notice arrive and the migration start.
        engine.advance(simcore::SimDuration::from_micros(200));
        let buf = new_buffer(4096);
        buf.borrow_mut().fill(0x22);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let cs = cluster.client.stats();
        assert!(cs.deferred_requests >= 1, "write should have deferred");
        // The deferred write must have won (it is the latest).
        let buf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            buf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(buf.borrow().iter().all(|&b| b == 0x22));
    }

    #[test]
    fn revocation_of_untouched_range_is_cheap() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .chunk_bytes(256 * 1024)
            .spare_chunks(2)
            .servers(2)
            .per_server_capacity(1 << 20)
            .build(&engine, cal);
        // Nothing was ever written; revoking still migrates the (zeroed)
        // chunk — and data reads back as zeros.
        cluster.servers[0].revoke(512 * 1024, 256 * 1024);
        engine.run_until_idle();
        assert_eq!(cluster.client.stats().migrations, 1);
        let buf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            512 * 1024,
            buf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(buf.borrow().iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_fault_plan_installs_no_fault_state() {
        let (_, cluster) = cluster(2, 1 << 20);
        assert!(
            cluster.links.is_empty(),
            "an unfaulted cluster must carry no link-fault handles"
        );
    }

    #[test]
    fn fault_plan_crash_fails_over_on_schedule() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .mirror_writes(true)
            .request_timeout_ns(5_000_000)
            .servers(2)
            .per_server_capacity(1 << 20)
            .fault_plan(FaultPlan::new().server_crash(50_000_000, 0))
            .build(&engine, cal);
        assert_eq!(cluster.links.len(), 2, "fault handles armed per link");
        // Mirrored write before the crash instant.
        let wbuf = new_buffer(4096);
        wbuf.borrow_mut().fill(0x5A);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
                r.unwrap()
            })));
        // Draining the queue also fires the scheduled crash (virtual time
        // runs in order: the write at t≈0 completes long before t=50ms).
        engine.run_until_idle();
        assert!(cluster.servers[0].is_crashed(), "plan crashed server 0");
        let rbuf = new_buffer(4096);
        cluster.client.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(rbuf.borrow().iter().all(|&b| b == 0x5A));
        assert!(cluster.client.stats().failovers >= 1);
        assert_eq!(
            cluster.client.health(),
            blockdev::DeviceHealth::Degraded { failed_servers: 1 }
        );
    }

    #[test]
    fn fault_plan_validates_server_indices() {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ClusterBuilder::new()
                .servers(2)
                .per_server_capacity(1 << 20)
                .fault_plan(FaultPlan::new().server_crash(1_000, 7))
                .build(&engine, cal);
        }));
        assert!(
            result.is_err(),
            "plan naming server 7 of 2 must be rejected"
        );
    }

    #[test]
    fn restarted_server_is_detected_as_amnesiac() {
        let (engine, cluster) = cluster(1, 1 << 20);
        // Store a page, then crash + restart with no traffic in flight
        // (the client never marks the server dead, so without epochs it
        // would keep talking to the amnesiac as if nothing happened).
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 0x42);
        cluster.servers[0].crash();
        engine.advance(simcore::SimDuration::from_millis(1));
        cluster.servers[0].restart();
        engine.run_until_idle();
        assert!(!cluster.servers[0].is_crashed());
        // The daemon answers again, but its replies carry a bumped
        // generation (DESIGN.md §13): the client must refuse the
        // stale-empty read instead of handing back zeros where 0x42 used
        // to live. With no mirror to fail over to, the I/O errors out.
        let failed = Rc::new(Cell::new(false));
        let rbuf = new_buffer(4096);
        rbuf.borrow_mut().fill(0xFF);
        {
            let failed = failed.clone();
            cluster.client.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                0,
                rbuf.clone(),
                move |r| {
                    assert!(r.is_err(), "a stale-empty read must not succeed");
                    failed.set(true);
                },
            )));
        }
        engine.run_until_idle();
        assert!(failed.get(), "read completed (with an error)");
        assert!(
            rbuf.borrow().iter().all(|&b| b == 0xFF),
            "the buffer must not be overwritten with stale zeros"
        );
        assert_eq!(cluster.client.stats().epoch_wipes, 1);
        assert_eq!(
            cluster.client.health(),
            blockdev::DeviceHealth::Failed,
            "the sole server is retired once its wipe is detected"
        );
    }

    #[test]
    fn retries_recover_from_brief_unreachability() {
        // Drop the next 2 requests on the link; with retries configured the
        // I/O must still complete against the SAME server — no failover,
        // no mirroring needed.
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let cluster = ClusterBuilder::new()
            .request_timeout_ns(2_000_000)
            .max_retries(3)
            .servers(1)
            .per_server_capacity(1 << 20)
            .fault_plan(FaultPlan::new().message_loss(0, 0, 2))
            .build(&engine, cal);
        let done = Rc::new(Cell::new(false));
        {
            let done = done.clone();
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(0x33);
            cluster
                .client
                .submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, move |r| {
                    r.unwrap();
                    done.set(true);
                })));
        }
        engine.run_until_idle();
        assert!(done.get(), "retry must push the write through");
        let stats = cluster.client.stats();
        assert!(stats.retries >= 1, "the dropped sends must be retried");
        assert_eq!(stats.failovers, 0, "no replica involved");
        assert_eq!(
            cluster.client.health(),
            blockdev::DeviceHealth::Healthy,
            "retries kept the server alive"
        );
        write_read_roundtrip(&engine, &cluster.client, 0, 4096, 0x44);
    }

    #[test]
    fn write_latency_is_microseconds_not_milliseconds() {
        // A single 4K swap-out over HPBD should cost on the order of tens
        // of microseconds (Figure 1 scale), far below a disk access.
        let (engine, cluster) = cluster(1, 8 << 20);
        let t0 = engine.now();
        let wbuf = new_buffer(4096);
        cluster
            .client
            .submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
                r.unwrap()
            })));
        engine.run_until_idle();
        let elapsed = engine.now() - t0;
        assert!(
            elapsed.as_nanos() < 200_000,
            "4K HPBD write took {elapsed}, expected tens of microseconds"
        );
        assert!(elapsed.as_nanos() > 10_000, "but not free: {elapsed}");
    }
}
