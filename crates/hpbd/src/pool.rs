//! The pre-registered buffer pool (paper §4.2.2).
//!
//! Registering memory with the HCA is far costlier than copying a swap
//! request's worth of data (Figure 3), so HPBD registers one pool at device
//! load time and copies pages through it. The allocator is first-fit over a
//! sorted free list; deallocation merges with free neighbours so external
//! fragmentation cannot force multi-copy requests ("a merging algorithm is
//! used at buffer deallocation time... ensures contiguous buffer allocation
//! for page requests. Its simplicity incurs little overhead").
//!
//! Allocation failure must not fail the swap request — that could crash the
//! machine — so both wrappers queue the request instead: the
//! [`SharedBufferPool`] blocks the calling thread on a condvar (the kernel
//! driver's wait queue), and the [`SimBufferPool`] queues a continuation
//! fired on deallocation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex};

/// A span allocated from the pool: offset into the registered region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolBuf {
    /// Byte offset inside the pool region.
    pub offset: u64,
    /// Span length.
    pub len: u64,
}

/// Pure first-fit allocator with merge-on-free. No interior mutability —
/// wrap it for sharing.
///
/// Both hot scans are binary searches over the sorted free list:
///
/// * `alloc` keeps a running *prefix maximum* of extent lengths
///   (`prefix_max[i] = max(len[0..=i])`, non-decreasing by construction),
///   so `partition_point(|&m| m < len)` lands exactly on the first extent
///   that fits — first-fit semantics in O(log n) instead of a linear scan.
/// * `free` locates its insertion point (and therefore both merge
///   neighbours) with `partition_point` by offset, then merges in place
///   with at most one list mutation.
#[derive(Clone, Debug)]
pub struct PoolAllocator {
    size: u64,
    /// Free extents, sorted by offset, always coalesced.
    free: Vec<(u64, u64)>,
    /// `prefix_max[i] == max(free[0..=i].len)` — maintained alongside
    /// `free` so first-fit is a binary search.
    prefix_max: Vec<u64>,
    free_bytes: u64,
}

impl PoolAllocator {
    /// An allocator over `size` bytes, all free.
    pub fn new(size: u64) -> PoolAllocator {
        assert!(size > 0, "empty pool");
        PoolAllocator {
            size,
            free: vec![(0, size)],
            prefix_max: vec![size],
            free_bytes: size,
        }
    }

    /// Recompute `prefix_max[from..]` after a mutation at index `from`.
    /// O(n − from), matching the `Vec` shift the mutation already paid;
    /// the win is on the alloc *search* side, which becomes O(log n).
    fn refresh_prefix_max(&mut self, from: usize) {
        self.prefix_max.resize(self.free.len(), 0);
        let mut running = if from == 0 {
            0
        } else {
            self.prefix_max[from - 1]
        };
        for i in from..self.free.len() {
            running = running.max(self.free[i].1);
            self.prefix_max[i] = running;
        }
    }

    /// Debug-build validation after every mutating op.
    #[inline]
    fn debug_check(&self) {
        #[cfg(debug_assertions)]
        self.check_invariants();
    }

    /// Pool capacity.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes currently free (possibly fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.free_bytes
    }

    /// Number of free extents (1 when fully coalesced and nothing is
    /// allocated in the middle).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// First-fit allocation. Returns `None` if no single free extent is
    /// large enough (even if the total free bytes would suffice — requests
    /// need contiguous registered memory).
    pub fn alloc(&mut self, len: u64) -> Option<PoolBuf> {
        assert!(len > 0, "zero-length pool allocation");
        // `prefix_max` is non-decreasing, so the partition point is the
        // first index whose running max reaches `len` — which is exactly
        // the first extent with `flen >= len` (first-fit).
        let idx = self.prefix_max.partition_point(|&m| m < len);
        if idx == self.free.len() {
            return None;
        }
        let (off, flen) = self.free[idx];
        debug_assert!(flen >= len, "partition point missed the first fit");
        if flen == len {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + len, flen - len);
        }
        self.refresh_prefix_max(idx);
        self.free_bytes -= len;
        self.debug_check();
        Some(PoolBuf { offset: off, len })
    }

    /// Return a span, merging with adjacent free extents.
    ///
    /// # Panics
    /// Panics if the span overlaps a free extent (double free) or exceeds
    /// the pool.
    pub fn free(&mut self, buf: PoolBuf) {
        assert!(buf.len > 0 && buf.offset + buf.len <= self.size, "bad free");
        // Both merge neighbours fall out of one binary search by offset.
        let idx = self.free.partition_point(|&(off, _)| off < buf.offset);
        // Overlap checks against neighbours, then decide both merges up
        // front so the list is mutated at most once (no insert-then-remove).
        let merge_left = idx > 0 && {
            let (poff, plen) = self.free[idx - 1];
            assert!(poff + plen <= buf.offset, "double free (left overlap)");
            poff + plen == buf.offset
        };
        let merge_right = idx < self.free.len() && {
            let (noff, _) = self.free[idx];
            assert!(buf.offset + buf.len <= noff, "double free (right overlap)");
            buf.offset + buf.len == noff
        };
        let refresh_from = match (merge_left, merge_right) {
            (true, true) => {
                // Bridge: left extent absorbs the span and the right extent.
                let (_, nlen) = self.free[idx];
                self.free[idx - 1].1 += buf.len + nlen;
                self.free.remove(idx);
                idx - 1
            }
            (true, false) => {
                self.free[idx - 1].1 += buf.len;
                idx - 1
            }
            (false, true) => {
                let (_, nlen) = self.free[idx];
                self.free[idx] = (buf.offset, buf.len + nlen);
                idx
            }
            (false, false) => {
                self.free.insert(idx, (buf.offset, buf.len));
                idx
            }
        };
        self.refresh_prefix_max(refresh_from);
        self.free_bytes += buf.len;
        self.debug_check();
    }

    /// Validate internal invariants (used by property tests and, in debug
    /// builds, after every op): sorted, non-overlapping, coalesced,
    /// accounted, and `prefix_max` consistent with the free list.
    pub fn check_invariants(&self) {
        let mut total = 0;
        let mut prev_end: Option<u64> = None;
        let mut running_max = 0;
        assert_eq!(
            self.prefix_max.len(),
            self.free.len(),
            "prefix_max out of step with free list"
        );
        for (i, &(off, len)) in self.free.iter().enumerate() {
            assert!(len > 0, "empty free extent");
            assert!(off + len <= self.size, "extent beyond pool");
            if let Some(pe) = prev_end {
                assert!(off > pe, "unsorted or overlapping free list");
                assert!(off != pe, "uncoalesced neighbours");
            }
            prev_end = Some(off + len);
            total += len;
            running_max = running_max.max(len);
            assert_eq!(self.prefix_max[i], running_max, "stale prefix_max[{i}]");
        }
        assert_eq!(total, self.free_bytes, "free byte accounting");
    }
}

/// Thread-safe pool for the real-concurrency facet of the driver: the HPBD
/// client is a shared resource and its buffer management primitives must be
/// protected (paper §4.1 "thread safety"). Blocking allocation parks the
/// thread until another thread frees enough.
pub struct SharedBufferPool {
    inner: Mutex<PoolAllocator>,
    freed: Condvar,
}

impl SharedBufferPool {
    /// A shared pool over `size` bytes.
    pub fn new(size: u64) -> SharedBufferPool {
        SharedBufferPool {
            inner: Mutex::new(PoolAllocator::new(size)),
            freed: Condvar::new(),
        }
    }

    /// Non-blocking allocation.
    pub fn try_alloc(&self, len: u64) -> Option<PoolBuf> {
        self.inner.lock().expect("pool lock").alloc(len)
    }

    /// Blocking allocation: waits on the deallocation wait queue until a
    /// contiguous span of `len` is available.
    pub fn alloc_blocking(&self, len: u64) -> PoolBuf {
        let mut pool = self.inner.lock().expect("pool lock");
        loop {
            if let Some(buf) = pool.alloc(len) {
                return buf;
            }
            pool = self.freed.wait(pool).expect("pool lock");
        }
    }

    /// Free a span and wake waiters.
    pub fn free(&self, buf: PoolBuf) {
        self.inner.lock().expect("pool lock").free(buf);
        self.freed.notify_all();
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.inner.lock().expect("pool lock").free_bytes()
    }
}

type AllocCallback = Box<dyn FnOnce(PoolBuf)>;

/// Event-based pool for the simulation: allocation failure queues a
/// continuation served FIFO as deallocations create space — the paper's
/// "memory allocation wait queue".
pub struct SimBufferPool {
    inner: RefCell<PoolAllocator>,
    waiters: RefCell<VecDeque<(u64, AllocCallback)>>,
}

impl SimBufferPool {
    /// A pool over `size` bytes.
    pub fn new(size: u64) -> SimBufferPool {
        SimBufferPool {
            inner: RefCell::new(PoolAllocator::new(size)),
            waiters: RefCell::new(VecDeque::new()),
        }
    }

    /// Allocate `len` bytes; `ready` is invoked immediately if space is
    /// available, otherwise when deallocations make the head of the wait
    /// queue satisfiable. FIFO order prevents starvation of large requests.
    pub fn alloc(&self, len: u64, ready: impl FnOnce(PoolBuf) + 'static) {
        assert!(
            len <= self.inner.borrow().size(),
            "request of {len} bytes exceeds pool of {} bytes",
            self.inner.borrow().size()
        );
        let satisfiable_now = self.waiters.borrow().is_empty();
        if satisfiable_now {
            if let Some(buf) = self.inner.borrow_mut().alloc(len) {
                ready(buf);
                return;
            }
        }
        self.waiters.borrow_mut().push_back((len, Box::new(ready)));
    }

    /// Free a span; serves queued waiters in FIFO order while they fit.
    pub fn free(&self, buf: PoolBuf) {
        self.inner.borrow_mut().free(buf);
        loop {
            let grant = {
                let waiters = self.waiters.borrow();
                match waiters.front() {
                    Some(&(len, _)) => self.inner.borrow_mut().alloc(len),
                    None => None,
                }
            };
            match grant {
                Some(buf) => {
                    let (_, cb) = self.waiters.borrow_mut().pop_front().expect("non-empty");
                    cb(buf);
                }
                None => break,
            }
        }
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.inner.borrow().free_bytes()
    }

    /// Waiters queued for space.
    pub fn queued_waiters(&self) -> usize {
        self.waiters.borrow().len()
    }
}

impl fmt::Debug for SimBufferPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimBufferPool")
            .field("free_bytes", &self.free_bytes())
            .field("waiters", &self.queued_waiters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn first_fit_takes_earliest_block() {
        let mut p = PoolAllocator::new(1024);
        let a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(b.offset, 100);
        p.free(a);
        // First fit reuses the hole at 0 even though the tail is larger.
        let c = p.alloc(50).unwrap();
        assert_eq!(c.offset, 0);
        p.check_invariants();
    }

    #[test]
    fn merge_on_free_restores_contiguity() {
        let mut p = PoolAllocator::new(300);
        let a = p.alloc(100).unwrap();
        let b = p.alloc(100).unwrap();
        let c = p.alloc(100).unwrap();
        assert!(p.alloc(1).is_none());
        // Free out of order: a, c, then b — must coalesce into one extent.
        p.free(a);
        p.free(c);
        assert_eq!(p.fragments(), 2);
        p.free(b);
        assert_eq!(p.fragments(), 1);
        assert_eq!(p.free_bytes(), 300);
        assert_eq!(p.alloc(300).unwrap().offset, 0);
        p.check_invariants();
    }

    #[test]
    fn fragmentation_blocks_large_contiguous_request() {
        let mut p = PoolAllocator::new(300);
        let a = p.alloc(100).unwrap();
        let _b = p.alloc(100).unwrap();
        let c = p.alloc(100).unwrap();
        p.free(a);
        p.free(c);
        // 200 bytes free but not contiguous.
        assert_eq!(p.free_bytes(), 200);
        assert!(p.alloc(150).is_none());
        assert!(p.alloc(100).is_some());
        p.check_invariants();
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut p = PoolAllocator::new(100);
        let a = p.alloc(50).unwrap();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn sim_pool_queues_and_serves_fifo() {
        let p = SimBufferPool::new(100);
        let served: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let hold = Rc::new(Cell::new(None));
        {
            let hold = hold.clone();
            let served = served.clone();
            p.alloc(100, move |b| {
                served.borrow_mut().push("first");
                hold.set(Some(b));
            });
        }
        // These two must queue: pool is full.
        for name in ["second", "third"] {
            let served = served.clone();
            p.alloc(60, move |_| served.borrow_mut().push(name));
        }
        assert_eq!(p.queued_waiters(), 2);
        assert_eq!(*served.borrow(), vec!["first"]);
        // Freeing serves "second" (60 fits) but not "third" (only 40 left).
        p.free(hold.take().unwrap());
        assert_eq!(*served.borrow(), vec!["first", "second"]);
        assert_eq!(p.queued_waiters(), 1);
    }

    #[test]
    fn sim_pool_head_of_line_blocks_smaller_requests() {
        // FIFO strictness: a large queued request is not starved by later
        // small ones.
        let p = SimBufferPool::new(100);
        let hold = Rc::new(Cell::new(None));
        {
            let hold = hold.clone();
            p.alloc(80, move |b| hold.set(Some(b)));
        }
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        {
            let order = order.clone();
            p.alloc(90, move |_| order.borrow_mut().push("large"));
        }
        {
            let order = order.clone();
            p.alloc(10, move |_| order.borrow_mut().push("small"));
        }
        // 20 bytes are free and "small" would fit, but "large" is queued
        // ahead of it.
        assert_eq!(order.borrow().len(), 0);
        p.free(hold.take().unwrap());
        assert_eq!(*order.borrow(), vec!["large", "small"]);
    }

    #[test]
    #[should_panic(expected = "exceeds pool")]
    fn sim_pool_rejects_oversized_request() {
        let p = SimBufferPool::new(64);
        p.alloc(65, |_| {});
    }

    #[test]
    fn shared_pool_blocking_handoff_across_threads() {
        use std::sync::Arc;
        use std::thread;
        let pool = Arc::new(SharedBufferPool::new(128));
        let first = pool.try_alloc(128).unwrap();
        let p2 = pool.clone();
        let t = thread::spawn(move || {
            // Blocks until the main thread frees.
            let buf = p2.alloc_blocking(64);
            p2.free(buf);
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.free(first);
        assert!(t.join().unwrap());
        assert_eq!(pool.free_bytes(), 128);
    }

    #[test]
    fn shared_pool_concurrent_stress() {
        use std::sync::Arc;
        use std::thread;
        let pool = Arc::new(SharedBufferPool::new(1 << 20));
        let mut handles = Vec::new();
        for t in 0..8 {
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                for i in 0..500u64 {
                    let len = 1 + ((t * 131 + i * 17) % 8192);
                    let buf = pool.alloc_blocking(len);
                    assert_eq!(buf.len, len);
                    pool.free(buf);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_bytes(), 1 << 20, "all memory returned");
    }
}
