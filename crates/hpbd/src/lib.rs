#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # hpbd — the High Performance network Block Device (the paper's system)
//!
//! A faithful reimplementation of HPBD (Liang, Noronha, Panda — CLUSTER
//! 2005) over the workspace's simulated InfiniBand verbs:
//!
//! * [`pool`] — the pre-registered buffer pool (paper §4.2.2): a first-fit
//!   allocator with merge-on-free over one registered region, plus an
//!   allocation wait queue. Provided both as a thread-safe allocator
//!   ([`pool::SharedBufferPool`], parking_lot-based, exercised by real
//!   multithreaded stress tests — the driver is a shared resource and the
//!   paper calls out thread safety as a design issue) and as an event-based
//!   wrapper for the simulation ([`pool::SimBufferPool`]).
//! * [`proto`] — the wire protocol: control messages carrying request id,
//!   operation, server offset and the client buffer's rkey/offset, plus
//!   acknowledgement replies; all messages carry a signature that is
//!   validated on receipt (paper §4.1, reliability).
//! * [`client`] — the block-device driver ([`client::HpbdClient`]):
//!   asynchronous sender/receiver design around a shared completion queue,
//!   water-mark credit flow control (paper §4.2.4), multi-server support
//!   with non-striped blocking distribution of the swap area and request
//!   splitting at extent boundaries (paper §4.2.5).
//! * [`server`] — the memory server daemon ([`server::HpbdServer`]):
//!   RamDisk-backed store, **server-initiated RDMA** (RDMA READ pulls
//!   swap-out data from the client, RDMA WRITE pushes swap-in data into
//!   it — paper §4.2.1, Figure 4), staging buffers allowing RDMA/memcpy
//!   overlap, solicited-event replies, and the 200 µs idle sleep.
//! * [`cluster`] — wiring: [`cluster::ClusterBuilder`] builds a client
//!   plus N servers on a fabric (the out-of-band QP exchange the paper
//!   performs over sockets) and arms an optional deterministic
//!   [`simfault::FaultPlan`] against the deployment.

pub mod client;
pub mod cluster;
pub mod config;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{ClientStats, HpbdClient};
pub use cluster::{ClusterBuilder, HpbdCluster};
pub use config::HpbdConfig;
pub use pool::{PoolAllocator, SharedBufferPool, SimBufferPool};
pub use server::{HpbdServer, ServerStats};
