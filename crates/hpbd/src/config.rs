//! HPBD tuning parameters.

/// How the swap area maps onto the memory servers (paper §4.2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// The paper's choice: contiguous per-server extents, requests split
    /// only at extent boundaries.
    Blocking,
    /// The alternative the paper argues against: round-robin stripes, so
    /// one request fans out across servers. Implemented for the ablation
    /// study.
    Striped {
        /// Stripe unit in bytes (page-multiple).
        stripe_bytes: u64,
    },
}

/// How the client stages page data for RDMA (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingMode {
    /// The paper's choice: memcpy pages through the pre-registered pool.
    CopyToPool,
    /// The alternative Figure 3 rules out: register the page buffers with
    /// the HCA on the fly for each request (zero-copy, but the
    /// registration cost lands on the critical path). Implemented for the
    /// ablation study and as the hook for the paper's zero-copy future
    /// work.
    RegisterOnFly,
}

/// Configuration of the HPBD client and servers.
#[derive(Clone, Debug)]
pub struct HpbdConfig {
    /// Client registered buffer pool size (paper default: 1 MiB,
    /// initialised at device load time).
    pub pool_size: u64,
    /// Server staging buffer pool size.
    pub server_staging_size: u64,
    /// Flow-control water-mark: maximum outstanding requests per server
    /// (equals the receive buffers pre-posted at each end).
    pub credits: usize,
    /// Server idle time before it yields the CPU and sleeps (paper:
    /// 200 µs).
    pub server_idle_ns: u64,
    /// Client CPU cost to process one reply in the receiver thread.
    pub reply_proc_ns: u64,
    /// Server CPU cost to parse and dispatch one request.
    pub request_proc_ns: u64,
    /// Swap-area-to-server mapping.
    pub distribution: Distribution,
    /// Data staging strategy.
    pub staging: StagingMode,
    /// Mirror every write to a second server (RRMP-style reliability,
    /// paper §4.1's pointer to \[6\]/\[13\]): a write completes only when both
    /// copies are acknowledged; reads come from the primary.
    pub mirror_writes: bool,
    /// Remapping granularity for dynamic memory, in bytes: the swap area
    /// maps to server storage in chunks of this size, and revocation /
    /// migration moves whole chunks. Page-multiple.
    pub chunk_bytes: u64,
    /// Spare chunks each server exports beyond its extent, used as
    /// migration targets when another server revokes memory (the dynamic
    /// cooperative mode; 0 disables).
    pub spare_chunks: usize,
    /// Request timeout for failover, in ns. `Some(t)`: a request
    /// unanswered after `t` marks its server dead and re-routes to the
    /// buddy's replica region (requires `mirror_writes`). `None` (default):
    /// no timeouts are armed — a lost server stalls I/O forever, matching
    /// the paper's scope ("these issues are out of the scope of this
    /// paper").
    pub request_timeout_ns: Option<u64>,
    /// How many times a timed-out or link-failed request is retried on the
    /// SAME server before the server is declared dead, with exponential
    /// backoff (timeout doubles per attempt, capped at 8x). 0 (default):
    /// the first timeout declares the server dead, matching the pre-fault
    /// behaviour. Only meaningful with `request_timeout_ns`.
    pub max_retries: u32,
    /// Coalesce per-server request bursts into merged multi-extent wire
    /// messages served by one scatter-gather RDMA each, and ring one
    /// doorbell per burst (RDMAbox-style batching). `false` (default):
    /// one control message per split part, matching the paper exactly.
    pub batching: bool,
    /// How long a batched part may wait for mergeable neighbours, in ns.
    /// 0 (default): same-tick coalescing only — parts staged at the same
    /// virtual instant merge, an isolated demand fault is never delayed.
    /// Larger windows trade first-part latency for bigger merges. Only
    /// meaningful with `batching`.
    pub merge_window_ns: u64,
    /// Most parts one merged message may carry; clamped to the wire
    /// format's `proto::MAX_MERGE_SEGMENTS`. Only meaningful with
    /// `batching`.
    pub max_merge_segments: usize,
}

impl Default for HpbdConfig {
    fn default() -> HpbdConfig {
        HpbdConfig {
            pool_size: 1 << 20,
            server_staging_size: 1 << 20,
            credits: 16,
            server_idle_ns: 200_000,
            reply_proc_ns: 600,
            request_proc_ns: 800,
            distribution: Distribution::Blocking,
            staging: StagingMode::CopyToPool,
            mirror_writes: false,
            chunk_bytes: 1 << 20,
            spare_chunks: 0,
            request_timeout_ns: None,
            max_retries: 0,
            batching: false,
            merge_window_ns: 0,
            max_merge_segments: crate::proto::MAX_MERGE_SEGMENTS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HpbdConfig::default();
        assert_eq!(c.pool_size, 1 << 20, "1MB default pool (paper §4.2.2)");
        assert_eq!(c.server_idle_ns, 200_000, "200us idle sleep (paper §4.2.3)");
        assert!(c.credits > 0);
        assert_eq!(
            c.distribution,
            Distribution::Blocking,
            "non-striping (§4.2.5)"
        );
        assert_eq!(
            c.staging,
            StagingMode::CopyToPool,
            "copy beats register (§4.1)"
        );
        assert!(!c.mirror_writes, "mirroring is out of the paper's scope");
        assert!(!c.batching, "batching is a post-paper optimisation");
        assert_eq!(c.merge_window_ns, 0, "same-tick coalescing by default");
        assert_eq!(c.max_merge_segments, crate::proto::MAX_MERGE_SEGMENTS);
    }
}
