//! Property tests for the first-fit staging-pool allocator (paper §3.2):
//! live allocations never overlap, freeing everything reclaims every byte
//! into a single extent, and merge-on-free coalesces adjacent neighbours.

use hpbd::pool::{PoolAllocator, PoolBuf};
use simcore::SimRng;

const POOL_SIZE: u64 = 1 << 20;

fn for_cases(cases: u64, mut f: impl FnMut(u64, &mut SimRng)) {
    for case in 0..cases {
        let mut rng = SimRng::new(0x9E37_79B9_7F4A_7C15 ^ (case * 0x100_0000_01B3));
        f(case, &mut rng);
    }
}

fn assert_no_overlap(live: &[PoolBuf]) {
    let mut spans: Vec<(u64, u64)> = live.iter().map(|b| (b.offset, b.len)).collect();
    spans.sort();
    for w in spans.windows(2) {
        let (a_off, a_len) = w[0];
        let (b_off, _) = w[1];
        assert!(
            a_off + a_len <= b_off,
            "live allocations overlap: [{a_off}, {}) and [{b_off}, ..)",
            a_off + a_len
        );
    }
    for &(off, len) in &spans {
        assert!(off + len <= POOL_SIZE, "allocation past pool end");
    }
}

#[test]
fn live_allocations_never_overlap() {
    for_cases(128, |_case, rng| {
        let mut pool = PoolAllocator::new(POOL_SIZE);
        let mut live: Vec<PoolBuf> = Vec::new();
        for _ in 0..256 {
            if !live.is_empty() && rng.below(3) == 0 {
                let victim = rng.below(live.len() as u64) as usize;
                pool.free(live.swap_remove(victim));
            } else {
                let len = 1 + rng.below(POOL_SIZE / 16);
                if let Some(buf) = pool.alloc(len) {
                    assert_eq!(buf.len, len);
                    live.push(buf);
                }
            }
            assert_no_overlap(&live);
            pool.check_invariants();
            let live_bytes: u64 = live.iter().map(|b| b.len).sum();
            assert_eq!(pool.free_bytes(), POOL_SIZE - live_bytes);
        }
    });
}

#[test]
fn free_all_reclaims_every_byte() {
    for_cases(128, |case, rng| {
        let mut pool = PoolAllocator::new(POOL_SIZE);
        let mut live: Vec<PoolBuf> = Vec::new();
        while let Some(buf) = pool.alloc(1 + rng.below(POOL_SIZE / 8)) {
            live.push(buf);
            if pool.free_bytes() == 0 {
                break;
            }
        }
        assert!(!live.is_empty(), "case {case}: nothing allocated");
        // Free in a random order: full-byte reclamation must not depend on
        // the release sequence.
        rng.shuffle(&mut live);
        for buf in live.drain(..) {
            pool.free(buf);
            pool.check_invariants();
        }
        assert_eq!(pool.free_bytes(), POOL_SIZE);
        // Coalescing must leave exactly one extent spanning the pool:
        // a full-size allocation succeeds again.
        assert_eq!(pool.fragments(), 1, "case {case}: free list not coalesced");
        let whole = pool
            .alloc(POOL_SIZE)
            .expect("whole-pool alloc after free-all");
        assert_eq!((whole.offset, whole.len), (0, POOL_SIZE));
    });
}

#[test]
fn merge_on_free_coalesces_neighbours() {
    // Carve the pool into equal slots, then free a middle slot's
    // neighbours around it in both orders: each free must merge with the
    // hole next to it instead of leaving three fragments.
    let slot = POOL_SIZE / 8;
    for order in 0..2 {
        let mut pool = PoolAllocator::new(POOL_SIZE);
        let bufs: Vec<PoolBuf> = (0..8).map(|_| pool.alloc(slot).expect("carve")).collect();
        // All allocated: zero free extents.
        assert_eq!(pool.free_bytes(), 0);
        let (a, b, c) = (bufs[2], bufs[3], bufs[4]);
        if order == 0 {
            // left hole, then middle: middle merges into left.
            pool.free(a);
            assert_eq!(pool.fragments(), 1);
            pool.free(b);
            assert_eq!(pool.fragments(), 1, "free did not merge with left hole");
            pool.free(c);
            assert_eq!(pool.fragments(), 1, "free did not merge with right hole");
        } else {
            // right hole, then middle, then left: merges on both sides.
            pool.free(c);
            assert_eq!(pool.fragments(), 1);
            pool.free(a);
            assert_eq!(pool.fragments(), 2);
            pool.free(b);
            assert_eq!(pool.fragments(), 1, "free did not bridge both holes");
        }
        pool.check_invariants();
        // The merged hole is allocatable as one span of 3 slots.
        let merged = pool.alloc(3 * slot).expect("merged span alloc");
        assert_eq!(merged.offset, 2 * slot);
    }
}
