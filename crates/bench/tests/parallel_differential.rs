//! Parallel-differential oracle: sharding a figure's cells across the
//! conservative parallel engine must be *observationally invisible*. For
//! fig5, fig9, and figR (fault plans included) every observable — the full
//! debug-formatted reports (metrics snapshots, event counts, flight-recorder
//! dumps) and the byte-exact Chrome trace export with its FNV fingerprint —
//! must be identical between the sequential reference runner and
//! `--sim-threads` at 1, 2, 4, and 8.
//!
//! The final test is the counter-oracle: a deliberately perturbed
//! cross-partition merge order *must* change the observables, proving the
//! differential would catch a racy or mis-keyed merge rather than passing
//! vacuously.

use bench::figures::{fig5, fig9, figr};
use bench::{CommonArgs, Runner};
use simcore::TraceSession;

/// FNV-1a over a rendered export: a compact fingerprint that pins every
/// byte (the kind CI uploads next to the figure artifacts).
fn fnv(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf29ce484222325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Small-scale figure args with the flight recorder on, so the differential
/// also covers the lifecycle dumps embedded in each report.
fn args(scale: u64, seed: u64) -> CommonArgs {
    CommonArgs {
        scale,
        seed,
        lifecycle: true,
        ..CommonArgs::default()
    }
}

fn fig5_under(runner: &Runner) -> (String, String) {
    let args = args(256, 7);
    let mut session = TraceSession::new(true);
    let reports = fig5::run_parallel(&args, &mut session, runner);
    (format!("{reports:#?}"), session.to_chrome_json())
}

fn fig9_under(runner: &Runner) -> (String, String) {
    // Scale 1024 keeps the five-way sweep fast; byte-identity is the
    // oracle here, and it is scale-invariant.
    let args = args(1024, 3);
    let mut session = TraceSession::new(true);
    let reports = fig9::run_parallel(&args, &mut session, runner);
    (format!("{reports:#?}"), session.to_chrome_json())
}

fn figr_under(runner: &Runner) -> String {
    format!("{:#?}", figr::run_parallel(&args(1024, 3), runner))
}

const SIM_THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn fig5_is_byte_identical_at_any_sim_thread_count() {
    let (want_reports, want_trace) = fig5_under(&Runner::sequential());
    assert!(
        want_trace.len() > 10_000,
        "trace must be non-trivial for the comparison to mean anything"
    );
    assert!(
        want_reports.contains("FlightSummary"),
        "reports must embed the flight-recorder dumps"
    );
    let want_fnv = fnv(want_trace.as_bytes());
    for t in SIM_THREADS {
        let (reports, trace) = fig5_under(&Runner::sequential().with_sim_threads(t));
        assert_eq!(
            reports, want_reports,
            "fig5 reports diverged at {t} sim threads"
        );
        assert_eq!(
            fnv(trace.as_bytes()),
            want_fnv,
            "fig5 trace fingerprint diverged at {t} sim threads"
        );
        assert_eq!(
            trace, want_trace,
            "fig5 trace bytes diverged at {t} sim threads"
        );
    }
}

#[test]
fn fig9_is_byte_identical_at_any_sim_thread_count() {
    let (want_reports, want_trace) = fig9_under(&Runner::sequential());
    assert!(want_trace.len() > 10_000);
    let want_fnv = fnv(want_trace.as_bytes());
    for t in SIM_THREADS {
        let (reports, trace) = fig9_under(&Runner::sequential().with_sim_threads(t));
        assert_eq!(
            reports, want_reports,
            "fig9 reports diverged at {t} sim threads"
        );
        assert_eq!(
            fnv(trace.as_bytes()),
            want_fnv,
            "fig9 trace fingerprint diverged at {t} sim threads"
        );
        assert_eq!(
            trace, want_trace,
            "fig9 trace bytes diverged at {t} sim threads"
        );
    }
}

#[test]
fn figr_with_fault_plans_is_byte_identical_at_any_sim_thread_count() {
    let want = figr_under(&Runner::sequential());
    assert!(
        want.contains("fault_ms: Some"),
        "the crash cell must actually have faulted"
    );
    for t in SIM_THREADS {
        let got = figr_under(&Runner::sequential().with_sim_threads(t));
        assert_eq!(got, want, "figR diverged at {t} sim threads");
    }
}

/// Counter-oracle: prove the harness *can* fail. A topology whose sink is
/// hammered by same-tick cross-partition sends is run once clean and once
/// with the engine's test-only merge perturbation (tie-break by inverted
/// source id). The perturbed observables must differ from the reference —
/// if they did not, every assertion above would be vacuous.
#[test]
fn a_perturbed_merge_order_is_caught_by_the_differential() {
    use simcore::parallel::{
        LogicalProcess, Message, ParallelEngine, PartitionCtx, PartitionId, Topology,
    };
    use simcore::{SimDuration, SimTime};
    use std::sync::{Arc, Mutex};

    struct Sender {
        sink: PartitionId,
        me: u64,
        rounds: u64,
    }
    impl LogicalProcess for Sender {
        fn init(&mut self, ctx: &mut PartitionCtx<'_, '_>) {
            ctx.send_self(SimDuration::ZERO, Box::new(0u64));
        }
        fn handle(&mut self, _now: SimTime, msg: Message, ctx: &mut PartitionCtx<'_, '_>) {
            let round = *msg.downcast::<u64>().unwrap();
            ctx.send(
                self.sink,
                SimDuration::from_nanos(10),
                Box::new(self.me * 1000 + round),
            );
            if round + 1 < self.rounds {
                ctx.send_self(SimDuration::from_nanos(10), Box::new(round + 1));
            }
        }
    }
    struct Sink {
        log: Arc<Mutex<Vec<u64>>>,
    }
    impl LogicalProcess for Sink {
        fn handle(&mut self, _now: SimTime, msg: Message, _ctx: &mut PartitionCtx<'_, '_>) {
            self.log
                .lock()
                .unwrap()
                .push(*msg.downcast::<u64>().unwrap());
        }
    }

    let run = |perturb: bool, threads: Option<usize>| -> Vec<u64> {
        let log = Arc::new(Mutex::new(Vec::new()));
        let mut topo = Topology::new();
        let senders = 4;
        let sink_id = PartitionId(senders);
        for me in 0..senders {
            topo.add_partition(Box::new(Sender {
                sink: sink_id,
                me: me as u64,
                rounds: 16,
            }));
        }
        let sink = topo.add_partition(Box::new(Sink { log: log.clone() }));
        for me in 0..senders {
            topo.connect(PartitionId(me), sink, SimDuration::from_nanos(10));
        }
        let mut engine = ParallelEngine::new(topo);
        if perturb {
            engine.perturb_merge_for_test();
        }
        match threads {
            Some(t) => engine.run(t),
            None => engine.run_sequential(),
        };
        let out = log.lock().unwrap().clone();
        out
    };

    let reference = run(false, None);
    assert_eq!(reference.len(), 4 * 16);
    for t in SIM_THREADS {
        assert_eq!(run(false, Some(t)), reference, "clean run diverged at {t}");
    }
    let perturbed = run(true, Some(4));
    assert_ne!(
        perturbed, reference,
        "the perturbed merge must be observable, or the oracle is vacuous"
    );
}
