//! Differential oracle: the timing-wheel scheduler must be observationally
//! identical to the reference binary heap on a real figure workload — same
//! reports, same event counts, and byte-identical trace exports (which pin
//! the complete event execution order, since trace events are appended in
//! execution order).

use bench::figures::fig5;
use bench::CommonArgs;
use simcore::{set_default_scheduler, SchedulerKind, TraceSession};

/// Run Figure 5 at its smallest test scale under the given scheduler,
/// returning the full debug-formatted reports and the exported trace.
fn fig5_under(kind: SchedulerKind) -> (String, String) {
    let prev = set_default_scheduler(kind);
    let args = CommonArgs {
        scale: 256,
        seed: 7,
        ..CommonArgs::default()
    };
    let mut session = TraceSession::new(true);
    let reports = fig5::run_traced(&args, &mut session);
    set_default_scheduler(prev);
    // `{reports:#?}` covers every field, including the metrics snapshot
    // and the engine event count, so any behavioural divergence shows up.
    (format!("{reports:#?}"), session.to_chrome_json())
}

#[test]
fn timing_wheel_matches_reference_heap_on_figure5() {
    let (wheel_reports, wheel_trace) = fig5_under(SchedulerKind::TimingWheel);
    let (heap_reports, heap_trace) = fig5_under(SchedulerKind::ReferenceHeap);
    assert_eq!(
        wheel_reports, heap_reports,
        "figure tables must not depend on the scheduler implementation"
    );
    assert_eq!(
        wheel_trace, heap_trace,
        "event execution order (pinned by the trace export) must match"
    );
    assert!(
        wheel_trace.len() > 10_000,
        "trace must be non-trivial for the comparison to mean anything"
    );
}
