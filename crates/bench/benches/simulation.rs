//! Criterion end-to-end benchmarks: wall-clock cost of running complete
//! simulated experiments at small scale. These are the "figure pipeline"
//! benchmarks — `cargo bench` exercises the same code paths the figure
//! binaries use, so a slowdown here means slower experiment turnaround.

use criterion::{criterion_group, criterion_main, Criterion};
use netmodel::Transport;
use workloads::{Scenario, ScenarioConfig, SwapKind};

const MB: u64 = 1 << 20;

fn bench_testswap(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_testswap_4MiB");
    g.sample_size(10);
    for (name, kind) in [
        ("hpbd", SwapKind::Hpbd { servers: 1 }),
        (
            "nbd_gige",
            SwapKind::Nbd {
                transport: Transport::GigE,
            },
        ),
        ("disk", SwapKind::Disk),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let config = ScenarioConfig::new(2 * MB, 8 * MB, kind.clone());
                let scenario = Scenario::build(&config);
                scenario.run_testswap(1 << 20)
            });
        });
    }
    g.finish();
}

fn bench_qsort(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_quicksort_1MiB");
    g.sample_size(10);
    g.bench_function("hpbd_paged", |b| {
        b.iter(|| {
            let config = ScenarioConfig::new(MB, 8 * MB, SwapKind::Hpbd { servers: 2 });
            let scenario = Scenario::build(&config);
            scenario.run_qsort(256 * 1024, 7)
        });
    });
    g.bench_function("in_memory", |b| {
        b.iter(|| {
            let config = ScenarioConfig::new(64 * MB, 8 * MB, SwapKind::LocalOnly);
            let scenario = Scenario::build(&config);
            scenario.run_qsort(256 * 1024, 7)
        });
    });
    g.finish();
}

fn bench_paging_fault_path(c: &mut Criterion) {
    use vmsim::{AddressSpace, PagedVec};
    let mut g = c.benchmark_group("vm_fault_path");
    g.sample_size(10);
    g.bench_function("sequential_sweep_2x_memory", |b| {
        b.iter(|| {
            let config = ScenarioConfig::new(MB, 8 * MB, SwapKind::Hpbd { servers: 1 });
            let scenario = Scenario::build(&config);
            let space = AddressSpace::new(&scenario.vm);
            let v: PagedVec<i64> = PagedVec::new(&space, 256 * 1024);
            for i in 0..v.len() {
                v.set(i, i as i64);
            }
            scenario.vm.stats().swap_outs
        });
    });
    g.finish();
}

criterion_group!(benches, bench_testswap, bench_qsort, bench_paging_fault_path);
criterion_main!(benches);
