//! Criterion microbenchmarks for the building blocks: real (wall-clock)
//! performance of the simulator's hot paths. These guard the usability of
//! the suite — paper-scale figure runs execute hundreds of millions of
//! paged accesses and millions of events, so regressions here directly
//! inflate experiment turnaround.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use hpbd::PoolAllocator;
use simcore::{Engine, SimDuration, SimTime};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));

    g.bench_function("schedule_and_run_event", |b| {
        let engine = Engine::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            engine.schedule_at(SimTime(t), || {});
            engine.run_until_idle();
        });
    });

    g.bench_function("event_cascade_1000", |b| {
        b.iter_batched(
            Engine::new,
            |engine| {
                fn chain(engine: &Engine, left: u32) {
                    if left > 0 {
                        let e2 = engine.clone();
                        engine.schedule_in(SimDuration::from_nanos(10), move || {
                            chain(&e2, left - 1)
                        });
                    }
                }
                chain(&engine, 1000);
                engine.run_until_idle();
                black_box(engine.now())
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    g.throughput(Throughput::Elements(1));

    g.bench_function("alloc_free_first_fit", |b| {
        let mut pool = PoolAllocator::new(1 << 20);
        b.iter(|| {
            let buf = pool.alloc(black_box(4096)).expect("fits");
            pool.free(buf);
        });
    });

    g.bench_function("fragmented_alloc_free", |b| {
        // Pre-fragment: allocate 64 blocks, free every other one.
        let mut pool = PoolAllocator::new(1 << 20);
        let blocks: Vec<_> = (0..64).map(|_| pool.alloc(8192).expect("fits")).collect();
        for (i, buf) in blocks.into_iter().enumerate() {
            if i % 2 == 0 {
                pool.free(buf);
            }
        }
        b.iter(|| {
            let buf = pool.alloc(black_box(8192)).expect("fits");
            pool.free(buf);
        });
    });
    g.finish();
}

fn bench_shared_pool_contended(c: &mut Criterion) {
    use hpbd::SharedBufferPool;
    use std::sync::Arc;

    let mut g = c.benchmark_group("shared_pool");
    g.bench_function("contended_8_threads", |b| {
        b.iter_custom(|iters| {
            let pool = Arc::new(SharedBufferPool::new(1 << 20));
            let start = std::time::Instant::now();
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let pool = pool.clone();
                    std::thread::spawn(move || {
                        for i in 0..iters {
                            let len = 1 + ((t * 997 + i * 13) % 4096);
                            let buf = pool.alloc_blocking(len);
                            pool.free(buf);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
            start.elapsed()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engine, bench_pool, bench_shared_pool_contended);
criterion_main!(benches);
