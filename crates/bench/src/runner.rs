//! Parallel sweep runner: fan independent figure cells across OS threads.
//!
//! A figure sweep is a list of *cells* — (configuration, seed) pairs whose
//! simulations share nothing. Each cell builds its whole machine inside
//! the worker thread (`ScenarioConfig` and the `Rc`-based simulation state
//! are intentionally not `Send`), runs to completion, and returns only
//! plain data: the [`RunReport`](workloads::RunReport) and, when tracing,
//! the cell's event buffer. The caller reassembles results **in cell
//! order**, so tables, metrics and exported traces are byte-identical to a
//! sequential run regardless of thread count or completion order.
//!
//! Work is distributed by an atomic take-a-number queue rather than static
//! chunking: cells in one figure differ in cost by an order of magnitude
//! (disk paging vs local memory), and a shared counter keeps the long
//! cells from serializing behind short ones.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread-count policy for a sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
    sim_threads: usize,
}

impl Runner {
    /// Run cells inline on the calling thread, in order (the default for
    /// the figure binaries — identical to the pre-runner behaviour).
    pub fn sequential() -> Runner {
        Runner {
            threads: 1,
            sim_threads: 1,
        }
    }

    /// Use exactly `threads` workers (0 means auto).
    pub fn with_threads(threads: usize) -> Runner {
        Runner {
            threads: if threads == 0 {
                auto_threads()
            } else {
                threads
            },
            sim_threads: 1,
        }
    }

    /// One worker per available core.
    pub fn auto() -> Runner {
        Runner::with_threads(auto_threads())
    }

    /// Route this runner's cells through the conservative parallel engine
    /// (`simcore::parallel`) with `sim_threads` workers (0 means auto).
    /// The federation claims cells exactly like the sweep pool but runs
    /// them as logical processes of one [`ParallelEngine`]
    /// (`simcore::parallel::ParallelEngine`) — same deterministic
    /// cell-order reassembly, so output stays byte-identical. A value of 1
    /// leaves the plain sweep path untouched.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Runner {
        self.sim_threads = if sim_threads == 0 {
            auto_threads()
        } else {
            sim_threads
        };
        self
    }

    /// Worker count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel-engine worker count (1 = sweep path).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Run `cells` independent cells through `f`, returning results in
    /// cell order. With one thread (or one cell) this is exactly
    /// `(0..cells).map(f).collect()` — no threads are spawned, so
    /// thread-local state (e.g. the default scheduler kind) still applies.
    pub fn run_cells<T, F>(&self, cells: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.sim_threads > 1 {
            return simcore::parallel::run_cells(self.sim_threads, cells, f);
        }
        if self.threads <= 1 || cells <= 1 {
            return (0..cells).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(cells) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells {
                        break;
                    }
                    let value = f(i);
                    *slots[i].lock().unwrap() = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every cell index below `cells` is claimed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_runs_inline_in_order() {
        let seen = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        let out = Runner::sequential().run_cells(4, |i| {
            // Running on the caller's thread proves no workers were
            // spawned (thread-local state like the default scheduler
            // kind must keep applying).
            assert_eq!(std::thread::current().id(), caller);
            seen.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_preserves_cell_order() {
        // Make early cells slow so later cells finish first; results must
        // still come back in cell order.
        let out = Runner::with_threads(4).run_cells(8, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(Runner::with_threads(0).threads() >= 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: usize| (i as u64 + 1) * 7;
        let seq = Runner::sequential().run_cells(13, f);
        let par = Runner::with_threads(3).run_cells(13, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn sim_threads_route_matches_sequential() {
        let f = |i: usize| (i as u64 + 1) * 7;
        let seq = Runner::sequential().run_cells(13, f);
        for t in [2, 4, 8] {
            let fed = Runner::sequential().with_sim_threads(t).run_cells(13, f);
            assert_eq!(seq, fed, "sim_threads={t}");
        }
    }

    #[test]
    fn zero_sim_threads_means_auto() {
        assert!(Runner::sequential().with_sim_threads(0).sim_threads() >= 1);
        assert_eq!(Runner::sequential().sim_threads(), 1);
    }
}
