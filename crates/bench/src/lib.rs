//! # bench — the experiment harness
//!
//! One regeneration function per table/figure of the paper's evaluation
//! (§6), each with a thin binary wrapper (`cargo run --release -p bench
//! --bin fig5`) and a row in EXPERIMENTS.md:
//!
//! | target | content |
//! |---|---|
//! | [`figures::fig1`]  | latency: memcpy / RDMA write / IPoIB / GigE, 1 B–128 KiB |
//! | [`figures::fig3`]  | memory registration vs memcpy cost |
//! | [`figures::fig5`]  | testswap execution time across swap devices |
//! | [`figures::fig6`]  | testswap request-size profile per request cluster |
//! | [`figures::fig7`]  | quicksort execution time across swap devices |
//! | [`figures::fig8`]  | Barnes execution time across swap devices |
//! | [`figures::fig9`]  | two concurrent quicksorts, multi-server HPBD |
//! | [`figures::fig10`] | quicksort vs number of memory servers (1–16) |
//! | `table1` binary    | the related-work taxonomy with HPBD's row |
//!
//! All workload figures accept a **scale divisor**: the paper's sizes
//! (1 GiB dataset, 512 MiB local memory, 2 GiB for the baseline) divided by
//! `scale`. Ratios between configurations are scale-invariant in this
//! simulation, which is what the reproduction targets — see EXPERIMENTS.md
//! for paper-vs-measured at the default scale of 16.
#![forbid(unsafe_code)]

pub mod args;
pub mod figures;
pub mod report;
pub mod runner;

pub use args::CommonArgs;
pub use report::{print_rows, ratio, Row};
pub use runner::Runner;
