//! Command-line arguments shared by the figure binaries.

use std::path::PathBuf;

/// Parsed common arguments.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    /// Scale divisor applied to the paper's sizes (default 16:
    /// 64 MiB dataset against 32 MiB of local memory).
    pub scale: u64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Write a Chrome trace-event file here (`--trace PATH`).
    pub trace: Option<PathBuf>,
    /// Print per-configuration metrics summaries (`--metrics`).
    pub metrics: bool,
    /// Record per-request lifecycle phases into the flight recorder
    /// (`--lifecycle`). Off by default: attribution marks cost wall time,
    /// so timed comparisons stay unchanged unless asked for.
    pub lifecycle: bool,
    /// Worker threads for figure sweeps (`--threads N`, 0 = one per
    /// core). Results are assembled in cell order, so the output is
    /// byte-identical at any thread count; the default of 1 runs inline.
    pub threads: usize,
    /// Worker threads *inside* one figure (`--sim-threads N`, 0 = one per
    /// core): the figure's cells run as logical processes of one
    /// `simcore::parallel::ParallelEngine` federation instead of the plain
    /// sweep pool. Output is byte-identical at any value; default 1.
    pub sim_threads: usize,
}

impl Default for CommonArgs {
    fn default() -> CommonArgs {
        CommonArgs {
            scale: 16,
            seed: 42,
            trace: None,
            metrics: false,
            lifecycle: false,
            threads: 1,
            sim_threads: 1,
        }
    }
}

impl CommonArgs {
    /// Parse `--scale N` and `--seed N` from the process arguments.
    /// Unknown arguments abort with usage help.
    pub fn parse() -> CommonArgs {
        let mut out = CommonArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| -> u64 {
                args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("{name} requires an integer value");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--scale" => {
                    out.scale = take("--scale").max(1);
                }
                "--seed" => {
                    out.seed = take("--seed");
                }
                "--trace" => {
                    let path = args.next().unwrap_or_else(|| {
                        eprintln!("--trace requires a file path");
                        std::process::exit(2);
                    });
                    out.trace = Some(PathBuf::from(path));
                }
                "--metrics" => {
                    out.metrics = true;
                }
                "--lifecycle" => {
                    out.lifecycle = true;
                }
                "--threads" => {
                    out.threads = take("--threads") as usize;
                }
                "--sim-threads" => {
                    out.sim_threads = take("--sim-threads") as usize;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale N] [--seed N] [--trace PATH] [--metrics] [--lifecycle] [--threads N] [--sim-threads N]"
                    );
                    eprintln!("  --scale N    divide the paper's sizes by N (default 16)");
                    eprintln!("  --seed N     workload RNG seed (default 42)");
                    eprintln!("  --trace PATH write a Chrome trace-event JSON (load in Perfetto)");
                    eprintln!("  --metrics    print per-configuration metrics summaries");
                    eprintln!(
                        "  --lifecycle  record per-request phase attribution (flight recorder)"
                    );
                    eprintln!("  --threads N  sweep worker threads (0 = one per core, default 1)");
                    eprintln!(
                        "  --sim-threads N  parallel-engine workers within one figure (0 = one per core, default 1)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument: {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The sweep runner selected by `--threads` / `--sim-threads`.
    pub fn runner(&self) -> crate::runner::Runner {
        crate::runner::Runner::with_threads(self.threads).with_sim_threads(self.sim_threads)
    }

    /// The paper's quantity divided by the scale, page-aligned.
    pub fn scaled_bytes(&self, paper_bytes: u64) -> u64 {
        ((paper_bytes / self.scale) / 4096).max(4) * 4096
    }

    /// The paper's element count divided by the scale.
    pub fn scaled_elems(&self, paper_elems: u64) -> usize {
        (paper_elems / self.scale).max(1024) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_is_page_aligned() {
        let a = CommonArgs {
            scale: 16,
            seed: 1,
            ..CommonArgs::default()
        };
        assert_eq!(a.scaled_bytes(1 << 30) % 4096, 0);
        assert_eq!(a.scaled_bytes(1 << 30), 64 << 20);
        assert_eq!(a.scaled_elems(256 << 20), 16 << 20);
    }

    #[test]
    fn tiny_scales_clamp() {
        let a = CommonArgs {
            scale: 1 << 40,
            seed: 1,
            ..CommonArgs::default()
        };
        assert!(a.scaled_bytes(1 << 30) >= 4 * 4096);
        assert!(a.scaled_elems(256 << 20) >= 1024);
    }
}
