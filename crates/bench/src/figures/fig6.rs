//! Figure 6: testswap average request size for each request cluster.
//!
//! The paper profiles the HPBD request stream during testswap and finds
//! the traffic dominated by ~120 KiB requests — sequential dirty pages,
//! contiguous swap slots, and block-layer merging up to the 128 KiB cap.
//! We reconstruct the same profile from the request queue's dispatch log:
//! a *request cluster* is a burst of dispatches separated from the next by
//! more than a quiet gap.

use super::{paper_sizes, standard_configs};
use crate::args::CommonArgs;
use blockdev::DispatchRecord;
use simcore::SimDuration;
use workloads::Scenario;

/// Gap that separates two request clusters.
const CLUSTER_GAP: SimDuration = SimDuration::from_micros(500);

/// One request cluster.
#[derive(Clone, Debug)]
pub struct Cluster {
    /// Cluster index in dispatch order.
    pub index: usize,
    /// Requests in the cluster.
    pub requests: usize,
    /// Mean request size in bytes.
    pub mean_bytes: f64,
}

/// The Figure 6 result: per-cluster profile plus aggregates.
#[derive(Clone, Debug)]
pub struct Profile {
    /// All request clusters in order.
    pub clusters: Vec<Cluster>,
    /// Mean request size over the whole run.
    pub overall_mean: f64,
    /// Mean over write (swap-out) requests only, the traffic the figure is
    /// about.
    pub write_mean: f64,
    /// Total dispatched requests.
    pub total_requests: usize,
}

/// Group a dispatch log into clusters.
pub fn clusterize(log: &[DispatchRecord]) -> Vec<Cluster> {
    let mut clusters = Vec::new();
    let mut start = 0usize;
    for i in 1..=log.len() {
        let boundary = i == log.len() || log[i].at.since(log[i - 1].at) > CLUSTER_GAP;
        if boundary {
            let slice = &log[start..i];
            let mean = slice.iter().map(|r| r.len as f64).sum::<f64>() / slice.len() as f64;
            clusters.push(Cluster {
                index: clusters.len(),
                requests: slice.len(),
                mean_bytes: mean,
            });
            start = i;
        }
    }
    clusters
}

/// Run testswap over HPBD and profile the request stream.
pub fn run(args: &CommonArgs) -> Profile {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    let (_, config) = standard_configs(args).into_iter().nth(1).expect("HPBD row");
    let scenario = Scenario::build(&config);
    scenario.run_testswap(elements);
    let log = scenario.dispatch_log().expect("HPBD has a swap queue");
    let log = log.borrow();
    let clusters = clusterize(&log);
    let total = log.len();
    let overall = log.iter().map(|r| r.len as f64).sum::<f64>() / total.max(1) as f64;
    let writes: Vec<&DispatchRecord> = log
        .iter()
        .filter(|r| r.op == blockdev::IoOp::Write)
        .collect();
    let write_mean = writes.iter().map(|r| r.len as f64).sum::<f64>() / writes.len().max(1) as f64;
    Profile {
        clusters,
        overall_mean: overall,
        write_mean,
        total_requests: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testswap_requests_are_large() {
        let args = CommonArgs {
            scale: 128,
            seed: 7,
            ..CommonArgs::default()
        };
        let profile = run(&args);
        assert!(profile.total_requests > 0);
        // The paper's point: ~120K requests dominate; at minimum, merging
        // must push the mean well past the page size.
        assert!(
            profile.write_mean > 16.0 * 4096.0,
            "write mean {} should be near the 128K cap",
            profile.write_mean
        );
    }

    #[test]
    fn clusterize_splits_on_gaps() {
        use blockdev::IoOp;
        use simcore::SimTime;
        let rec = |at_us: u64, len: u64| DispatchRecord {
            at: SimTime(at_us * 1_000),
            op: IoOp::Write,
            offset: 0,
            len,
            bios: (len / 4096) as usize,
        };
        let log = vec![rec(0, 4096), rec(100, 8192), rec(5_000, 16384)];
        let clusters = clusterize(&log);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].requests, 2);
        assert_eq!(clusters[0].mean_bytes, 6144.0);
        assert_eq!(clusters[1].requests, 1);
    }

    #[test]
    fn clusterize_empty_log() {
        assert!(clusterize(&[]).is_empty());
    }
}
