//! Figure 8: Barnes execution time across swap devices.
//!
//! The paper simulates 2,097,152 bodies (≈516 MB peak, growing
//! incrementally), against 512 MiB of local memory — so Barnes pages, but
//! far less intensively than quicksort, and the gaps between devices are
//! correspondingly smaller ("the improvement is less evident").

use super::{paper_sizes, standard_configs};
use crate::args::CommonArgs;
use workloads::barnes::BarnesParams;
use workloads::{RunReport, Scenario};

/// Run all five configurations; reports in the paper's order.
pub fn run(args: &CommonArgs) -> Vec<RunReport> {
    let bodies = (paper_sizes::BARNES_BODIES / args.scale).max(2048) as usize;
    standard_configs(args)
        .into_iter()
        .map(|(label, config)| {
            let scenario = Scenario::build(&config);
            let mut report = scenario.run_barnes(BarnesParams {
                bodies,
                iterations: 2,
                seed: args.seed,
                ..BarnesParams::default()
            });
            report.label = label;
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_ordering_and_mild_gaps() {
        let args = CommonArgs {
            scale: 256,
            seed: 5,
            ..CommonArgs::default()
        };
        let rows = run(&args);
        let t: Vec<f64> = rows.iter().map(|r| r.elapsed.as_secs_f64()).collect();
        // Same winner ordering as the other figures...
        assert!(t[0] <= t[1], "local <= HPBD");
        assert!(t[1] < t[4], "HPBD < disk");
        assert!(t[2] <= t[3], "IPoIB <= GigE");
        // HPBD must page at all for the comparison to be meaningful — the
        // paper's point is that Barnes pages lightly, not that it doesn't
        // page. (The disk-vs-HPBD gap narrows at realistic scale, where
        // compute dominates; see EXPERIMENTS.md at scale 16.)
        assert!(
            rows[1].vm.swap_outs > 0,
            "Barnes must page under 512MB-scaled"
        );
        let disk_vs_hpbd = t[4] / t[1];
        assert!(disk_vs_hpbd > 1.0, "disk slower than HPBD: {disk_vs_hpbd}");
    }
}
