//! Figure 3: memory registration vs memcpy cost.
//!
//! The design-driving observation: registering a buffer on the fly costs
//! far more than copying it for every size a swap request can take
//! (4 KiB–127 KiB), which is why HPBD copies pages through a pre-registered
//! pool (paper §4.1).

use netmodel::Calibration;

/// One size point (costs in microseconds).
#[derive(Clone, Debug)]
pub struct Point {
    /// Buffer size in bytes.
    pub size: u64,
    /// Registration cost.
    pub registration_us: f64,
    /// memcpy cost.
    pub memcpy_us: f64,
    /// Deregistration cost (the full on-the-fly cycle pays this too).
    pub deregistration_us: f64,
}

/// Sizes from one page up to 1 MiB.
pub fn sizes() -> Vec<u64> {
    (12..=20).map(|i| 1u64 << i).collect()
}

/// Produce every point of Figure 3.
pub fn run() -> Vec<Point> {
    let cal = Calibration::cluster_2005();
    sizes()
        .into_iter()
        .map(|size| Point {
            size,
            registration_us: cal.registration_time(size).as_micros_f64(),
            memcpy_us: cal.memcpy_time(size).as_micros_f64(),
            deregistration_us: cal.deregistration_time(size).as_micros_f64(),
        })
        .collect()
}

/// The size at which copying starts to cost more than registering — must
/// lie beyond the 128 KiB swap-request bound for HPBD's design choice to
/// hold.
pub fn crossover_size() -> Option<u64> {
    let cal = Calibration::cluster_2005();
    (1..=1024u64)
        .map(|i| i * 4096)
        .find(|&len| cal.memcpy_time(len) > cal.registration_time(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dominates_in_swap_range() {
        for p in run() {
            if p.size <= 127 * 1024 {
                assert!(
                    p.registration_us > p.memcpy_us,
                    "at {} registration must exceed memcpy",
                    p.size
                );
            }
        }
    }

    #[test]
    fn crossover_beyond_swap_requests() {
        let x = crossover_size().expect("crossover exists");
        assert!(x > 127 * 1024, "crossover {x} inside the swap range");
    }
}
