//! Figure 7: quicksort execution time across swap devices (single server).
//!
//! Paper (scale 1): local ≈ 94 s, HPBD ≈ 138 s (memory 1.47× faster), HPBD
//! 4.5× faster than local disk, 1.36× faster than NBD-GigE and 1.13×
//! faster than NBD-IPoIB.

use super::{paper_sizes, standard_configs};
use crate::args::CommonArgs;
use workloads::{RunReport, Scenario};

/// Run all five configurations; reports in the paper's order.
pub fn run(args: &CommonArgs) -> Vec<RunReport> {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    standard_configs(args)
        .into_iter()
        .map(|(label, config)| {
            let scenario = Scenario::build(&config);
            let mut report = scenario.run_qsort(elements, args.seed);
            report.label = label;
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_ordering() {
        let args = CommonArgs {
            scale: 256,
            seed: 11,
            ..CommonArgs::default()
        };
        let rows = run(&args);
        let t: Vec<f64> = rows.iter().map(|r| r.elapsed.as_secs_f64()).collect();
        assert!(t[0] < t[1], "local < HPBD");
        assert!(t[1] < t[2], "HPBD < NBD-IPoIB");
        assert!(t[2] < t[3], "NBD-IPoIB < NBD-GigE");
        assert!(t[3] < t[4], "NBD-GigE < disk");
        // Paper: disk 4.5x slower than HPBD; accept a broad band at tiny
        // scale.
        let disk_vs_hpbd = t[4] / t[1];
        assert!(disk_vs_hpbd > 2.0, "disk/HPBD = {disk_vs_hpbd}");
    }
}
