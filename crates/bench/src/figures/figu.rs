//! Figure U (reproduction extra): kernel block path vs user-space direct
//! swap path.
//!
//! Every paper figure swaps through the kernel block layer: faults feed
//! bios into a plugged request queue, the elevator merges neighbors up to
//! 128 KiB, and the merged request goes to the device. Figure U asks what
//! the same machine does when vmsim bypasses all of that — the
//! frontswap-style [`DirectBackend`](vmsim::DirectBackend) submits each
//! 4 KiB page straight to the HPBD client and busy-polls for the demand
//! page's completion (with an adaptive fallback to event waits when the
//! fault stream goes idle). See DESIGN.md §16 for the contract.
//!
//! Four workload groups, each run on both [`SwapPath`]s:
//!
//! 1. **qsort-x2 / HPBD-4** — the Figure 9 workload (two concurrent
//!    quicksorts, 50 % local memory, 4 servers).
//! 2. **qsort / HPBD-1** and **qsort / HPBD-4** — the Figure 10 endpoints
//!    (one quicksort, 50 % local memory, 1 and 4 servers).
//! 3. **zipf / HPBD-4** — the skewed-access variant: Zipf(s=1) page
//!    popularity with hot pages scattered across the address range
//!    (see [`workloads::zipf`]); the pattern where per-page submission
//!    should shine because merges rarely form anyway.
//!
//! Per cell the figure reports the makespan, the *fault-visible* swap-in
//! latency distribution (`vmsim.fault_latency_us` — what the faulting
//! process actually waits, the headline number), the device-level request
//! latency, request shapes (count, mean bytes), readahead traffic
//! (satellite note: the direct path honors `readahead_pages` — readahead
//! pages are submitted per-page and never polled for), the poll-model
//! counters on direct cells, and the lifecycle phase-sum oracle
//! (`sum_mismatches`, must be 0 on both paths). The zipf cells also carry
//! the task's data checksum: equal checksums across paths prove the two
//! swap paths return identical data.

use super::paper_sizes;
use crate::args::CommonArgs;
use crate::runner::Runner;
use simcore::FlightSummary;
use simtrace::HistogramSummary;
use vmsim::DirectStats;
use workloads::zipf::ZipfParams;
use workloads::{Scenario, ScenarioConfig, SwapKind, SwapPath};

/// One cell's outcome.
#[derive(Clone, Debug)]
pub struct FigURow {
    /// Workload group ("qsort-x2", "qsort", "zipf").
    pub workload: String,
    /// Cell label, e.g. "qsort-x2/HPBD-4".
    pub label: String,
    /// Which swap path the cell ran on.
    pub path: SwapPath,
    /// Virtual makespan, seconds.
    pub elapsed_secs: f64,
    /// `vmsim.fault_latency_us` — the stall the faulting process sees.
    pub fault_latency_us: Option<HistogramSummary>,
    /// Device-level swap-in latency (`hpbd.swap_in_latency_us`). On the
    /// block path a sample is a merged multi-page request; on the direct
    /// path it is a single page — comparable only via the fault-visible
    /// histogram above.
    pub device_swap_in_us: Option<HistogramSummary>,
    /// Requests submitted to the backend.
    pub requests: u64,
    /// Mean request size, bytes (4096.0 exactly on the direct path).
    pub mean_request_bytes: f64,
    /// HPBD wire messages per 4 KiB page moved.
    pub messages_per_page: f64,
    /// Major faults taken by the VM.
    pub major_faults: u64,
    /// Readahead pages pulled in (both paths honor the same
    /// `readahead_pages` window; the direct path submits them per-page).
    pub readaheads: u64,
    /// The readahead window in effect (pages; the 2.4 default is 8).
    pub readahead_pages: usize,
    /// Poll-model counters (direct cells only).
    pub direct: Option<DirectStats>,
    /// Lifecycle phase-sum oracle: requests whose phase durations did not
    /// tile `[submit, end]` exactly. Must be 0 on both paths.
    pub phase_mismatches: u64,
    /// Flight-recorder snapshot (phase percentiles).
    pub lifecycle: Option<FlightSummary>,
    /// Zipf cells: XOR-fold of every value read. Equal across paths ⇒
    /// both swap paths returned identical data.
    pub checksum: Option<u64>,
    /// Engine events executed (perfbench throughput accounting).
    pub events: u64,
}

/// The full figure: rows in (workload, path) order — Block before Direct
/// within each group.
#[derive(Clone, Debug)]
pub struct FigU {
    /// Cell outcomes.
    pub rows: Vec<FigURow>,
}

impl FigU {
    /// The (block, direct) row pair for a workload label.
    pub fn pair(&self, label: &str) -> (&FigURow, &FigURow) {
        let find = |path| {
            self.rows
                .iter()
                .find(|r| r.label == label && r.path == path)
                .unwrap_or_else(|| panic!("figU has no {label} {path:?} row"))
        };
        (find(SwapPath::Block), find(SwapPath::Direct))
    }
}

/// The workload half of a cell.
#[derive(Clone, Copy)]
enum Work {
    QsortPair { servers: usize },
    Qsort { servers: usize },
    Zipf { servers: usize },
}

impl Work {
    fn label(&self) -> String {
        match self {
            Work::QsortPair { servers } => format!("qsort-x2/HPBD-{servers}"),
            Work::Qsort { servers } => format!("qsort/HPBD-{servers}"),
            Work::Zipf { servers } => format!("zipf/HPBD-{servers}"),
        }
    }
}

/// The four workload groups, in display order.
fn works() -> Vec<Work> {
    vec![
        Work::QsortPair { servers: 4 },
        Work::Qsort { servers: 1 },
        Work::Qsort { servers: 4 },
        Work::Zipf { servers: 4 },
    ]
}

/// Run all cells sequentially.
pub fn run(args: &CommonArgs) -> FigU {
    run_parallel(args, &args.runner())
}

/// Run all cells through `runner`; rows come back in sweep order.
pub fn run_parallel(args: &CommonArgs, runner: &Runner) -> FigU {
    // The phase-sum oracle is part of the figure: attribution marks only
    // cost host time, never virtual time, so recording is always on here.
    let mut args = args.clone();
    args.lifecycle = true;
    let works = works();
    let cells = works.len() * 2;
    let rows = runner.run_cells(cells, |i| {
        let work = works[i / 2];
        let path = if i % 2 == 0 {
            SwapPath::Block
        } else {
            SwapPath::Direct
        };
        run_cell(work, path, &args)
    });
    FigU { rows }
}

/// The fig9-style pair cell on one path — perfbench's per-path probe
/// (lifecycle recording stays off unless `args` asks, keeping the timed
/// run clean).
pub fn run_fig9_cell(args: &CommonArgs, path: SwapPath) -> FigURow {
    run_cell(Work::QsortPair { servers: 4 }, path, args)
}

fn run_cell(work: Work, path: SwapPath, args: &CommonArgs) -> FigURow {
    let local = args.scaled_bytes(paper_sizes::LOCAL_MEM);
    let mut config = match work {
        // Figure 9's 50 % row: two 1 GiB datasets against 1 GiB of local
        // memory, swap split over the servers.
        Work::QsortPair { servers } => ScenarioConfig::new(
            args.scaled_bytes(1 << 30),
            args.scaled_bytes(512 << 20) * 4,
            SwapKind::Hpbd { servers },
        ),
        // Figure 10's setup: one 1 GiB dataset against 512 MiB local.
        Work::Qsort { servers } => ScenarioConfig::new(
            local,
            args.scaled_bytes(paper_sizes::DATASET_BYTES + (128 << 20)),
            SwapKind::Hpbd { servers },
        ),
        // Zipf array at 2× local memory; constant skewed paging.
        Work::Zipf { servers } => ScenarioConfig::new(
            local,
            args.scaled_bytes(paper_sizes::DATASET_BYTES),
            SwapKind::Hpbd { servers },
        ),
    };
    config.swap_path = path;
    config.record_lifecycle = args.lifecycle;
    let scenario = Scenario::build(&config);

    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    let (workload, report, checksum) = match work {
        Work::QsortPair { .. } => {
            let (_, _, report) = scenario.run_qsort_pair(elements, args.seed);
            ("qsort-x2", report, None)
        }
        Work::Qsort { .. } => ("qsort", scenario.run_qsort(elements, args.seed), None),
        Work::Zipf { .. } => {
            let pages = (2 * local / 4096) as usize;
            let (report, checksum) = scenario.run_zipf(ZipfParams {
                pages,
                operations: pages * 24,
                seed: args.seed,
                ..ZipfParams::default()
            });
            ("zipf", report, Some(checksum))
        }
    };

    let lifecycle = report.lifecycle.clone();
    let phase_mismatches = lifecycle
        .as_ref()
        .map(|s| s.devices.iter().map(|d| d.sum_mismatches).sum())
        .unwrap_or(0);
    FigURow {
        workload: workload.to_string(),
        label: work.label(),
        path,
        elapsed_secs: report.elapsed.as_secs_f64(),
        fault_latency_us: report
            .metrics
            .histograms
            .get("vmsim.fault_latency_us")
            .cloned(),
        device_swap_in_us: report
            .metrics
            .histograms
            .get("hpbd.swap_in_latency_us")
            .cloned(),
        requests: report.requests,
        mean_request_bytes: report.mean_request_bytes,
        messages_per_page: report
            .hpbd_client
            .as_ref()
            .map(|c| c.messages_per_page())
            .unwrap_or(0.0),
        major_faults: report.vm.major_faults,
        readaheads: report.vm.readaheads,
        readahead_pages: config.readahead_pages.unwrap_or(8),
        direct: scenario.direct.as_ref().map(|d| d.stats()),
        phase_mismatches,
        lifecycle,
        checksum,
        events: report.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fig() -> &'static FigU {
        static FIG: std::sync::OnceLock<FigU> = std::sync::OnceLock::new();
        FIG.get_or_init(|| {
            run(&CommonArgs {
                scale: 256,
                seed: 7,
                ..CommonArgs::default()
            })
        })
    }

    #[test]
    fn figu_runs_both_paths_and_the_oracle_is_clean() {
        let fig = small_fig();
        assert_eq!(fig.rows.len(), 8);
        for row in &fig.rows {
            assert!(row.major_faults > 0, "{} must page", row.label);
            assert!(
                row.lifecycle.is_some(),
                "{}: figU always records the flight recorder",
                row.label
            );
            assert_eq!(
                row.phase_mismatches, 0,
                "{} {:?}: phase tiling must be exact",
                row.label, row.path
            );
            match row.path {
                SwapPath::Block => assert!(row.direct.is_none()),
                SwapPath::Direct => {
                    let stats = row.direct.as_ref().expect("direct cell has poll stats");
                    assert_eq!(
                        stats.page_loads + stats.readahead_loads + stats.page_stores,
                        row.requests,
                        "{}: every request is one page",
                        row.label
                    );
                    assert_eq!(row.mean_request_bytes, 4096.0, "{}", row.label);
                    assert!(
                        stats.polled + stats.event_waits == stats.page_loads,
                        "{}: every demand load either polled or event-waited",
                        row.label
                    );
                }
            }
        }
    }

    #[test]
    fn figu_direct_path_improves_fault_p99_on_the_fig9_workload() {
        let (block, direct) = small_fig().pair("qsort-x2/HPBD-4");
        let bp99 = block.fault_latency_us.as_ref().expect("block faults").p99;
        let dp99 = direct.fault_latency_us.as_ref().expect("direct faults").p99;
        assert!(
            dp99 < bp99,
            "direct swap-in p99 must beat block: {dp99}us vs {bp99}us"
        );
    }

    #[test]
    fn figu_zipf_checksums_agree_across_paths() {
        let (block, direct) = small_fig().pair("zipf/HPBD-4");
        assert_eq!(
            block.checksum.expect("zipf block checksum"),
            direct.checksum.expect("zipf direct checksum"),
            "the two swap paths must return identical data"
        );
    }

    #[test]
    fn figu_readahead_is_honored_on_both_paths() {
        let (block, direct) = small_fig().pair("qsort/HPBD-4");
        assert!(block.readaheads > 0, "block path reads ahead");
        assert!(direct.readaheads > 0, "direct path honors readahead too");
        let stats = direct.direct.as_ref().unwrap();
        assert_eq!(stats.readahead_loads, direct.readaheads);
    }
}
