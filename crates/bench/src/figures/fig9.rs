//! Figure 9: two concurrent quicksort instances on one dual-CPU node.
//!
//! Paper setup (§6.1, §6.3.2): each instance sorts 256 Mi integers (1 GiB);
//! the baseline has 2 GiB local memory; the HPBD rows reduce local memory
//! to 50 % (1 GiB) and 25 % (512 MiB), with each memory server exporting a
//! 512 MiB swap area. Results: HPBD 1.7× slower than local at 50 %, 2.5×
//! at 25 %; disk paging ≈ 36× (whence the abstract's "up to 21× faster
//! than disk").

use super::paper_sizes;
use crate::args::CommonArgs;
use crate::runner::Runner;
use simcore::{SimDuration, TraceSession, Tracer};
use workloads::{RunReport, Scenario, ScenarioConfig, SwapKind};

/// One Figure 9 configuration's outcome.
#[derive(Clone, Debug)]
pub struct PairRun {
    /// Configuration label.
    pub label: String,
    /// Instance A completion time (seconds).
    pub a_secs: f64,
    /// Instance B completion time (seconds).
    pub b_secs: f64,
    /// Makespan (seconds) — the figure's bar.
    pub makespan_secs: f64,
    /// Swap-outs observed (diagnostics).
    pub swap_outs: u64,
    /// Full run report (HPBD counters, metrics snapshot).
    pub report: RunReport,
}

/// The four cell descriptors: label, local memory bytes, swap kind.
/// `ScenarioConfig` itself is built inside the worker (it is not `Send`).
fn cell_specs(args: &CommonArgs) -> Vec<(&'static str, u64, SwapKind)> {
    // Two 1 GiB datasets: give the baseline a little slack above 2 GiB so
    // "enough memory" truly holds, as on the testbed where the kernel's own
    // footprint was not swapped.
    let baseline_mem = args.scaled_bytes((2 << 30) + (256 << 20));
    let mem_50 = args.scaled_bytes(1 << 30);
    let mem_25 = args.scaled_bytes(512 << 20);
    vec![
        ("local-2GB", baseline_mem, SwapKind::LocalOnly),
        ("HPBD-50%", mem_50, SwapKind::Hpbd { servers: 4 }),
        ("HPBD-25%", mem_25, SwapKind::Hpbd { servers: 4 }),
        ("disk-50%", mem_50, SwapKind::Disk),
    ]
}

/// Run the four Figure 9 configurations: local 2 GiB, HPBD at 50 % and
/// 25 % local memory (4 servers × 512 MiB), and disk at 50 %.
pub fn run(args: &CommonArgs) -> Vec<PairRun> {
    run_traced(args, &mut TraceSession::disabled())
}

/// Like [`run`], collecting each configuration's events into `session`.
pub fn run_traced(args: &CommonArgs, session: &mut TraceSession) -> Vec<PairRun> {
    run_parallel(args, session, &args.runner())
}

/// Like [`run_traced`], fanning the four configurations across the
/// runner's worker threads; results come back in the figure's order.
pub fn run_parallel(
    args: &CommonArgs,
    session: &mut TraceSession,
    runner: &Runner,
) -> Vec<PairRun> {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    // "each memory server is configured with 512MB swap area"; four servers
    // cover the two datasets.
    let total_swap = args.scaled_bytes(512 << 20) * 4;
    let specs = cell_specs(args);
    let traced = session.is_enabled();
    let results = runner.run_cells(specs.len(), |i| {
        let (label, local_mem, kind) = specs[i].clone();
        let mut config = ScenarioConfig::new(local_mem, total_swap, kind);
        let tracer = if traced {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        config.tracer = Some(tracer.clone());
        config.record_lifecycle = args.lifecycle;
        // Hot-path batching: coalesce same-tick extents per server into
        // merged scatter-gather messages. Window 0 (same virtual instant)
        // tuned on this cell: positive windows delay demand faults and
        // measure worse on both swap p99 and host events/sec.
        config.hpbd.batching = true;
        config.hpbd.merge_window_ns = 0;
        let scenario = Scenario::build(&config);
        let (a, b, report) = scenario.run_qsort_pair(elements, args.seed);
        let to_s = |d: SimDuration| d.as_secs_f64();
        (
            PairRun {
                label: label.to_string(),
                a_secs: to_s(a),
                b_secs: to_s(b),
                makespan_secs: to_s(report.elapsed),
                swap_outs: report.vm.swap_outs,
                report,
            },
            tracer.snapshot(),
        )
    });
    results
        .into_iter()
        .map(|(pair, events)| {
            session.push_run(&pair.label, events);
            pair
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_shape() {
        let args = CommonArgs {
            scale: 256,
            seed: 3,
            ..CommonArgs::default()
        };
        let rows = run(&args);
        let local = rows[0].makespan_secs;
        let hpbd50 = rows[1].makespan_secs;
        let hpbd25 = rows[2].makespan_secs;
        let disk = rows[3].makespan_secs;
        assert!(local < hpbd50, "local beats HPBD-50%");
        assert!(
            hpbd50 < hpbd25,
            "less local memory hurts: {hpbd50} !< {hpbd25}"
        );
        assert!(hpbd25 < disk, "HPBD beats disk paging");
        // Paper: disk/local = 36x, HPBD-50%/local = 1.7x => HPBD beats disk
        // by an order of magnitude.
        assert!(
            disk / hpbd50 > 5.0,
            "disk should be dramatically slower: {}",
            disk / hpbd50
        );
    }

    #[test]
    fn both_instances_finish_close_together() {
        let args = CommonArgs {
            scale: 256,
            seed: 3,
            ..CommonArgs::default()
        };
        let rows = run(&args);
        for r in &rows {
            let spread = (r.a_secs - r.b_secs).abs() / r.makespan_secs;
            assert!(
                spread < 0.35,
                "{}: instances diverged by {:.0}%",
                r.label,
                spread * 100.0
            );
        }
    }
}
