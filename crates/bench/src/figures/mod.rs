//! Regeneration functions for every figure in the paper's evaluation.
//!
//! Each module returns structured results so both the CLI binaries and the
//! integration tests can consume them; printing lives in the binaries.

pub mod fig1;
pub mod fig10;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod figr;
pub mod figu;

use crate::args::CommonArgs;
use workloads::{Scenario, ScenarioConfig, SwapKind};

/// The paper's dataset and memory sizes (scale = 1).
pub mod paper_sizes {
    /// testswap / quicksort dataset: 1 GiB (256 Mi i32).
    pub const DATASET_BYTES: u64 = 1 << 30;
    /// Elements in the 1 GiB dataset.
    pub const DATASET_ELEMS: u64 = 256 << 20;
    /// Local memory for the swapping scenarios: 512 MiB.
    pub const LOCAL_MEM: u64 = 512 << 20;
    /// Local memory for the "enough memory" baseline: 2 GiB.
    pub const BASELINE_MEM: u64 = 2 << 30;
    /// Remote swap area for the single-server scenario: 1 GiB.
    pub const SWAP_AREA: u64 = 1 << 30;
    /// Barnes body count.
    pub const BARNES_BODIES: u64 = 2_097_152;
}

/// The five swap configurations of Figures 5, 7 and 8, in the paper's
/// order: local memory, HPBD (1 server), NBD-IPoIB, NBD-GigE, local disk.
pub fn standard_configs(args: &CommonArgs) -> Vec<(String, ScenarioConfig)> {
    let local = args.scaled_bytes(paper_sizes::LOCAL_MEM);
    let baseline = args.scaled_bytes(paper_sizes::BASELINE_MEM);
    let swap = args.scaled_bytes(paper_sizes::SWAP_AREA);
    vec![
        (
            "local".into(),
            ScenarioConfig::new(baseline, swap, SwapKind::LocalOnly),
        ),
        (
            "HPBD".into(),
            ScenarioConfig::new(local, swap, SwapKind::Hpbd { servers: 1 }),
        ),
        (
            "NBD-IPoIB".into(),
            ScenarioConfig::new(
                local,
                swap,
                SwapKind::Nbd {
                    transport: netmodel::Transport::IpoIb,
                },
            ),
        ),
        (
            "NBD-GigE".into(),
            ScenarioConfig::new(
                local,
                swap,
                SwapKind::Nbd {
                    transport: netmodel::Transport::GigE,
                },
            ),
        ),
        (
            "disk".into(),
            ScenarioConfig::new(local, swap, SwapKind::Disk),
        ),
    ]
}

/// Build one scenario (helper for single-configuration figures).
pub fn build(config: &ScenarioConfig) -> Scenario {
    Scenario::build(config)
}
