//! Figure 5: testswap execution time across swap devices.
//!
//! Paper (scale 1): local ≈ 5.8 s, HPBD ≈ 8.4 s (local 1.45× faster), HPBD
//! 2.2× faster than disk, 1.45× faster than NBD-GigE, 1.29× faster than
//! NBD-IPoIB.

use super::{paper_sizes, standard_configs};
use crate::args::CommonArgs;
use crate::runner::Runner;
use simcore::{TraceSession, Tracer};
use workloads::{RunReport, Scenario};

/// Run all five configurations; reports in the paper's order.
pub fn run(args: &CommonArgs) -> Vec<RunReport> {
    run_traced(args, &mut TraceSession::disabled())
}

/// Like [`run`], collecting each configuration's events into `session`
/// (one Chrome-trace process per configuration).
pub fn run_traced(args: &CommonArgs, session: &mut TraceSession) -> Vec<RunReport> {
    run_parallel(args, session, &args.runner())
}

/// Like [`run_traced`], fanning the five configurations across the
/// runner's worker threads. Each cell builds its machine inside the
/// worker; reports and trace buffers are reassembled in the paper's
/// order, so the output is byte-identical at any thread count.
pub fn run_parallel(
    args: &CommonArgs,
    session: &mut TraceSession,
    runner: &Runner,
) -> Vec<RunReport> {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    let traced = session.is_enabled();
    let cells = standard_configs(args).len();
    let results = runner.run_cells(cells, |i| {
        let (label, mut config) = standard_configs(args).swap_remove(i);
        let tracer = if traced {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        config.tracer = Some(tracer.clone());
        config.record_lifecycle = args.lifecycle;
        let scenario = Scenario::build(&config);
        let mut report = scenario.run_testswap(elements);
        report.label = label;
        (report, tracer.snapshot())
    });
    results
        .into_iter()
        .map(|(report, events)| {
            session.push_run(&report.label, events);
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_ordering() {
        // Small scale for test speed; ordering is scale-invariant.
        let args = CommonArgs {
            scale: 128,
            seed: 7,
            ..CommonArgs::default()
        };
        let rows = run(&args);
        let t: Vec<f64> = rows.iter().map(|r| r.elapsed.as_secs_f64()).collect();
        assert!(t[0] < t[1], "local < HPBD");
        assert!(t[1] < t[2], "HPBD < NBD-IPoIB");
        assert!(t[2] < t[3], "NBD-IPoIB < NBD-GigE");
        assert!(t[3] < t[4], "NBD-GigE < disk");
        // Rough factor check: disk within [1.5x, 4x] of HPBD (paper: 2.2x).
        let disk_vs_hpbd = t[4] / t[1];
        assert!(
            (1.5..4.0).contains(&disk_vs_hpbd),
            "disk/HPBD = {disk_vs_hpbd}"
        );
    }
}
