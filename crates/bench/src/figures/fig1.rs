//! Figure 1: latency comparison of memcpy, RDMA write, IPoIB and GigE for
//! message sizes up to 128 KiB.
//!
//! The network latencies are *measured through the simulators* (an RDMA
//! write over `ibsim`, a one-way message over `tcpsim`), not just read off
//! the closed-form models — so this figure also validates that the
//! simulated stacks reproduce their own calibration.

use ibsim::{Fabric, Qp, RemoteSlice, WorkKind, WorkRequest};
use netmodel::{Calibration, Node};
use simcore::{Engine, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One size point of Figure 1 (all latencies in microseconds).
#[derive(Clone, Debug)]
pub struct Point {
    /// Message size in bytes.
    pub size: u64,
    /// Local memcpy.
    pub memcpy_us: f64,
    /// One-way RDMA write (data placed at the remote).
    pub rdma_write_us: f64,
    /// One-way message over IPoIB.
    pub ipoib_us: f64,
    /// One-way message over GigE.
    pub gige_us: f64,
}

/// The sizes plotted by the paper (1 B to 128 KiB, powers of two).
pub fn sizes() -> Vec<u64> {
    (0..=17).map(|i| 1u64 << i).collect()
}

/// Measure one RDMA write's data-placement latency through `ibsim`.
fn measure_rdma(size: u64) -> f64 {
    let engine = Engine::new();
    let cal = Rc::new(Calibration::cluster_2005());
    let prop = cal.ib.propagation();
    let fabric = Fabric::new(engine.clone(), cal);
    let a = fabric.add_node("a");
    let b = fabric.add_node("b");
    let (acq, arcq, bcq, brcq) = (a.create_cq(), a.create_cq(), b.create_cq(), b.create_cq());
    let (qp, _qp_b) = fabric.connect(&a, &acq, &arcq, &b, &bcq, &brcq);
    let qp = Qp::from(qp);
    let src = a.hca().register(size as usize);
    let dst = b.hca().register(size as usize);
    let wr = |id| WorkRequest {
        wr_id: id,
        kind: WorkKind::RdmaWrite {
            local: src.slice(0, size),
            remote: RemoteSlice {
                rkey: dst.rkey(),
                offset: 0,
                len: size,
            },
        },
        solicited: false,
    };
    // Warm the QP context caches. A one-WR chain posts exactly like a
    // bare post_send, so the measurement is unchanged.
    let mut warm = qp.chain();
    warm.push(wr(0));
    warm.post().expect("warmup");
    engine.run_until_idle();
    acq.drain();
    let t0 = engine.now();
    let mut measured = qp.chain();
    measured.push(wr(1));
    measured.post().expect("measured op");
    engine.run_until_idle();
    let completion = engine.now() - t0;
    // The requester completion includes the ack propagation; the quantity
    // Figure 1 plots is time-to-remote-placement.
    completion.saturating_sub(prop).as_micros_f64()
}

/// Measure a one-way `size`-byte message over a TCP transport.
fn measure_tcp(size: u64, which: fn(&Calibration) -> &netmodel::TransportModel) -> f64 {
    let engine = Engine::new();
    let cal = Calibration::cluster_2005();
    let model = Rc::new(which(&cal).clone());
    let a = Node::new("a", 0, 2);
    let b = Node::new("b", 1, 2);
    let (ca, cb) = tcpsim::connect(&engine, model, &a, &b);
    let arrived: Rc<RefCell<Option<SimTime>>> = Rc::default();
    {
        let arrived = arrived.clone();
        let eng = engine.clone();
        cb.recv(size as usize, move |_| {
            *arrived.borrow_mut() = Some(eng.now())
        });
    }
    ca.send(bytes::Bytes::from(vec![0u8; size as usize]));
    engine.run_until_idle();
    let at = arrived.borrow().expect("message delivered");
    at.as_nanos() as f64 / 1e3
}

/// Produce every point of Figure 1.
pub fn run() -> Vec<Point> {
    let cal = Calibration::cluster_2005();
    sizes()
        .into_iter()
        .map(|size| Point {
            size,
            memcpy_us: cal.memcpy_time(size).as_micros_f64(),
            rdma_write_us: measure_rdma(size),
            ipoib_us: measure_tcp(size, |c| &c.ipoib),
            gige_us: measure_tcp(size, |c| &c.gige),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape() {
        let points = run();
        assert_eq!(points.len(), 18);
        for p in &points {
            // Paper's headline: RDMA is comparable to memcpy; TCP paths are
            // far slower; GigE is the slowest.
            assert!(p.memcpy_us < p.rdma_write_us, "size {}", p.size);
            assert!(p.rdma_write_us < p.ipoib_us, "size {}", p.size);
            assert!(p.ipoib_us < p.gige_us, "size {}", p.size);
        }
        // At 128K: RDMA within ~2.5x of memcpy, IPoIB several times worse.
        let last = points.last().unwrap();
        assert!(last.rdma_write_us / last.memcpy_us < 2.5);
        assert!(last.ipoib_us / last.rdma_write_us > 3.0);
    }

    #[test]
    fn measured_rdma_tracks_model() {
        // The sim-measured RDMA latency should be close to the closed-form
        // wire model plus fixed per-op costs.
        let cal = Calibration::cluster_2005();
        let measured = measure_rdma(65536);
        let wire = cal.ib.one_way_latency(65536).as_micros_f64();
        assert!(
            (measured - wire).abs() < 10.0,
            "measured {measured}us vs model {wire}us"
        );
    }
}
