//! Figure R (reproduction extra): recovery from a memory-server failure.
//!
//! The paper punts on reliability (§4.1); this figure supplies the missing
//! measurement. Four cells, all deterministic on the virtual clock:
//!
//! 1. **HPBD-4 (mirror)** — the Figure 9 workload (two concurrent
//!    quicksorts) on 4 memory servers with mirrored writes, request
//!    timeouts and one retry. The healthy baseline.
//! 2. **HPBD-4 +crash** — the same machine, but server 0 fail-stops at
//!    40 % of the healthy makespan (its chunks are gone). The client times
//!    out, retries once, declares the server dead, and re-routes every
//!    affected request to the mirror replica. The workload completes;
//!    quicksort's own `is_sorted` check is the integrity proof.
//! 3. **NBD-IPoIB** — the same workload on the NBD baseline, healthy.
//! 4. **NBD-IPoIB +reset** — NBD's failure story: the TCP connection is
//!    reset at the same instant. Linux 2.4 NBD has no reconnect, so the
//!    device fails permanently; this cell drives a sequential probe stream
//!    directly at the device and counts the requests that fail *cleanly*
//!    (`IoError::Fault(Reset)`, never a hang) after the reset.
//!
//! Per cell the figure reports a recovery-latency CDF (latencies of every
//! request whose lifetime overlaps the outage window), the detection and
//! recovery latencies (crash → first timeout, and first timeout → first
//! successful completion after the failover), and a throughput timeline
//! (completed swap bytes per time bin) showing the degradation dip and
//! recovery.
//! Everything is computed post-hoc from the simtrace event buffer and
//! metrics snapshots — no extra events are scheduled into the runs.

use super::paper_sizes;
use crate::args::CommonArgs;
use crate::runner::Runner;
use blockdev::{new_buffer, Bio, BlockDevice, DeviceHealth, FaultKind, IoError, IoOp, IoRequest};
use netmodel::{Calibration, Node, Transport};
use simcore::{Engine, Tracer};
use simfault::FaultPlan;
use simtrace::{EventKind, HistogramSummary, TraceEvent};
use std::cell::Cell;
use std::rc::Rc;
use workloads::{Scenario, ScenarioConfig, SwapKind};

/// Request timeout armed on the HPBD cells: far above healthy request
/// latencies (microseconds to low milliseconds at every scale), far below
/// the makespan, so detection is fast without spurious timeouts.
pub const REQUEST_TIMEOUT_NS: u64 = 10_000_000;

/// Time bins in the throughput timeline.
pub const TIMELINE_BINS: usize = 48;

/// One completed-bytes-per-bin sample of the throughput timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThroughputSample {
    /// Bin start, milliseconds of virtual time.
    pub t_ms: f64,
    /// Swap throughput over the bin, MiB/s.
    pub mib_per_s: f64,
}

/// One figR cell's outcome.
#[derive(Clone, Debug)]
pub struct FigRRow {
    /// Cell label.
    pub label: String,
    /// Did the workload (or probe stream) run to completion?
    pub completed: bool,
    /// Virtual makespan, seconds.
    pub elapsed_secs: f64,
    /// Injected fault instant, milliseconds (None: healthy cell).
    pub fault_ms: Option<f64>,
    /// Time from the fault until the client first *noticed* (first request
    /// timeout). Workload-dependent: the crash may sit unnoticed until the
    /// workload touches the dead extent.
    pub detection_ms: Option<f64>,
    /// Service-restoration latency: from the first timeout until the first
    /// successful completion after the first failover — the stall a swap
    /// request actually experiences across the outage (None: healthy, or
    /// the device never recovered — NBD).
    pub recovery_ms: Option<f64>,
    /// CDF of the latencies (ms) of successful requests whose lifetime
    /// overlaps the outage window: `(latency_ms, cumulative_fraction)`.
    pub recovery_cdf: Vec<(f64, f64)>,
    /// Swap-in latency summary over the whole run (from simtrace metrics).
    pub swap_in_latency_us: Option<HistogramSummary>,
    /// HPBD client timeouts / retries / failovers (0 for NBD cells).
    pub timeouts: u64,
    /// Same-server retries.
    pub retries: u64,
    /// Requests re-routed to a mirror replica.
    pub failovers: u64,
    /// Requests that failed *cleanly* with `IoError::Fault` (NBD reset
    /// cell: every post-reset probe; must be nonzero there and zero in
    /// recovering cells).
    pub clean_failures: u64,
    /// Requests completed OK before the fault (probe cell diagnostics).
    pub ok_requests: u64,
    /// Stale write reissues fenced off by server-side versioning (HPBD
    /// cells; always zero for NBD).
    pub stale_drops: u64,
    /// Chunk migrations re-enqueued after a failed read/write leg (HPBD
    /// cells; always zero for NBD).
    pub migration_retries: u64,
    /// Completed swap bytes per time bin over the run.
    pub timeline: Vec<ThroughputSample>,
    /// Flight-recorder snapshot (only when the run was built with
    /// `--lifecycle`; the probe cell never records one).
    pub lifecycle: Option<simcore::FlightSummary>,
}

/// The full figure: four rows plus the fault instant shared by the two
/// faulted cells.
#[derive(Clone, Debug)]
pub struct FigR {
    /// Cell outcomes, in the order described in the module docs.
    pub rows: Vec<FigRRow>,
    /// Fault instant (ns of virtual time) used by the faulted cells.
    pub fault_at_ns: u64,
}

fn hpbd_config(local_mem: u64, total_swap: u64) -> ScenarioConfig {
    let mut config = ScenarioConfig::new(local_mem, total_swap, SwapKind::Hpbd { servers: 4 });
    config.hpbd.mirror_writes = true;
    config.hpbd.request_timeout_ns = Some(REQUEST_TIMEOUT_NS);
    config.hpbd.max_retries = 1;
    config
}

/// Run the four figR cells. The healthy HPBD cell runs first to fix the
/// fault instant (40 % of its makespan); the remaining cells then run
/// through `runner`.
pub fn run(args: &CommonArgs) -> FigR {
    run_parallel(args, &args.runner())
}

/// Like [`run`] with an explicit sweep runner for the faulted cells.
pub fn run_parallel(args: &CommonArgs, runner: &Runner) -> FigR {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    let total_swap = args.scaled_bytes(512 << 20) * 4;
    let local_mem = args.scaled_bytes(1 << 30); // fig9's 50 % row

    // Cell 1 fixes the clock for the fault injection.
    let healthy = run_hpbd_cell("HPBD-4-mirror", elements, local_mem, total_swap, None, args);
    let fault_at_ns = ((healthy.elapsed_secs * 1e9) * 0.4) as u64;

    let cells: Vec<FigRRow> = runner.run_cells(3, |i| match i {
        0 => run_hpbd_cell(
            "HPBD-4-mirror+crash",
            elements,
            local_mem,
            total_swap,
            Some(fault_at_ns),
            args,
        ),
        1 => run_nbd_scenario_cell("NBD-IPoIB", elements, local_mem, total_swap, args),
        _ => run_nbd_reset_cell("NBD-IPoIB+reset", total_swap, fault_at_ns, args),
    });

    let mut rows = vec![healthy];
    rows.extend(cells);
    FigR { rows, fault_at_ns }
}

fn run_hpbd_cell(
    label: &str,
    elements: usize,
    local_mem: u64,
    total_swap: u64,
    crash_at_ns: Option<u64>,
    args: &CommonArgs,
) -> FigRRow {
    let mut config = hpbd_config(local_mem, total_swap);
    let tracer = Tracer::enabled();
    config.tracer = Some(tracer.clone());
    config.record_lifecycle = args.lifecycle;
    if let Some(at) = crash_at_ns {
        config.fault_plan = FaultPlan::new().server_crash(at, 0);
    }
    let scenario = Scenario::build(&config);
    let (_, _, report) = scenario.run_qsort_pair(elements, args.seed);
    let events = tracer.snapshot();
    let elapsed_ns = report.elapsed.as_nanos();
    let stats = report.hpbd_client.clone().expect("hpbd cell has a client");

    let (fault_ms, detection_ms, recovery_ms, recovery_cdf) = match crash_at_ns {
        None => (None, None, None, Vec::new()),
        Some(_) => {
            let t_crash = events
                .iter()
                .find(|e| e.component == "hpbd_server" && e.name == "crash")
                .map(|e| e.ts_ns)
                .expect("crash cell traces the crash instant");
            let (detection, recovery, cdf) = recovery_from_trace(&events, t_crash);
            (Some(t_crash as f64 / 1e6), detection, recovery, cdf)
        }
    };

    FigRRow {
        label: label.to_string(),
        completed: true, // run_qsort_pair debug-asserts sortedness
        elapsed_secs: elapsed_ns as f64 / 1e9,
        fault_ms,
        detection_ms,
        recovery_ms,
        recovery_cdf,
        swap_in_latency_us: report
            .metrics
            .histograms
            .get("hpbd.swap_in_latency_us")
            .cloned(),
        timeouts: stats.timeouts,
        retries: stats.retries,
        failovers: stats.failovers,
        clean_failures: 0,
        ok_requests: stats.requests,
        stale_drops: stats.stale_drops,
        migration_retries: stats.migration_retries,
        timeline: timeline_from_spans(&events, "blockdev", elapsed_ns),
        lifecycle: report.lifecycle.clone(),
    }
}

fn run_nbd_scenario_cell(
    label: &str,
    elements: usize,
    local_mem: u64,
    total_swap: u64,
    args: &CommonArgs,
) -> FigRRow {
    let mut config = ScenarioConfig::new(
        local_mem,
        total_swap,
        SwapKind::Nbd {
            transport: Transport::IpoIb,
        },
    );
    let tracer = Tracer::enabled();
    config.tracer = Some(tracer.clone());
    config.record_lifecycle = args.lifecycle;
    let scenario = Scenario::build(&config);
    let (_, _, report) = scenario.run_qsort_pair(elements, args.seed);
    let events = tracer.snapshot();
    let elapsed_ns = report.elapsed.as_nanos();
    FigRRow {
        label: label.to_string(),
        completed: true,
        elapsed_secs: elapsed_ns as f64 / 1e9,
        fault_ms: None,
        detection_ms: None,
        recovery_ms: None,
        recovery_cdf: Vec::new(),
        swap_in_latency_us: report
            .metrics
            .histograms
            .get("nbd.swap_in_latency_us")
            .cloned(),
        timeouts: 0,
        retries: 0,
        failovers: 0,
        clean_failures: 0,
        ok_requests: report.requests,
        stale_drops: 0,
        migration_retries: 0,
        timeline: timeline_from_spans(&events, "blockdev", elapsed_ns),
        lifecycle: report.lifecycle.clone(),
    }
}

/// The NBD reset cell: a sequential 64 KiB probe-write stream driven
/// directly at the device (the VM workload cannot survive a dead swap
/// device, which is exactly the point being measured). The stream runs
/// until 2.5× the fault instant; the reset at `fault_at_ns` must fail the
/// in-flight probe and every later one cleanly — a probe that neither
/// completes nor fails would hang `run_until_idle` forever, so mere
/// termination of this cell is part of the assertion.
fn run_nbd_reset_cell(label: &str, capacity: u64, fault_at_ns: u64, _args: &CommonArgs) -> FigRRow {
    let engine = Engine::new();
    let tracer = Tracer::enabled();
    engine.set_tracer(tracer.clone());
    let cal = Rc::new(Calibration::cluster_2005());
    let node = Node::new("client", 0, 2);
    let plan = FaultPlan::new().tcp_reset(fault_at_ns);
    let dev = nbd::build_pair_with_faults(&engine, cal, Transport::IpoIb, &node, capacity, &plan);

    let probe_bytes: u64 = 64 * 1024;
    let budget_ns = fault_at_ns.saturating_mul(5) / 2;
    let ok = Rc::new(Cell::new(0u64));
    let clean = Rc::new(Cell::new(0u64));
    let offset = Rc::new(Cell::new(0u64));
    submit_probe(
        &engine,
        &dev,
        probe_bytes,
        capacity,
        budget_ns,
        &ok,
        &clean,
        &offset,
    );
    engine.run_until_idle();

    let events = tracer.snapshot();
    let elapsed_ns = engine.now().as_nanos();
    assert_eq!(
        dev.health(),
        DeviceHealth::Failed,
        "the reset must take the NBD device down for good"
    );
    FigRRow {
        label: label.to_string(),
        completed: false, // the device died; the stream could not finish
        elapsed_secs: elapsed_ns as f64 / 1e9,
        fault_ms: Some(fault_at_ns as f64 / 1e6),
        detection_ms: Some(0.0), // the reset is synchronous on the stream
        recovery_ms: None,       // NBD never recovers
        recovery_cdf: Vec::new(),
        swap_in_latency_us: None,
        timeouts: 0,
        retries: 0,
        failovers: 0,
        clean_failures: clean.get(),
        ok_requests: ok.get(),
        stale_drops: 0,
        migration_retries: 0,
        timeline: timeline_from_spans(&events, "nbd", elapsed_ns.max(1)),
        lifecycle: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn submit_probe(
    engine: &Engine,
    dev: &nbd::NbdClient,
    probe_bytes: u64,
    capacity: u64,
    budget_ns: u64,
    ok: &Rc<Cell<u64>>,
    clean: &Rc<Cell<u64>>,
    offset: &Rc<Cell<u64>>,
) {
    if engine.now().as_nanos() >= budget_ns {
        return;
    }
    let at = offset.get() % (capacity - probe_bytes);
    offset.set(offset.get() + probe_bytes);
    let engine2 = engine.clone();
    let dev2 = dev.clone();
    let (ok2, clean2, offset2) = (ok.clone(), clean.clone(), offset.clone());
    let (probe, cap, budget) = (probe_bytes, capacity, budget_ns);
    dev.submit(IoRequest::single(Bio::new(
        IoOp::Write,
        at,
        new_buffer(probe_bytes as usize),
        move |result| {
            match result {
                Ok(()) => {
                    ok2.set(ok2.get() + 1);
                    submit_probe(&engine2, &dev2, probe, cap, budget, &ok2, &clean2, &offset2);
                }
                Err(IoError::Fault(FaultKind::Reset)) => {
                    // Post-reset failures complete from the event loop at
                    // the same virtual instant (no time passes), so the
                    // time budget alone would never end the stream: probe
                    // a bounded burst to show the failures stay clean,
                    // then stop.
                    clean2.set(clean2.get() + 1);
                    if clean2.get() < 4 {
                        submit_probe(&engine2, &dev2, probe, cap, budget, &ok2, &clean2, &offset2);
                    }
                }
                Err(other) => panic!("probe failed uncleanly: {other:?}"),
            }
        },
    )));
}

/// Detection latency, recovery latency, and the outage-window latency CDF,
/// all from the trace.
///
/// * **Detection** — crash instant to the first request timeout: how long
///   the failure sat unnoticed (workload-dependent; the crash is silent
///   until the workload touches the dead extent).
/// * **Recovery** — first timeout to the first successful completion at or
///   after the first failover: the stall a swap request actually
///   experiences while the client times out, retries, declares the server
///   dead, and re-routes to the mirror replica.
/// * **CDF** — latencies of every successful request whose lifetime
///   overlaps the outage window `[t_crash, recovery end]`, mixing the
///   stalled re-routed requests with the concurrent traffic that kept
///   flowing to the healthy servers.
fn recovery_from_trace(
    events: &[TraceEvent],
    t_crash: u64,
) -> (Option<f64>, Option<f64>, Vec<(f64, f64)>) {
    let ok_spans = |e: &&TraceEvent| {
        e.component == "hpbd"
            && (e.name == "request_read" || e.name == "request_write")
            && e.args.iter().any(|&(k, v)| k == "ok" && v == 1)
    };
    let end_of = |e: &TraceEvent| match e.kind {
        EventKind::Span { dur_ns } => e.ts_ns + dur_ns,
        EventKind::Instant => e.ts_ns,
    };
    let first_instant = |name: &str| {
        events
            .iter()
            .find(|e| e.component == "hpbd" && e.name == name && e.ts_ns >= t_crash)
            .map(|e| e.ts_ns)
    };
    let t_detect = first_instant("timeout");
    let t_failover = first_instant("failover");
    let (detection_ms, recovery_end) = match (t_detect, t_failover) {
        (Some(td), Some(tf)) => {
            let end = events
                .iter()
                .filter(ok_spans)
                .map(&end_of)
                .filter(|&end| end >= tf)
                .min();
            (Some((td - t_crash) as f64 / 1e6), end.map(|e| (td, e)))
        }
        // The workload never hit the dead server (or mirroring absorbed it
        // without a timeout): fall back to "every request outstanding at
        // the crash instant completed".
        _ => {
            let end = events
                .iter()
                .filter(ok_spans)
                .filter(|e| e.ts_ns <= t_crash && end_of(e) > t_crash)
                .map(&end_of)
                .max();
            (None, end.map(|e| (t_crash, e)))
        }
    };
    let Some((from, end)) = recovery_end else {
        return (detection_ms, None, Vec::new());
    };
    let recovery_ms = Some((end - from) as f64 / 1e6);
    let mut lat_ms: Vec<f64> = events
        .iter()
        .filter(ok_spans)
        .filter(|e| end_of(e) > t_crash && e.ts_ns < end)
        .map(|e| (end_of(e) - e.ts_ns) as f64 / 1e6)
        .collect();
    lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let n = lat_ms.len();
    let cdf = lat_ms
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, (i + 1) as f64 / n as f64))
        .collect();
    (detection_ms, recovery_ms, cdf)
}

/// Completed-bytes-per-bin timeline from `component`'s request spans.
fn timeline_from_spans(
    events: &[TraceEvent],
    component: &str,
    elapsed_ns: u64,
) -> Vec<ThroughputSample> {
    let bin_ns = (elapsed_ns / TIMELINE_BINS as u64).max(1);
    let mut bytes_per_bin = vec![0u64; TIMELINE_BINS];
    for e in events {
        let EventKind::Span { dur_ns } = e.kind else {
            continue;
        };
        if e.component != component
            || !(e.name == "request_read"
                || e.name == "request_write"
                || e.name == "read"
                || e.name == "write")
        {
            continue;
        }
        let bytes = e
            .args
            .iter()
            .find(|&&(k, _)| k == "bytes")
            .map_or(0, |&(_, v)| v);
        let bin = (((e.ts_ns + dur_ns) / bin_ns) as usize).min(TIMELINE_BINS - 1);
        bytes_per_bin[bin] += bytes;
    }
    let bin_s = bin_ns as f64 / 1e9;
    bytes_per_bin
        .iter()
        .enumerate()
        .map(|(i, &b)| ThroughputSample {
            t_ms: (i as u64 * bin_ns) as f64 / 1e6,
            mib_per_s: b as f64 / (1 << 20) as f64 / bin_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests inspect one shared small-scale run (plain-data result;
    /// the simulation itself is not Send, its outcome is).
    fn small_fig() -> &'static FigR {
        static FIG: std::sync::OnceLock<FigR> = std::sync::OnceLock::new();
        FIG.get_or_init(|| {
            run(&CommonArgs {
                scale: 256,
                seed: 3,
                ..CommonArgs::default()
            })
        })
    }

    #[test]
    fn figr_smoke_recovery_completes() {
        let fig = small_fig();
        assert_eq!(fig.rows.len(), 4);
        let healthy = &fig.rows[0];
        let crash = &fig.rows[1];
        let nbd = &fig.rows[2];
        let reset = &fig.rows[3];

        // Healthy cells: no fault machinery fired.
        assert!(healthy.completed && healthy.timeouts == 0 && healthy.failovers == 0);
        assert!(nbd.completed && nbd.clean_failures == 0);

        // The crash cell finished (integrity is debug-asserted inside the
        // workload) and recovered in finite time via the mirror replicas.
        assert!(crash.completed, "crash cell must complete");
        assert!(crash.failovers >= 1, "crash must force failovers");
        let recovery = crash.recovery_ms.expect("crash cell reports recovery");
        assert!(
            recovery.is_finite() && recovery > 0.0,
            "recovery latency must be finite and positive: {recovery}"
        );
        assert!(
            !crash.recovery_cdf.is_empty(),
            "outage window must contain completed requests"
        );
        let (_, last_frac) = *crash.recovery_cdf.last().unwrap();
        assert!((last_frac - 1.0).abs() < 1e-9, "CDF must reach 1.0");

        // The NBD reset cell fails cleanly and permanently: progress before
        // the reset, clean failures after, no recovery, and — because the
        // cell returned at all — no hang.
        assert!(reset.ok_requests > 0, "probes must succeed before reset");
        assert!(reset.clean_failures > 0, "post-reset probes fail cleanly");
        assert_eq!(reset.recovery_ms, None, "NBD never recovers");
        assert!(!reset.completed);
    }

    #[test]
    fn figr_crash_slows_but_does_not_stop_the_run() {
        let fig = small_fig();
        let healthy = fig.rows[0].elapsed_secs;
        let crashed = fig.rows[1].elapsed_secs;
        // Losing 1 of 4 servers costs something but the run still ends in
        // the same order of magnitude.
        assert!(
            crashed >= healthy * 0.99,
            "crash should not speed the run up: {crashed} vs {healthy}"
        );
        assert!(
            crashed < healthy * 10.0,
            "crash recovery must not blow up the makespan: {crashed} vs {healthy}"
        );
    }
}
