//! Figure 10: quicksort execution time with 1–16 memory servers.
//!
//! The paper distributes the swap area evenly over k servers (blocking
//! pattern) and finds performance flat up to 8 servers with some
//! degradation at 16, attributed to the HCA's multiple-queue-pair
//! processing — our model reproduces it through the MT23108 QP-context
//! cache (8 contexts; 16 active QPs thrash it).

use super::paper_sizes;
use crate::args::CommonArgs;
use crate::runner::Runner;
use simcore::{TraceSession, Tracer};
use workloads::{RunReport, Scenario, ScenarioConfig, SwapKind};

/// Result for one server count.
#[derive(Clone, Debug)]
pub struct ServerPoint {
    /// Number of memory servers.
    pub servers: usize,
    /// Execution time in seconds.
    pub seconds: f64,
    /// QP-context reloads at the client HCA (the cause of the droop).
    pub ctx_reloads: u64,
    /// Full run report.
    pub report: RunReport,
}

/// Server counts the paper sweeps.
pub fn server_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// Run quicksort for each server count.
pub fn run(args: &CommonArgs) -> Vec<ServerPoint> {
    run_traced(args, &mut TraceSession::disabled())
}

/// Like [`run`], collecting each server count's events into `session`.
pub fn run_traced(args: &CommonArgs, session: &mut TraceSession) -> Vec<ServerPoint> {
    run_parallel(args, session, &args.runner())
}

/// Like [`run_traced`], fanning the server-count cells across the
/// runner's worker threads; results come back in sweep order.
pub fn run_parallel(
    args: &CommonArgs,
    session: &mut TraceSession,
    runner: &Runner,
) -> Vec<ServerPoint> {
    let elements = args.scaled_elems(paper_sizes::DATASET_ELEMS);
    let local = args.scaled_bytes(paper_sizes::LOCAL_MEM);
    // The swap area must hold the whole dataset (swap-cache slots persist
    // while pages are resident-clean); split evenly across servers.
    let swap = args.scaled_bytes(paper_sizes::DATASET_BYTES + (128 << 20));
    let counts = server_counts();
    let traced = session.is_enabled();
    let results = runner.run_cells(counts.len(), |i| {
        let servers = counts[i];
        let mut config = ScenarioConfig::new(local, swap, SwapKind::Hpbd { servers });
        let tracer = if traced {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        config.tracer = Some(tracer.clone());
        config.record_lifecycle = args.lifecycle;
        // Same merged-message batching as fig9's HPBD cells (window 0 =
        // same-tick coalescing, see fig9).
        config.hpbd.batching = true;
        config.hpbd.merge_window_ns = 0;
        let scenario = Scenario::build(&config);
        let report = scenario.run_qsort(elements, args.seed);
        let ctx_reloads = scenario
            .hpbd
            .as_ref()
            .expect("HPBD scenario")
            .client
            .ibnode()
            .hca()
            .ctx_reloads();
        (
            ServerPoint {
                servers,
                seconds: report.elapsed.as_secs_f64(),
                ctx_reloads,
                report,
            },
            tracer.snapshot(),
        )
    });
    results
        .into_iter()
        .map(|(point, events)| {
            session.push_run(&format!("HPBD-{}", point.servers), events);
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_to_eight_then_droop() {
        let args = CommonArgs {
            scale: 256,
            seed: 13,
            ..CommonArgs::default()
        };
        let points = run(&args);
        let one = points[0].seconds;
        let eight = points[3].seconds;
        let sixteen = points[4].seconds;
        // Flat through 8 servers (within 15%).
        assert!(
            (eight - one).abs() / one < 0.15,
            "1 server {one}s vs 8 servers {eight}s"
        );
        // Visible degradation at 16.
        assert!(
            sixteen > eight * 1.01,
            "16 servers ({sixteen}s) should degrade vs 8 ({eight}s)"
        );
        // ...with the client HCA handling a QP population beyond its
        // context cache (reloads appear only in the 16-server run).
        assert!(
            points[4].ctx_reloads > points[3].ctx_reloads,
            "16-server run should stress the QP cache: {} vs {}",
            points[4].ctx_reloads,
            points[3].ctx_reloads
        );
    }
}
