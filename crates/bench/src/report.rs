//! Result-table formatting shared by the figure binaries.

use crate::args::CommonArgs;
use simcore::{MetricsSnapshot, TraceSession};

/// One row of a figure's result table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Configuration label.
    pub label: String,
    /// Measured value (seconds for execution times, µs for latencies).
    pub value: f64,
    /// Extra annotation (paging counters etc.).
    pub note: String,
}

impl Row {
    /// Build a row.
    pub fn new(label: impl Into<String>, value: f64, note: impl Into<String>) -> Row {
        Row {
            label: label.into(),
            value,
            note: note.into(),
        }
    }
}

/// `b / a`, guarding division by zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        f64::NAN
    } else {
        b / a
    }
}

/// Print a titled result table with a ratio column against the first row.
pub fn print_rows(title: &str, unit: &str, rows: &[Row]) {
    println!("\n{title}");
    println!("{}", "-".repeat(title.len().min(78)));
    let base = rows.first().map(|r| r.value).unwrap_or(0.0);
    println!("{:<14} {:>12} {:>10}  notes", "config", unit, "vs first");
    for r in rows {
        println!(
            "{:<14} {:>12.3} {:>9.2}x  {}",
            r.label,
            r.value,
            ratio(base, r.value),
            r.note
        );
    }
}

/// Print the paper's reported relationship for side-by-side comparison.
pub fn print_paper_note(lines: &[&str]) {
    println!("paper reports:");
    for l in lines {
        println!("  {l}");
    }
}

/// HPBD client counters for a row note — empty for non-HPBD rows.
pub fn hpbd_note(report: &workloads::RunReport) -> String {
    match &report.hpbd_client {
        Some(c) => format!(
            " stalls={} splits={} failovers={} msgs/page={:.2}",
            c.flow_stalls,
            c.split_requests,
            c.failovers,
            c.messages_per_page()
        ),
        None => String::new(),
    }
}

/// Phase-attribution note for a row — empty unless the run recorded a
/// flight recorder (`--lifecycle`) and saw swap traffic.
pub fn lifecycle_note(report: &workloads::RunReport) -> String {
    let Some(summary) = &report.lifecycle else {
        return String::new();
    };
    let mut total = 0u64;
    let mut phase_ns = [0u64; simtrace::NUM_PHASES];
    for dev in &summary.devices {
        total += dev.total;
        for (p, ns) in phase_ns.iter_mut().enumerate() {
            *ns += dev.phase_total_ns(simtrace::Phase::ALL[p]);
        }
    }
    if total == 0 {
        return String::new();
    }
    let sum: u64 = phase_ns.iter().sum();
    if sum == 0 {
        return String::new();
    }
    // The two dominant phases tell the story in a table cell.
    let mut idx: Vec<usize> = (0..simtrace::NUM_PHASES).collect();
    idx.sort_by_key(|&p| std::cmp::Reverse(phase_ns[p]));
    let pct = |p: usize| phase_ns[p] as f64 * 100.0 / sum as f64;
    format!(
        " phases: {} {:.0}%, {} {:.0}%",
        simtrace::Phase::NAMES[idx[0]],
        pct(idx[0]),
        simtrace::Phase::NAMES[idx[1]],
        pct(idx[1])
    )
}

/// Print per-configuration metrics summaries (the `--metrics` flag).
pub fn print_metrics<'a>(runs: impl IntoIterator<Item = (&'a str, &'a MetricsSnapshot)>) {
    for (label, snapshot) in runs {
        println!("\nmetrics [{label}]");
        print!("{}", snapshot.render_text());
    }
}

/// Write the session's Chrome trace if `--trace` was given.
pub fn write_trace(args: &CommonArgs, session: &TraceSession) {
    if let Some(path) = &args.trace {
        match session.write_chrome(path) {
            Ok(()) => println!(
                "\ntrace: {} events written to {} (chrome://tracing or https://ui.perfetto.dev)",
                session.total_events(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write trace {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_guards_zero() {
        assert!(ratio(0.0, 5.0).is_nan());
        assert_eq!(ratio(2.0, 5.0), 2.5);
    }
}
