//! Figure 1: latency comparison of memcpy, RDMA write, IPoIB and GigE.
use bench::figures::fig1;
use bench::report::print_paper_note;

fn main() {
    println!("Figure 1 — Latency Comparison of Different Networks and Memcpy (up to 128K)");
    println!("(network latencies measured through the ibsim / tcpsim stacks)\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>12}",
        "size(B)", "memcpy(us)", "RDMA-wr(us)", "IPoIB(us)", "GigE(us)"
    );
    for p in fig1::run() {
        println!(
            "{:>9} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            p.size, p.memcpy_us, p.rdma_write_us, p.ipoib_us, p.gige_us
        );
    }
    println!();
    print_paper_note(&[
        "RDMA_WRITE latency between two nodes is quite comparable to local memcpy latency;",
        "IPoIB and GigE sit far above both across the whole size range.",
    ]);
}
