//! Figure 10: quicksort execution time with 1-16 memory servers.
use bench::figures::fig10;
use bench::report::{hpbd_note, print_metrics, print_paper_note, print_rows, write_trace, Row};
use bench::CommonArgs;
use simcore::TraceSession;

fn main() {
    let args = CommonArgs::parse();
    let mut session = TraceSession::new(args.trace.is_some());
    println!(
        "Figure 10 — Quick Sort Execution Time with Multiple Servers (scale 1/{})",
        args.scale
    );
    let points = fig10::run_traced(&args, &mut session);
    let rows: Vec<Row> = points
        .iter()
        .map(|p| {
            Row::new(
                format!("{} server(s)", p.servers),
                p.seconds,
                format!("qp-ctx-reloads={}{}", p.ctx_reloads, hpbd_note(&p.report)),
            )
        })
        .collect();
    print_rows("quicksort vs memory servers", "seconds", &rows);
    println!();
    print_paper_note(&[
        "HPBD performs similarly up to 8 servers; for 16 servers there is some",
        "degradation, due to the HCA design for multiple queue pair processing.",
    ]);
    if args.metrics {
        print_metrics(
            points
                .iter()
                .map(|p| (p.report.label.as_str(), &p.report.metrics)),
        );
    }
    write_trace(&args, &session);
}
