//! Figure 10: quicksort execution time with 1-16 memory servers.
use bench::figures::fig10;
use bench::report::{print_paper_note, print_rows, Row};
use bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure 10 — Quick Sort Execution Time with Multiple Servers (scale 1/{})",
        args.scale
    );
    let rows: Vec<Row> = fig10::run(&args)
        .into_iter()
        .map(|p| {
            Row::new(
                format!("{} server(s)", p.servers),
                p.seconds,
                format!("qp-ctx-reloads={}", p.ctx_reloads),
            )
        })
        .collect();
    print_rows("quicksort vs memory servers", "seconds", &rows);
    println!();
    print_paper_note(&[
        "HPBD performs similarly up to 8 servers; for 16 servers there is some",
        "degradation, due to the HCA design for multiple queue pair processing.",
    ]);
}
