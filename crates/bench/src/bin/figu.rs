//! Figure U (reproduction extra): kernel block path vs user-space direct
//! swap path across the fig9/fig10 workloads plus a zipfian-access variant.
use bench::figures::figu;
use bench::report::print_paper_note;
use bench::CommonArgs;
use workloads::SwapPath;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure U — Kernel Block Path vs User-Space Direct Path (scale 1/{})",
        args.scale
    );
    let fig = figu::run(&args);

    println!(
        "\n{:<18} {:<7} {:>9} {:>10} {:>10} {:>8} {:>9} {:>9} {:>6}",
        "workload", "path", "makespan", "fault_p50", "fault_p99", "reqs", "mean_B", "msgs/pg", "ra"
    );
    for r in &fig.rows {
        let path = match r.path {
            SwapPath::Block => "block",
            SwapPath::Direct => "direct",
        };
        let (p50, p99) = r
            .fault_latency_us
            .as_ref()
            .map(|h| (h.p50, h.p99))
            .unwrap_or((0.0, 0.0));
        println!(
            "{:<18} {:<7} {:>8.3}s {:>9.1}u {:>9.1}u {:>8} {:>9.0} {:>9.2} {:>6}",
            r.label,
            path,
            r.elapsed_secs,
            p50,
            p99,
            r.requests,
            r.mean_request_bytes,
            r.messages_per_page,
            r.readaheads
        );
    }

    println!("\nper-pair deltas (direct vs block):");
    for label in fig
        .rows
        .iter()
        .filter(|r| r.path == SwapPath::Block)
        .map(|r| r.label.clone())
        .collect::<Vec<_>>()
    {
        let (block, direct) = fig.pair(&label);
        let bp = block
            .fault_latency_us
            .as_ref()
            .map(|h| h.p99)
            .unwrap_or(0.0);
        let dp = direct
            .fault_latency_us
            .as_ref()
            .map(|h| h.p99)
            .unwrap_or(0.0);
        let stats = direct.direct.as_ref().expect("direct row has poll stats");
        println!(
            "  {:<18} makespan {:+6.1}%  fault_p99 {:+6.1}%  polled={} ({} timeouts) \
             event_waits={} poll_cpu={:.1}ms",
            label,
            (direct.elapsed_secs / block.elapsed_secs - 1.0) * 100.0,
            if bp > 0.0 {
                (dp / bp - 1.0) * 100.0
            } else {
                0.0
            },
            stats.polled,
            stats.poll_timeouts,
            stats.event_waits,
            stats.poll_cpu_ns as f64 / 1e6
        );
    }

    let mismatches: u64 = fig.rows.iter().map(|r| r.phase_mismatches).sum();
    println!(
        "\nlifecycle phase-sum oracle: {} violations across {} cells",
        mismatches,
        fig.rows.len()
    );
    println!(
        "readahead: window of {} pages honored on both paths (direct submits \
         readahead per-page and never polls for it)",
        fig.rows.first().map(|r| r.readahead_pages).unwrap_or(8)
    );
    if let Some(direct_zipf) = fig
        .rows
        .iter()
        .find(|r| r.workload == "zipf" && r.path == SwapPath::Direct)
    {
        let (block_zipf, _) = fig.pair(&direct_zipf.label);
        let agree = block_zipf.checksum == direct_zipf.checksum;
        println!(
            "zipf data checksum across paths: {}",
            if agree { "identical" } else { "DIVERGED" }
        );
    }

    println!();
    print_paper_note(&[
        "the paper swaps through the kernel block device (nbd/hpbd); this figure",
        "measures the reproduction's frontswap-style alternative: per-page",
        "submission straight to the HPBD client with busy-poll completion.",
        "Demand faults skip the elevator's merge batching, so the faulting",
        "process stops paying for its neighbors' pages in the swap-in tail.",
    ]);
}
