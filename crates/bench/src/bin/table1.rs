//! Table 1: the paper's taxonomy of remote-memory systems, with HPBD's row.
fn main() {
    println!("Table 1 — Modern work in designing remote memory systems");
    println!();
    println!(
        "{:<16} {:<12} {:<8} {:<12} {:<9} {:<9}",
        "system", "basis", "global", "kernel-level", "TCP/IP", "ULP"
    );
    let rows = [
        ("COCA [4]", "simulation", "Y", "n/a", "n/a", "n/a"),
        ("PNR [18]", "simulation", "Y", "n/a", "n/a", "n/a"),
        ("JMNRM [23]", "simulation", "Y", "n/a", "n/a", "n/a"),
        ("NRAM [5]", "implementation", "N", "N", "Y", "N"),
        ("NRD [13]", "implementation", "N", "Y", "Y", "N"),
        ("RRMP [15]", "implementation", "N", "Y", "Y", "N"),
        ("MOSIX [3]", "implementation", "Y", "Y", "Y", "N"),
        ("GMM [8]", "implementation", "Y", "Y", "Y(UDP)", "N"),
        ("DoDo [11]", "implementation", "Y", "N", "Y", "Y"),
        ("HPBD (this)", "implementation", "N", "Y", "N", "Y"),
    ];
    for (name, basis, global, kernel, tcp, ulp) in rows {
        println!(
            "{:<16} {:<12} {:<8} {:<12} {:<9} {:<9}",
            name, basis, global, kernel, tcp, ulp
        );
    }
    println!();
    println!("HPBD: kernel-level network block device over native InfiniBand verbs");
    println!("(user-level protocol, no TCP/IP), no global resource management.");
}
