//! obsreport — phase-latency attribution over the paper's figures.
//!
//! Re-runs the swap-heavy figures (5, 9, 10, the recovery figure R and
//! the swap-path figure U — the latter covering the user-space direct
//! path's collapsed-queue phase tiling on every cell)
//! with the request-lifecycle flight recorder enabled and post-processes
//! each cell into a phase-attribution table: per-phase p50/p95/p99, the
//! share of total swap time each phase consumed, retry/failover cost
//! accounting, and the protocol's messages-per-page overhead.
//!
//! ```text
//! obsreport [--scale N] [--seed N] [--threads N] [--skip-figr]
//! ```
//!
//! Every cell is also an oracle run: the binary exits 1 if any completed
//! request's recorded phases do not sum *exactly* to its end-to-end
//! latency (virtual clock, no tolerance) — including requests that
//! retried or failed over. The check covers every request of the run via
//! the recorder's aggregate mismatch counter, not just the bounded ring.

use bench::figures::{fig10, fig5, fig9, figr, figu};
use bench::{CommonArgs, Runner};
use simcore::{FlightSummary, TraceSession};
use simtrace::{DeviceFlight, Phase};
use workloads::SwapPath;

fn main() {
    let mut common = CommonArgs::default();
    let mut skip_figr = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} requires an integer value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => common.scale = take("--scale").max(1),
            "--seed" => common.seed = take("--seed"),
            "--threads" => common.threads = take("--threads") as usize,
            "--skip-figr" => skip_figr = true,
            "--help" | "-h" => {
                eprintln!("usage: obsreport [--scale N] [--seed N] [--threads N] [--skip-figr]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    common.lifecycle = true;
    let runner = Runner::with_threads(common.threads);

    println!(
        "obsreport — phase-latency attribution (scale 1/{}, seed {})",
        common.scale, common.seed
    );

    let mut verified: u64 = 0;
    let mut violations: u64 = 0;

    println!("\n=== fig5: testswap across swap devices ===");
    for report in fig5::run_parallel(&common, &mut TraceSession::disabled(), &runner) {
        print_cell(
            &report.label,
            report.lifecycle.as_ref(),
            hpbd_msgs_per_page(&report),
            &mut verified,
            &mut violations,
        );
    }

    println!("\n=== fig9: two concurrent quicksorts ===");
    for run in fig9::run_parallel(&common, &mut TraceSession::disabled(), &runner) {
        print_cell(
            &run.label,
            run.report.lifecycle.as_ref(),
            hpbd_msgs_per_page(&run.report),
            &mut verified,
            &mut violations,
        );
    }

    println!("\n=== fig10: quicksort vs memory-server count ===");
    for point in fig10::run_parallel(&common, &mut TraceSession::disabled(), &runner) {
        print_cell(
            &format!("HPBD-{}", point.servers),
            point.report.lifecycle.as_ref(),
            hpbd_msgs_per_page(&point.report),
            &mut verified,
            &mut violations,
        );
    }

    println!("\n=== figU: kernel block path vs user-space direct path ===");
    for row in figu::run_parallel(&common, &runner).rows {
        let path = match row.path {
            SwapPath::Block => "block",
            SwapPath::Direct => "direct",
        };
        print_cell(
            &format!("{} {path}", row.label),
            row.lifecycle.as_ref(),
            Some(row.messages_per_page),
            &mut verified,
            &mut violations,
        );
    }

    if !skip_figr {
        println!("\n=== figR: recovery from a memory-server crash ===");
        for row in figr::run_parallel(&common, &runner).rows {
            print_cell(
                &row.label,
                row.lifecycle.as_ref(),
                None,
                &mut verified,
                &mut violations,
            );
        }
    }

    println!("\nphase-sum oracle: {verified} requests verified, {violations} violations");
    if violations > 0 {
        eprintln!("FAIL: some requests' phases do not sum to their end-to-end latency");
        std::process::exit(1);
    }
}

fn hpbd_msgs_per_page(report: &workloads::RunReport) -> Option<f64> {
    report.hpbd_client.as_ref().map(|c| c.messages_per_page())
}

/// Print one cell's attribution tables and fold its oracle counts into
/// the run totals.
fn print_cell(
    label: &str,
    summary: Option<&FlightSummary>,
    msgs_per_page: Option<f64>,
    verified: &mut u64,
    violations: &mut u64,
) {
    let Some(summary) = summary else {
        println!("\n[{label}] no flight recorder (lifecycle disabled for this cell)");
        return;
    };
    if summary.devices.is_empty() {
        println!("\n[{label}] no swap traffic recorded");
        return;
    }
    for dev in &summary.devices {
        *verified += dev.total;
        *violations += dev.sum_mismatches;
        print_device(label, dev, msgs_per_page);
    }
}

fn print_device(label: &str, dev: &DeviceFlight, msgs_per_page: Option<f64>) {
    let us = |ns: u64| ns as f64 / 1e3;
    println!(
        "\n[{label}] device {}: {} requests ({} failed, {} retries, {} failovers)",
        dev.device, dev.total, dev.failed, dev.retries, dev.failovers
    );
    if let Some(mpp) = msgs_per_page {
        println!("  protocol cost: {mpp:.2} messages per 4 KiB page");
    }
    let e2e_total: u64 = dev.e2e_samples.iter().sum();
    println!(
        "  {:<16} {:>10} {:>10} {:>10} {:>8}",
        "phase", "p50 us", "p95 us", "p99 us", "share"
    );
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let share = if e2e_total > 0 {
            dev.phase_total_ns(*phase) as f64 * 100.0 / e2e_total as f64
        } else {
            0.0
        };
        println!(
            "  {:<16} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
            Phase::NAMES[i],
            us(dev.phase_percentile(*phase, 50.0)),
            us(dev.phase_percentile(*phase, 95.0)),
            us(dev.phase_percentile(*phase, 99.0)),
            share
        );
    }
    println!(
        "  {:<16} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
        "end-to-end",
        us(dev.e2e_percentile(50.0)),
        us(dev.e2e_percentile(95.0)),
        us(dev.e2e_percentile(99.0)),
        100.0
    );
    let recovery_ns = dev.phase_total_ns(Phase::RetryOverhead);
    if dev.retries + dev.failovers > 0 || recovery_ns > 0 {
        println!(
            "  recovery cost: {:.1} us total retry-overhead ({:.2}% of swap time) across {} retries + {} failovers",
            us(recovery_ns),
            if e2e_total > 0 {
                recovery_ns as f64 * 100.0 / e2e_total as f64
            } else {
                0.0
            },
            dev.retries,
            dev.failovers
        );
    }
    if dev.sum_mismatches > 0 {
        println!(
            "  !! {} requests violated the phase-sum invariant",
            dev.sum_mismatches
        );
    }
}
