//! swapsim — assemble any scenario from the command line.
//!
//! ```text
//! cargo run --release -p bench --bin swapsim -- \
//!     --device hpbd --servers 4 --local-mem-mb 32 --swap-mb 128 \
//!     --workload qsort --elements 4194304 --seed 7
//! ```
use netmodel::Transport;
use simcore::TraceSession;
use std::path::PathBuf;
use workloads::barnes::BarnesParams;
use workloads::kvstore::KvParams;
use workloads::{Scenario, ScenarioConfig, SwapKind};

struct Opts {
    device: String,
    servers: usize,
    local_mem_mb: u64,
    swap_mb: u64,
    workload: String,
    elements: usize,
    bodies: usize,
    records: usize,
    seed: u64,
    mirror: bool,
    trace: Option<PathBuf>,
    metrics: bool,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            device: "hpbd".into(),
            servers: 1,
            local_mem_mb: 32,
            swap_mb: 128,
            workload: "qsort".into(),
            elements: 4 << 20,
            bodies: 16384,
            records: 200_000,
            seed: 42,
            mirror: false,
            trace: None,
            metrics: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: swapsim [--device hpbd|nbd-ipoib|nbd-gige|disk|local] [--servers N]\n\
         \x20              [--local-mem-mb N] [--swap-mb N] [--mirror]\n\
         \x20              [--workload testswap|qsort|barnes|kv] [--elements N]\n\
         \x20              [--bodies N] [--records N] [--seed N]\n\
         \x20              [--trace PATH] [--metrics]"
    );
    std::process::exit(2);
}

fn parse() -> Opts {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--device" => o.device = val(),
            "--servers" => o.servers = val().parse().unwrap_or_else(|_| usage()),
            "--local-mem-mb" => o.local_mem_mb = val().parse().unwrap_or_else(|_| usage()),
            "--swap-mb" => o.swap_mb = val().parse().unwrap_or_else(|_| usage()),
            "--workload" => o.workload = val(),
            "--elements" => o.elements = val().parse().unwrap_or_else(|_| usage()),
            "--bodies" => o.bodies = val().parse().unwrap_or_else(|_| usage()),
            "--records" => o.records = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--mirror" => o.mirror = true,
            "--trace" => o.trace = Some(PathBuf::from(val())),
            "--metrics" => o.metrics = true,
            _ => usage(),
        }
    }
    o
}

fn main() {
    let o = parse();
    let kind = match o.device.as_str() {
        "hpbd" => SwapKind::Hpbd { servers: o.servers },
        "nbd-ipoib" => SwapKind::Nbd {
            transport: Transport::IpoIb,
        },
        "nbd-gige" => SwapKind::Nbd {
            transport: Transport::GigE,
        },
        "disk" => SwapKind::Disk,
        "local" => SwapKind::LocalOnly,
        _ => usage(),
    };
    let mut config = ScenarioConfig::new(o.local_mem_mb << 20, o.swap_mb << 20, kind);
    config.hpbd.mirror_writes = o.mirror;
    if o.mirror {
        config.hpbd.request_timeout_ns = Some(10_000_000);
    }
    let mut session = TraceSession::new(o.trace.is_some());
    config.tracer = Some(session.tracer_for(&format!("{}/{}", o.device, o.workload)));
    let scenario = Scenario::build(&config);
    println!(
        "device={} local={}MiB swap={}MiB workload={}",
        scenario.label(),
        o.local_mem_mb,
        o.swap_mb,
        o.workload
    );
    let report = match o.workload.as_str() {
        "testswap" => scenario.run_testswap(o.elements),
        "qsort" => scenario.run_qsort(o.elements, o.seed),
        "barnes" => scenario.run_barnes(BarnesParams {
            bodies: o.bodies,
            seed: o.seed,
            ..BarnesParams::default()
        }),
        "kv" => scenario.run_kvstore(KvParams {
            records: o.records,
            operations: o.records * 2,
            seed: o.seed,
            ..KvParams::default()
        }),
        _ => usage(),
    };
    println!(
        "\nelapsed         {:.6}s\nmajor faults    {}\nswap-ins        {}\nswap-outs       {}\nclean evictions {}\nthrottles       {}\nrequests        {} (mean {:.0} B)",
        report.elapsed.as_secs_f64(),
        report.vm.major_faults,
        report.vm.swap_ins,
        report.vm.swap_outs,
        report.vm.clean_evictions,
        report.vm.throttles,
        report.requests,
        report.mean_request_bytes,
    );
    if report.read_latency_us.2 > 0 {
        println!(
            "read latency    mean {:.1}us max {:.1}us over {} requests",
            report.read_latency_us.0, report.read_latency_us.1, report.read_latency_us.2
        );
    }
    if report.write_latency_us.2 > 0 {
        println!(
            "write latency   mean {:.1}us max {:.1}us over {} requests",
            report.write_latency_us.0, report.write_latency_us.1, report.write_latency_us.2
        );
    }
    if o.metrics {
        println!("\nmetrics");
        print!("{}", report.metrics.render_text());
    }
    if let Some(path) = &o.trace {
        session.write_chrome(path).expect("write trace file");
        println!(
            "\ntrace: {} events written to {}",
            session.total_events(),
            path.display()
        );
    }
    if let Some(cluster) = &scenario.hpbd {
        let c = cluster.client.stats();
        println!(
            "hpbd client     phys={} splits={} stalls={} pool-waits={} timeouts={} failovers={}",
            c.phys_requests, c.split_requests, c.flow_stalls, c.pool_waits, c.timeouts, c.failovers
        );
        for (i, s) in cluster.servers.iter().enumerate() {
            let st = s.stats();
            println!(
                "  server {i}      reqs={} rdma-rd={} rdma-wr={} wakeups={}",
                st.requests, st.rdma_reads, st.rdma_writes, st.wakeups
            );
        }
    }
}
