//! Ablation study: the design alternatives the paper discusses but rejects
//! (§4.1 registration-on-the-fly, §4.2.5 striping), the flow-control
//! water-mark, and the RRMP-style mirroring it defers to future work.
//!
//! Run: `cargo run --release -p bench --bin ablation [--scale N]`
use bench::report::{print_rows, Row};
use bench::CommonArgs;
use hpbd::config::{Distribution, StagingMode};
use hpbd::HpbdConfig;
use workloads::{Scenario, ScenarioConfig, SwapKind};

fn run_one(args: &CommonArgs, label: &str, hpbd: HpbdConfig, servers: usize) -> Row {
    let local = args.scaled_bytes(512 << 20);
    let swap = args.scaled_bytes(1 << 30);
    let elements = args.scaled_elems(256 << 20);
    let mut config = ScenarioConfig::new(local, swap, SwapKind::Hpbd { servers });
    config.hpbd = hpbd;
    let scenario = Scenario::build(&config);
    let report = scenario.run_qsort(elements, args.seed);
    Row::new(
        label,
        report.elapsed.as_secs_f64(),
        format!("outs={} ins={}", report.vm.swap_outs, report.vm.swap_ins),
    )
}

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Ablation study — quicksort over HPBD variants (scale 1/{})",
        args.scale
    );

    // 1. Staging: copy-through-pool (paper) vs register-on-the-fly.
    let mut rows = vec![run_one(&args, "copy-to-pool", HpbdConfig::default(), 1)];
    let on_fly = HpbdConfig {
        staging: StagingMode::RegisterOnFly,
        ..HpbdConfig::default()
    };
    rows.push(run_one(&args, "register-fly", on_fly, 1));
    print_rows(
        "staging strategy (paper §4.1: copying wins for 4K-127K requests)",
        "seconds",
        &rows,
    );

    // 2. Distribution: blocking (paper) vs striped, 4 servers.
    let mut rows = vec![run_one(&args, "blocking", HpbdConfig::default(), 4)];
    for stripe_pages in [4u64, 8, 16] {
        let c = HpbdConfig {
            distribution: Distribution::Striped {
                stripe_bytes: stripe_pages * 4096,
            },
            ..HpbdConfig::default()
        };
        rows.push(run_one(
            &args,
            &format!("striped-{}K", stripe_pages * 4),
            c,
            4,
        ));
    }
    print_rows(
        "swap-area distribution over 4 servers (paper §4.2.5: non-striping chosen)",
        "seconds",
        &rows,
    );

    // 3. Flow-control water-mark sweep.
    let mut rows = Vec::new();
    for credits in [1usize, 2, 4, 16, 64] {
        let c = HpbdConfig {
            credits,
            ..HpbdConfig::default()
        };
        rows.push(run_one(&args, &format!("credits-{credits}"), c, 1));
    }
    print_rows("flow-control water-mark (paper §4.2.4)", "seconds", &rows);

    // 4. Registered pool size.
    let mut rows = Vec::new();
    for pool_kb in [128u64, 256, 1024, 4096] {
        let c = HpbdConfig {
            pool_size: pool_kb * 1024,
            ..HpbdConfig::default()
        };
        rows.push(run_one(&args, &format!("pool-{pool_kb}K"), c, 1));
    }
    print_rows(
        "registered buffer pool size (paper §4.2.2: 1MB default)",
        "seconds",
        &rows,
    );

    // 5. Mirrored writes (future-work reliability).
    let mut rows = vec![run_one(&args, "no-mirror", HpbdConfig::default(), 2)];
    let mirrored = HpbdConfig {
        mirror_writes: true,
        ..HpbdConfig::default()
    };
    rows.push(run_one(&args, "mirrored", mirrored, 2));
    print_rows(
        "RRMP-style write mirroring (paper §4.1 points to [6],[13])",
        "seconds",
        &rows,
    );
}
