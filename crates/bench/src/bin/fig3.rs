//! Figure 3: memory registration vs memcpy cost.
use bench::figures::fig3;
use bench::report::print_paper_note;

fn main() {
    println!("Figure 3 — Memory Registration vs Memcpy Cost");
    println!(
        "\n{:>9} {:>16} {:>12} {:>16}",
        "size(B)", "register(us)", "memcpy(us)", "deregister(us)"
    );
    for p in fig3::run() {
        println!(
            "{:>9} {:>16.2} {:>12.2} {:>16.2}",
            p.size, p.registration_us, p.memcpy_us, p.deregistration_us
        );
    }
    match fig3::crossover_size() {
        Some(x) => println!("\nmemcpy overtakes registration above {} KiB", x / 1024),
        None => println!("\nno crossover below 4 MiB"),
    }
    println!();
    print_paper_note(&[
        "registration on-the-fly is very costly compared with copy cost,",
        "especially within the 4K-127K range where the page requests reside (§4.1).",
    ]);
}
