//! Figure 6: testswap average request size for each request cluster.
use bench::figures::fig6;
use bench::report::print_paper_note;
use bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure 6 — Testswap Average Request Size per Request Cluster (scale 1/{})",
        args.scale
    );
    let profile = fig6::run(&args);
    println!(
        "\n{:>8} {:>10} {:>14}",
        "cluster", "requests", "avg size (B)"
    );
    // Print a representative sample if there are many clusters.
    let step = (profile.clusters.len() / 40).max(1);
    for c in profile.clusters.iter().step_by(step) {
        println!("{:>8} {:>10} {:>14.0}", c.index, c.requests, c.mean_bytes);
    }
    println!(
        "\nclusters: {}   total requests: {}   overall mean: {:.0} B   write mean: {:.0} B",
        profile.clusters.len(),
        profile.total_requests,
        profile.overall_mean,
        profile.write_mean
    );
    println!();
    print_paper_note(&[
        "testswap involves mostly messages around 120K (merged swap-out clusters",
        "bounded by the 128K single-request limit of Linux 2.4).",
    ]);
}
