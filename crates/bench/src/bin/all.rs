//! Run every figure at the given scale and print a compact paper-vs-measured
//! summary (the source of EXPERIMENTS.md numbers).
use bench::figures::{fig1, fig10, fig3, fig5, fig6, fig7, fig8, fig9};
use bench::CommonArgs;

fn ratios(label: &str, secs: &[f64], names: &[&str]) {
    println!("\n### {label}");
    for (n, s) in names.iter().zip(secs) {
        println!("  {:<12} {:>9.3}s  ({:.2}x of first)", n, s, s / secs[0]);
    }
}

fn main() {
    let args = CommonArgs::parse();
    println!(
        "# HPBD reproduction — full experiment sweep (scale 1/{})",
        args.scale
    );

    println!("\n## Figure 1 (latency, us)");
    for p in fig1::run() {
        println!(
            "  {:>7}B memcpy={:<9.2} rdma={:<9.2} ipoib={:<9.2} gige={:.2}",
            p.size, p.memcpy_us, p.rdma_write_us, p.ipoib_us, p.gige_us
        );
    }

    println!("\n## Figure 3 (registration vs memcpy, us)");
    for p in fig3::run() {
        println!(
            "  {:>8}B reg={:<10.2} memcpy={:<10.2} dereg={:.2}",
            p.size, p.registration_us, p.memcpy_us, p.deregistration_us
        );
    }

    let names = ["local", "HPBD", "NBD-IPoIB", "NBD-GigE", "disk"];

    let f5: Vec<f64> = fig5::run(&args)
        .iter()
        .map(|r| r.elapsed.as_secs_f64())
        .collect();
    ratios("Figure 5: testswap", &f5, &names);

    let profile = fig6::run(&args);
    println!("\n### Figure 6: testswap request profile");
    println!(
        "  clusters={} requests={} overall-mean={:.0}B write-mean={:.0}B",
        profile.clusters.len(),
        profile.total_requests,
        profile.overall_mean,
        profile.write_mean
    );

    let f7: Vec<f64> = fig7::run(&args)
        .iter()
        .map(|r| r.elapsed.as_secs_f64())
        .collect();
    ratios("Figure 7: quicksort", &f7, &names);

    let f8: Vec<f64> = fig8::run(&args)
        .iter()
        .map(|r| r.elapsed.as_secs_f64())
        .collect();
    ratios("Figure 8: Barnes", &f8, &names);

    println!("\n### Figure 9: two concurrent quicksorts");
    let f9 = fig9::run(&args);
    for r in &f9 {
        println!(
            "  {:<10} makespan={:>8.3}s ({:.2}x of local)  A={:.3}s B={:.3}s",
            r.label,
            r.makespan_secs,
            r.makespan_secs / f9[0].makespan_secs,
            r.a_secs,
            r.b_secs
        );
    }

    println!("\n### Figure 10: quicksort vs server count");
    let f10 = fig10::run(&args);
    for p in &f10 {
        println!(
            "  {:>2} servers {:>8.3}s ({:.3}x of 1)  ctx-reloads={}",
            p.servers,
            p.seconds,
            p.seconds / f10[0].seconds,
            p.ctx_reloads
        );
    }
}
