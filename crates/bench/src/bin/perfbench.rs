//! perfbench — simulator throughput benchmark with a tracked baseline.
//!
//! Runs the three sweep figures (5, 9, 10) through the parallel runner and
//! reports, per figure and in total: wall-clock seconds, simulation events
//! executed, and events per second — the simulator's core throughput
//! metric, largely independent of the `--scale` divisor. Peak RSS comes
//! from `/proc/self/status` (`VmHWM`) where available.
//!
//! ```text
//! perfbench [--smoke] [--scale N] [--seed N] [--threads N] [--sim-threads N]
//!           [--out PATH] [--baseline PATH]
//! ```
//!
//! `--smoke` shrinks the workloads (scale 256) for CI; `--out` writes a
//! JSON report (`BENCH_core.json` at the repo root is the tracked
//! baseline); `--baseline` compares per-figure events/sec against a prior
//! report and **exits 1 on a >20 % regression**.
//!
//! The v2 report also carries, per figure, the p99 swap-in latency of its
//! primary HPBD cell (virtual-clock µs, from the always-on metrics
//! histograms — the timed runs themselves never enable lifecycle
//! tracing), and a phase-attribution summary from one separate small
//! lifecycle-enabled fig9 pass.
//!
//! The v3 report adds, per figure, the primary HPBD cell's
//! `messages_per_page` (request messages sent per 4 KiB page moved — the
//! wire-efficiency metric the hot-path batching layer optimises). The
//! baseline gate also fails when that ratio grows more than 20 % over a
//! baseline that carries the field; v1/v2 baselines (no such field) gate
//! on events/sec only, so they keep working.
//!
//! Two per-swap-path rows (`figU-block`, `figU-direct`) run the figU
//! fig9-style pair cell through each [`workloads::SwapPath`]. Their
//! `swap_in_p99_us` — deterministic on the virtual clock — is gated like
//! `messages_per_page`: growing more than 20 % over a baseline that
//! carries the field fails the run, covering both swap paths.
//!
//! The v4 report records `sim_threads` (`--sim-threads` routes each
//! figure's cells through the conservative parallel engine; deterministic
//! rows are identical at any value) and the baseline check is **strict**:
//! a baseline whose schema version is not v3/v4 or whose figure set
//! doesn't exactly match the current run fails loudly instead of silently
//! comparing the rows that happen to line up — silently-skipped rows are
//! how a stale baseline once hid a regression.

use bench::figures::{fig10, fig5, fig9, figu};
use bench::{CommonArgs, Runner};
use simcore::TraceSession;
use std::path::PathBuf;
use std::time::Instant;
use workloads::SwapPath;

/// Allowed events/sec drop vs the baseline before the run fails.
const REGRESSION_TOLERANCE: f64 = 0.20;

/// Figures whose wall time is below this are reported but not gated —
/// sub-second cells are dominated by setup cost and process noise, which
/// dwarfs the tolerance. The total is always gated.
const MIN_GATED_WALL_S: f64 = 1.0;

struct FigureResult {
    name: &'static str,
    wall_s: f64,
    events: u64,
    /// p99 swap-in latency (virtual µs) of the figure's primary HPBD
    /// cell; 0 when the figure has no swap histogram.
    swap_p99_us: f64,
    /// Request messages per 4 KiB page moved by the figure's primary HPBD
    /// cell; 0 when the figure has no HPBD cell. Deterministic (virtual
    /// clock), so the baseline gate holds it to the same 20 % tolerance.
    msgs_per_page: f64,
}

impl FigureResult {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn main() {
    let mut smoke = false;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut common = CommonArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--scale" => common.scale = take("--scale").parse().unwrap_or(16).max(1),
            "--seed" => common.seed = take("--seed").parse().unwrap_or(42),
            "--threads" => common.threads = take("--threads").parse().unwrap_or(1),
            "--sim-threads" => common.sim_threads = take("--sim-threads").parse().unwrap_or(1),
            "--out" => out = Some(PathBuf::from(take("--out"))),
            "--baseline" => baseline = Some(PathBuf::from(take("--baseline"))),
            "--help" | "-h" => {
                eprintln!(
                    "usage: perfbench [--smoke] [--scale N] [--seed N] [--threads N] \
                     [--sim-threads N] [--out PATH] [--baseline PATH]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        common.scale = common.scale.max(256);
    }
    let runner = Runner::with_threads(common.threads).with_sim_threads(common.sim_threads);

    let mut results: Vec<FigureResult> = Vec::new();
    let mut measure = |name: &'static str, f: &dyn Fn() -> (u64, f64, f64)| {
        let start = Instant::now();
        let (events, swap_p99_us, msgs_per_page) = f();
        let wall_s = start.elapsed().as_secs_f64();
        let r = FigureResult {
            name,
            wall_s,
            events,
            swap_p99_us,
            msgs_per_page,
        };
        println!(
            "{:>6}  wall {:8.3} s  events {:>12}  {:>12.0} events/s  swap p99 {:>8.1} us  msgs/page {:>6.3}",
            r.name,
            r.wall_s,
            r.events,
            r.events_per_sec(),
            r.swap_p99_us,
            r.msgs_per_page
        );
        results.push(r);
    };

    // Swap-in latency where the workload faults pages back in; fig5's
    // testswap streams writes and never swaps in, so fall back to the
    // swap-out histogram rather than reporting an empty 0.
    let swap_p99 = |report: &workloads::RunReport| -> f64 {
        ["hpbd.swap_in_latency_us", "hpbd.swap_out_latency_us"]
            .iter()
            .filter_map(|name| report.metrics.histograms.get(*name))
            .find(|h| h.count > 0)
            .map_or(0.0, |h| h.p99)
    };
    let msgs_page = |report: &workloads::RunReport| -> f64 {
        report
            .metrics
            .gauges
            .get("hpbd.messages_per_page")
            .copied()
            .unwrap_or(0.0)
    };
    measure("fig5", &|| {
        let runs = fig5::run_parallel(&common, &mut TraceSession::disabled(), &runner);
        let hpbd = runs.iter().find(|r| r.label == "HPBD");
        let p99 = hpbd.map_or(0.0, &swap_p99);
        let mpp = hpbd.map_or(0.0, &msgs_page);
        (runs.iter().map(|r| r.events).sum(), p99, mpp)
    });
    measure("fig9", &|| {
        let runs = fig9::run_parallel(&common, &mut TraceSession::disabled(), &runner);
        let hpbd = runs.iter().find(|p| p.label == "HPBD-50%");
        let p99 = hpbd.map_or(0.0, |p| swap_p99(&p.report));
        let mpp = hpbd.map_or(0.0, |p| msgs_page(&p.report));
        (runs.iter().map(|p| p.report.events).sum(), p99, mpp)
    });
    measure("fig10", &|| {
        let runs = fig10::run_parallel(&common, &mut TraceSession::disabled(), &runner);
        let hpbd = runs.iter().find(|p| p.servers == 1);
        let p99 = hpbd.map_or(0.0, |p| swap_p99(&p.report));
        let mpp = hpbd.map_or(0.0, |p| msgs_page(&p.report));
        (runs.iter().map(|p| p.report.events).sum(), p99, mpp)
    });
    // Per-swap-path probes: the same fig9-style pair cell through the
    // kernel block path and the user-space direct path. The p99 rows let
    // the baseline gate catch a latency regression on either path.
    measure("figU-block", &|| {
        let row = figu::run_fig9_cell(&common, SwapPath::Block);
        let p99 = row.device_swap_in_us.as_ref().map_or(0.0, |h| h.p99);
        (row.events, p99, row.messages_per_page)
    });
    measure("figU-direct", &|| {
        let row = figu::run_fig9_cell(&common, SwapPath::Direct);
        let p99 = row.device_swap_in_us.as_ref().map_or(0.0, |h| h.p99);
        (row.events, p99, row.messages_per_page)
    });

    // Phase attribution comes from one separate, small, lifecycle-enabled
    // fig9 pass so the timed runs above stay untouched by tracing cost.
    let attribution = attribution_pass(&common, &runner);

    let total_wall: f64 = results.iter().map(|r| r.wall_s).sum();
    let total_events: u64 = results.iter().map(|r| r.events).sum();
    let total_eps = if total_wall > 0.0 {
        total_events as f64 / total_wall
    } else {
        0.0
    };
    let rss = peak_rss_kb();
    println!(
        " total  wall {total_wall:8.3} s  events {total_events:>12}  {total_eps:>12.0} events/s  peak RSS {rss} kB"
    );

    let report = render_json(
        &common,
        smoke,
        &runner,
        &results,
        total_wall,
        total_events,
        rss,
        &attribution,
    );
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }

    if let Some(path) = &baseline {
        match check_baseline(path, &results) {
            Ok(lines) => {
                for l in &lines {
                    println!("{l}");
                }
            }
            Err(msgs) => {
                for m in &msgs {
                    eprintln!("REGRESSION: {m}");
                }
                std::process::exit(1);
            }
        }
    }
}

/// One small lifecycle-enabled fig9 pass (scale >= 256 so it costs well
/// under a second), rendered as the report's `attribution` JSON object:
/// the HPBD-50% cell's per-phase p50/p99 and time share, its e2e p99,
/// and the phase-sum oracle counts.
fn attribution_pass(common: &CommonArgs, runner: &Runner) -> String {
    let mut small = common.clone();
    small.scale = small.scale.max(256);
    small.lifecycle = true;
    let runs = fig9::run_parallel(&small, &mut TraceSession::disabled(), runner);
    let dev = runs
        .iter()
        .find(|p| p.label == "HPBD-50%")
        .and_then(|p| p.report.lifecycle.as_ref())
        .and_then(|s| s.devices.first());
    let Some(dev) = dev else {
        return "null".to_string();
    };
    let e2e_total: u64 = dev.e2e_samples.iter().sum();
    let mut s = String::from("{");
    s.push_str(&format!(
        "\"figure\": \"fig9\", \"cell\": \"HPBD-50%\", \"scale\": {}, \"requests\": {}, \"sum_mismatches\": {}, ",
        small.scale, dev.total, dev.sum_mismatches
    ));
    s.push_str(&format!(
        "\"e2e_p99_ns\": {}, \"phases\": [",
        dev.e2e_percentile(99.0)
    ));
    for (i, phase) in simtrace::Phase::ALL.iter().enumerate() {
        let share = if e2e_total > 0 {
            dev.phase_total_ns(*phase) as f64 * 100.0 / e2e_total as f64
        } else {
            0.0
        };
        s.push_str(&format!(
            "{}{{\"name\": \"{}\", \"p50_ns\": {}, \"p99_ns\": {}, \"share_pct\": {:.2}}}",
            if i > 0 { ", " } else { "" },
            simtrace::Phase::NAMES[i],
            dev.phase_percentile(*phase, 50.0),
            dev.phase_percentile(*phase, 99.0),
            share
        ));
    }
    s.push_str("]}");
    s
}

/// Peak resident set size in kB from `/proc/self/status`, or 0 when the
/// platform does not expose it.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    common: &CommonArgs,
    smoke: bool,
    runner: &Runner,
    results: &[FigureResult],
    total_wall: f64,
    total_events: u64,
    rss_kb: u64,
    attribution: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"hpbd-perfbench-v4\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"scale\": {},\n", common.scale));
    s.push_str(&format!("  \"seed\": {},\n", common.seed));
    s.push_str(&format!("  \"threads\": {},\n", runner.threads()));
    s.push_str(&format!("  \"sim_threads\": {},\n", runner.sim_threads()));
    s.push_str("  \"figures\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \"swap_in_p99_us\": {:.1}, \"messages_per_page\": {:.4}}}{}\n",
            r.name,
            r.wall_s,
            r.events,
            r.events_per_sec(),
            r.swap_p99_us,
            r.msgs_per_page,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let total_eps = if total_wall > 0.0 {
        total_events as f64 / total_wall
    } else {
        0.0
    };
    s.push_str(&format!(
        "  \"total\": {{\"wall_s\": {total_wall:.3}, \"events\": {total_events}, \"events_per_sec\": {total_eps:.0}}},\n"
    ));
    s.push_str(&format!("  \"attribution\": {attribution},\n"));
    s.push_str(&format!("  \"peak_rss_kb\": {rss_kb}\n"));
    s.push_str("}\n");
    s
}

/// Baseline schema versions this binary knows how to compare against. A v3
/// baseline is a strict field subset of v4 (no `sim_threads`), so both are
/// accepted; anything else — older reports, hand-edited files — must be
/// regenerated, not silently half-compared.
const ACCEPTED_SCHEMAS: [&str; 2] = ["hpbd-perfbench-v3", "hpbd-perfbench-v4"];

/// Compare per-figure events/sec against a prior report. `Ok` carries the
/// per-figure comparison lines; `Err` the regression messages.
fn check_baseline(path: &PathBuf, results: &[FigureResult]) -> Result<Vec<String>, Vec<String>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            return Err(vec![format!(
                "cannot read baseline {}: {e}",
                path.display()
            )])
        }
    };
    let doc = match simtrace::json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            return Err(vec![format!(
                "baseline {} is not valid JSON: {e:?}",
                path.display()
            )])
        }
    };
    compare_to_baseline(&doc, results)
}

/// The pure comparison half of [`check_baseline`], split out so the
/// mismatch paths are unit-testable. Fails loudly — before comparing any
/// row — when the baseline's schema version is unknown or its figure set
/// differs from the current run's in either direction.
fn compare_to_baseline(
    doc: &simtrace::json::Value,
    results: &[FigureResult],
) -> Result<Vec<String>, Vec<String>> {
    let schema = doc
        .as_object()
        .and_then(|o| o.get("schema"))
        .and_then(|s| s.as_string());
    match schema {
        Some(s) if ACCEPTED_SCHEMAS.contains(&s) => {}
        Some(s) => {
            return Err(vec![format!(
                "baseline schema \"{s}\" is not comparable to this binary (accepted: {}); \
                 regenerate the baseline with --out",
                ACCEPTED_SCHEMAS.join(", ")
            )])
        }
        None => {
            return Err(vec![format!(
                "baseline has no \"schema\" field (accepted: {}); regenerate it with --out",
                ACCEPTED_SCHEMAS.join(", ")
            )])
        }
    }
    let figures = doc
        .as_object()
        .and_then(|o| o.get("figures"))
        .and_then(|f| f.as_array());
    let Some(figures) = figures else {
        return Err(vec!["baseline has no \"figures\" array".to_string()]);
    };
    // The figure sets must match exactly. A baseline row the run no longer
    // produces, or a run row the baseline never measured, means the
    // baseline belongs to a different perfbench — comparing the overlap
    // would quietly un-gate the rest (the PR 6 stale-baseline trap).
    let base_names: Vec<&str> = figures
        .iter()
        .filter_map(|f| f.as_object()?.get("name")?.as_string())
        .collect();
    let missing: Vec<&str> = results
        .iter()
        .map(|r| r.name)
        .filter(|n| !base_names.contains(n))
        .collect();
    let extra: Vec<&str> = base_names
        .iter()
        .copied()
        .filter(|n| !results.iter().any(|r| r.name == *n))
        .collect();
    if !missing.is_empty() || !extra.is_empty() {
        return Err(vec![format!(
            "baseline figure set does not match this run (missing from baseline: [{}]; \
             not produced by this run: [{}]); regenerate the baseline with --out",
            missing.join(", "),
            extra.join(", ")
        )]);
    }
    let base_field = |name: &str, field: &str| -> Option<f64> {
        figures.iter().find_map(|f| {
            let o = f.as_object()?;
            if o.get("name")?.as_string()? == name {
                o.get(field)?.as_f64()
            } else {
                None
            }
        })
    };
    let base_eps = |name: &str| base_field(name, "events_per_sec");

    let base_total_eps = doc
        .as_object()
        .and_then(|o| o.get("total"))
        .and_then(|t| t.as_object())
        .and_then(|t| t.get("events_per_sec"))
        .and_then(|v| v.as_f64());

    fn gate(
        lines: &mut Vec<String>,
        regressions: &mut Vec<String>,
        name: &str,
        wall_s: f64,
        now: f64,
        base: f64,
    ) {
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        let gated = wall_s >= MIN_GATED_WALL_S;
        lines.push(format!(
            "{}: {:.0} events/s vs baseline {:.0} ({:+.1}%){}",
            name,
            now,
            base,
            (ratio - 1.0) * 100.0,
            if gated { "" } else { " [too short, not gated]" }
        ));
        if gated && ratio < 1.0 - REGRESSION_TOLERANCE {
            regressions.push(format!(
                "{}: events/sec fell {:.1}% below baseline ({:.0} vs {:.0}, tolerance {:.0}%)",
                name,
                (1.0 - ratio) * 100.0,
                now,
                base,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }

    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for r in results {
        let Some(base) = base_eps(r.name) else {
            // The name matched above, so the row exists but is malformed.
            regressions.push(format!(
                "{}: baseline row has no events_per_sec; regenerate the baseline with --out",
                r.name
            ));
            continue;
        };
        gate(
            &mut lines,
            &mut regressions,
            r.name,
            r.wall_s,
            r.events_per_sec(),
            base,
        );
        // Wire efficiency: messages per page moved must not grow. The
        // metric is virtual-clock deterministic, so it gates regardless of
        // wall time; v1/v2 baselines have no field and skip the check.
        if let Some(base_mpp) = base_field(r.name, "messages_per_page") {
            if base_mpp > 0.0 && r.msgs_per_page > 0.0 {
                let ratio = r.msgs_per_page / base_mpp;
                lines.push(format!(
                    "{}: {:.4} msgs/page vs baseline {:.4} ({:+.1}%)",
                    r.name,
                    r.msgs_per_page,
                    base_mpp,
                    (ratio - 1.0) * 100.0
                ));
                if ratio > 1.0 + REGRESSION_TOLERANCE {
                    regressions.push(format!(
                        "{}: messages per page grew {:.1}% over baseline ({:.4} vs {:.4}, tolerance {:.0}%)",
                        r.name,
                        (ratio - 1.0) * 100.0,
                        r.msgs_per_page,
                        base_mpp,
                        REGRESSION_TOLERANCE * 100.0
                    ));
                }
            }
        }
        // Swap-in latency: virtual-clock deterministic like msgs/page, so
        // it gates regardless of wall time — this is what holds BOTH swap
        // paths (figU-block / figU-direct rows) to their baselines.
        if let Some(base_p99) = base_field(r.name, "swap_in_p99_us") {
            if base_p99 > 0.0 && r.swap_p99_us > 0.0 {
                let ratio = r.swap_p99_us / base_p99;
                lines.push(format!(
                    "{}: {:.1} us swap-in p99 vs baseline {:.1} ({:+.1}%)",
                    r.name,
                    r.swap_p99_us,
                    base_p99,
                    (ratio - 1.0) * 100.0
                ));
                if ratio > 1.0 + REGRESSION_TOLERANCE {
                    regressions.push(format!(
                        "{}: swap-in p99 grew {:.1}% over baseline ({:.1} vs {:.1} us, tolerance {:.0}%)",
                        r.name,
                        (ratio - 1.0) * 100.0,
                        r.swap_p99_us,
                        base_p99,
                        REGRESSION_TOLERANCE * 100.0
                    ));
                }
            }
        }
    }
    let total_wall: f64 = results.iter().map(|r| r.wall_s).sum();
    let total_events: u64 = results.iter().map(|r| r.events).sum();
    if let Some(base) = base_total_eps {
        let now = if total_wall > 0.0 {
            total_events as f64 / total_wall
        } else {
            0.0
        };
        gate(&mut lines, &mut regressions, "total", total_wall, now, base);
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &'static str, wall_s: f64, events: u64) -> FigureResult {
        FigureResult {
            name,
            wall_s,
            events,
            swap_p99_us: 100.0,
            msgs_per_page: 0.25,
        }
    }

    fn baseline_json(schema: &str, figures: &[(&str, f64)]) -> simtrace::json::Value {
        let rows: Vec<String> = figures
            .iter()
            .map(|(name, eps)| {
                format!(
                    "{{\"name\": \"{name}\", \"wall_s\": 10.0, \"events\": 1000, \
                     \"events_per_sec\": {eps:.0}, \"swap_in_p99_us\": 100.0, \
                     \"messages_per_page\": 0.25}}"
                )
            })
            .collect();
        let doc = format!(
            "{{\"schema\": \"{schema}\", \"figures\": [{}], \
             \"total\": {{\"wall_s\": 10.0, \"events\": 1000, \"events_per_sec\": 100}}}}",
            rows.join(", ")
        );
        simtrace::json::parse(&doc).unwrap()
    }

    #[test]
    fn matching_v4_baseline_passes() {
        let results = [row("fig5", 10.0, 1000), row("fig9", 10.0, 1000)];
        let doc = baseline_json("hpbd-perfbench-v4", &[("fig5", 100.0), ("fig9", 100.0)]);
        assert!(compare_to_baseline(&doc, &results).is_ok());
    }

    #[test]
    fn v3_baseline_is_still_accepted() {
        let results = [row("fig5", 10.0, 1000)];
        let doc = baseline_json("hpbd-perfbench-v3", &[("fig5", 100.0)]);
        assert!(compare_to_baseline(&doc, &results).is_ok());
    }

    #[test]
    fn unknown_schema_fails_loudly() {
        let results = [row("fig5", 10.0, 1000)];
        let doc = baseline_json("hpbd-perfbench-v2", &[("fig5", 100.0)]);
        let err = compare_to_baseline(&doc, &results).unwrap_err();
        assert!(err[0].contains("schema"), "{err:?}");
        assert!(err[0].contains("hpbd-perfbench-v2"), "{err:?}");
    }

    #[test]
    fn missing_schema_fails_loudly() {
        let doc = simtrace::json::parse("{\"figures\": []}").unwrap();
        let err = compare_to_baseline(&doc, &[row("fig5", 10.0, 1000)]).unwrap_err();
        assert!(err[0].contains("no \"schema\""), "{err:?}");
    }

    #[test]
    fn baseline_missing_a_run_figure_fails_instead_of_skipping() {
        // The PR 6 trap: the run produces figU rows the stale baseline
        // predates. That must be a hard failure, not a silent skip.
        let results = [row("fig5", 10.0, 1000), row("figU-direct", 10.0, 1000)];
        let doc = baseline_json("hpbd-perfbench-v4", &[("fig5", 100.0)]);
        let err = compare_to_baseline(&doc, &results).unwrap_err();
        assert!(
            err[0].contains("missing from baseline: [figU-direct]"),
            "{err:?}"
        );
    }

    #[test]
    fn baseline_with_extra_figures_fails() {
        let results = [row("fig5", 10.0, 1000)];
        let doc = baseline_json("hpbd-perfbench-v4", &[("fig5", 100.0), ("fig77", 100.0)]);
        let err = compare_to_baseline(&doc, &results).unwrap_err();
        assert!(
            err[0].contains("not produced by this run: [fig77]"),
            "{err:?}"
        );
    }

    #[test]
    fn regression_gate_still_fires_on_matching_sets() {
        // 50 events/s against a 100 events/s baseline on a gated (>=1 s)
        // figure: well past the 20% tolerance.
        let results = [row("fig5", 10.0, 500)];
        let doc = baseline_json("hpbd-perfbench-v4", &[("fig5", 100.0)]);
        let err = compare_to_baseline(&doc, &results).unwrap_err();
        assert!(err.iter().any(|m| m.contains("events/sec fell")), "{err:?}");
    }

    #[test]
    fn malformed_row_is_an_error_not_a_skip() {
        let doc = simtrace::json::parse(
            "{\"schema\": \"hpbd-perfbench-v4\", \
             \"figures\": [{\"name\": \"fig5\"}]}",
        )
        .unwrap();
        let err = compare_to_baseline(&doc, &[row("fig5", 10.0, 1000)]).unwrap_err();
        assert!(err[0].contains("no events_per_sec"), "{err:?}");
    }
}
