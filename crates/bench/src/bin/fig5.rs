//! Figure 5: testswap execution time across swap devices.
use bench::figures::fig5;
use bench::report::{hpbd_note, print_metrics, print_paper_note, print_rows, write_trace, Row};
use bench::CommonArgs;
use simcore::TraceSession;

fn main() {
    let args = CommonArgs::parse();
    let mut session = TraceSession::new(args.trace.is_some());
    println!(
        "Figure 5 — Testswap Execution Time (scale 1/{}: {} MiB dataset, {} MiB local)",
        args.scale,
        (1 << 30) / args.scale / (1 << 20),
        (512 << 20) / args.scale / (1 << 20)
    );
    let reports = fig5::run_traced(&args, &mut session);
    let rows: Vec<Row> = reports
        .iter()
        .map(|r| {
            Row::new(
                r.label.clone(),
                r.elapsed.as_secs_f64(),
                format!(
                    "outs={} ins={} throttles={} mean-req={:.0}B{}",
                    r.vm.swap_outs,
                    r.vm.swap_ins,
                    r.vm.throttles,
                    r.mean_request_bytes,
                    hpbd_note(r)
                ),
            )
        })
        .collect();
    print_rows("testswap execution time", "seconds", &rows);
    println!();
    print_paper_note(&[
        "local 5.8s, HPBD 8.4s (local 1.45x faster than HPBD);",
        "HPBD 2.2x faster than disk, 1.45x faster than NBD-GigE, 1.29x faster than NBD-IPoIB.",
    ]);
    if args.metrics {
        print_metrics(reports.iter().map(|r| (r.label.as_str(), &r.metrics)));
    }
    write_trace(&args, &session);
}
