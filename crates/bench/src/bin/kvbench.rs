//! Extra experiment (beyond the paper): a database-like key-value
//! transaction mix across the five swap configurations — the workload the
//! paper's introduction motivates ("modern databases typically maintain
//! millions of records"). Random single-page faults defeat readahead, so
//! the device latency gap shows up harder than in the paper's figures.
use bench::figures::standard_configs;
use bench::report::{print_rows, Row};
use bench::CommonArgs;
use workloads::kvstore::KvParams;
use workloads::Scenario;

fn main() {
    let args = CommonArgs::parse();
    // Table ≈ 1.5x local memory, skewed popularity: the hot set mostly
    // fits, the tail pages — the out-of-core database regime.
    let records = (args.scaled_bytes(768 << 20) / 80) as usize; // ~40B/slot at 50% load
    let operations = records * 2;
    println!(
        "KV transaction mix (scale 1/{}: {} records, {} ops, 80% reads, skewed)",
        args.scale, records, operations
    );
    let run = |config: &workloads::ScenarioConfig| {
        let scenario = Scenario::build(config);
        scenario.run_kvstore(KvParams {
            records,
            operations,
            seed: args.seed,
            skewed: true,
            ..KvParams::default()
        })
    };
    let rows: Vec<Row> = standard_configs(&args)
        .into_iter()
        .map(|(label, mut config)| {
            // Random single-page faults: swap-in readahead only pollutes
            // memory here, so the tuned configuration disables it (see the
            // ablation below).
            config.readahead_pages = Some(1);
            let report = run(&config);
            Row::new(
                label,
                report.elapsed.as_secs_f64(),
                format!(
                    "outs={} ins={} faults={}",
                    report.vm.swap_outs, report.vm.swap_ins, report.vm.major_faults
                ),
            )
        })
        .collect();
    print_rows("KV store transaction mix (readahead off)", "seconds", &rows);

    // Readahead ablation on the HPBD row: the 2.4 default of 8 pages vs off.
    let mut rows = Vec::new();
    for (label, ra) in [
        ("readahead-8 (2.4 default)", None),
        ("readahead-off", Some(1)),
    ] {
        let (_, mut config) = standard_configs(&args).into_iter().nth(1).expect("HPBD");
        config.readahead_pages = ra;
        let report = run(&config);
        rows.push(Row::new(
            label,
            report.elapsed.as_secs_f64(),
            format!(
                "ins={} readaheads={} faults={}",
                report.vm.swap_ins, report.vm.readaheads, report.vm.major_faults
            ),
        ));
    }
    print_rows(
        "swap-in readahead under random faults (HPBD)",
        "seconds",
        &rows,
    );
    println!("\n(sequential workloads love the 8-page window — Figure 6; random ones pay for it)");
}
