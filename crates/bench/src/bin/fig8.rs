//! Figure 8: Barnes execution time across swap devices.
use bench::figures::fig8;
use bench::report::{print_paper_note, print_rows, Row};
use bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure 8 — Barnes Execution Time (scale 1/{}: {} bodies)",
        args.scale,
        (2_097_152u64 / args.scale).max(2048)
    );
    let rows: Vec<Row> = fig8::run(&args)
        .into_iter()
        .map(|r| {
            Row::new(
                r.label.clone(),
                r.elapsed.as_secs_f64(),
                format!(
                    "outs={} ins={} faults={}",
                    r.vm.swap_outs, r.vm.swap_ins, r.vm.major_faults
                ),
            )
        })
        .collect();
    print_rows("Barnes execution time", "seconds", &rows);
    println!();
    print_paper_note(&[
        "similar trends to quicksort; since Barnes does not perform intensive",
        "swapping (peak 516MB vs 512MB local), the improvement is less evident.",
    ]);
}
