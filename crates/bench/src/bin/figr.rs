//! Figure R (reproduction extra): recovery from a memory-server crash,
//! HPBD (mirrored writes, timeout + failover) vs the NBD baseline.
use bench::figures::figr;
use bench::report::{print_paper_note, print_rows, Row};
use bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure R — Recovery From a Memory-Server Failure (scale 1/{})",
        args.scale
    );
    let fig = figr::run(&args);
    println!(
        "fault injected at t={:.1}ms (virtual)\n",
        fig.fault_at_ns as f64 / 1e6
    );

    let rows: Vec<Row> = fig
        .rows
        .iter()
        .map(|r| {
            let recovery = match r.recovery_ms {
                Some(ms) => match r.detection_ms {
                    Some(d) => format!("detect={d:.2}ms recovery={ms:.2}ms"),
                    None => format!("recovery={ms:.2}ms"),
                },
                None if r.fault_ms.is_some() => "recovery=never".to_string(),
                None => "healthy".to_string(),
            };
            Row::new(
                r.label.clone(),
                r.elapsed_secs,
                format!(
                    "{recovery} timeouts={} retries={} failovers={} clean_failures={} \
                     stale_drops={} migration_retries={}",
                    r.timeouts,
                    r.retries,
                    r.failovers,
                    r.clean_failures,
                    r.stale_drops,
                    r.migration_retries
                ),
            )
        })
        .collect();
    print_rows("makespan", "seconds", &rows);

    let crash = &fig.rows[1];
    if !crash.recovery_cdf.is_empty() {
        println!(
            "\nrecovery-latency CDF ({}, requests overlapping the outage):",
            crash.label
        );
        println!("  {:>12} {:>8}", "latency_ms", "cumfrac");
        for &(ms, frac) in sparse(&crash.recovery_cdf, 16) {
            println!("  {ms:>12.3} {frac:>8.3}");
        }
    }

    println!(
        "\ndegraded-throughput timeline (MiB/s per {}-bin):",
        figr::TIMELINE_BINS
    );
    println!(
        "  {:>10} {:>14} {:>14} {:>14}",
        "t_ms", &fig.rows[0].label, &fig.rows[1].label, &fig.rows[3].label
    );
    for i in 0..figr::TIMELINE_BINS {
        let t = fig.rows[1].timeline[i].t_ms;
        let h = fig.rows[0].timeline.get(i).map_or(0.0, |s| s.mib_per_s);
        let c = fig.rows[1].timeline[i].mib_per_s;
        let n = fig.rows[3].timeline.get(i).map_or(0.0, |s| s.mib_per_s);
        println!("  {t:>10.1} {h:>14.1} {c:>14.1} {n:>14.1}");
    }

    println!();
    print_paper_note(&[
        "the paper leaves reliability out of scope (§4.1); this figure measures",
        "the reproduction's recovery story: HPBD with mirrored writes rides out",
        "a 1-of-4 server crash (finite recovery, workload completes), while the",
        "NBD baseline dies permanently — but cleanly — on a TCP reset.",
    ]);
}

/// At most `n` evenly spaced points of a CDF (always keeping the last).
fn sparse(cdf: &[(f64, f64)], n: usize) -> impl Iterator<Item = &(f64, f64)> {
    let step = (cdf.len() / n).max(1);
    cdf.iter()
        .enumerate()
        .filter(move |(i, _)| i % step == 0 || *i == cdf.len() - 1)
        .map(|(_, p)| p)
}
