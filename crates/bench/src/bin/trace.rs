//! Swap-trace tooling: record a workload's block traffic, replay it
//! against any device.
//!
//! ```text
//! # record quicksort's swap traffic (HPBD machine) into a trace file
//! cargo run --release -p bench --bin trace -- record /tmp/qsort.trace --scale 64
//! # replay it against every device, open- and closed-loop
//! cargo run --release -p bench --bin trace -- replay /tmp/qsort.trace
//! ```
use bench::CommonArgs;
use blockdev::trace::{replay_closed_loop, replay_open_loop};
use blockdev::{SimDisk, SwapTrace};
use netmodel::{Calibration, Node, Transport};
use simcore::Engine;
use std::rc::Rc;
use workloads::{Scenario, ScenarioConfig, SwapKind};

fn record(path: &str, args: &CommonArgs) {
    let local = args.scaled_bytes(512 << 20);
    let swap = args.scaled_bytes(1 << 30);
    let elements = args.scaled_elems(256 << 20);
    let config = ScenarioConfig::new(local, swap, SwapKind::Hpbd { servers: 1 });
    let scenario = Scenario::build(&config);
    let report = scenario.run_qsort(elements, args.seed);
    let log = scenario.dispatch_log().expect("swap queue");
    let trace = SwapTrace::from_dispatch_log(&log.borrow());
    std::fs::write(path, trace.to_text()).expect("write trace file");
    let (r, w) = trace.bytes();
    println!(
        "recorded {} events ({} read MiB, {} write MiB) from a {:.3}s quicksort run -> {path}",
        trace.events.len(),
        r >> 20,
        w >> 20,
        report.elapsed.as_secs_f64()
    );
}

fn replay(path: &str, args: &CommonArgs) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let trace = SwapTrace::from_text(&text).expect("parse trace");
    println!(
        "replaying {} events against each device (closed-loop)\n",
        trace.events.len()
    );
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "device", "makespan(s)", "mean lat(us)", "max lat(us)"
    );
    let cal = Rc::new(Calibration::cluster_2005());
    let capacity = args.scaled_bytes(1 << 30) + (128 << 20);

    // HPBD (2 servers).
    {
        let engine = Engine::new();
        let cluster = hpbd::ClusterBuilder::new()
            .servers(2)
            .per_server_capacity(capacity / 2)
            .build(&engine, cal.clone());
        let report = replay_closed_loop(&engine, Rc::new(cluster.client.clone()), &trace);
        print_row("HPBD-2", &report);
    }
    // NBD over both transports.
    for (label, transport) in [
        ("NBD-IPoIB", Transport::IpoIb),
        ("NBD-GigE", Transport::GigE),
    ] {
        let engine = Engine::new();
        let node = Node::new("client", 0, 2);
        let dev = nbd::build_pair(&engine, cal.clone(), transport, &node, capacity);
        let report = replay_closed_loop(&engine, Rc::new(dev), &trace);
        print_row(label, &report);
    }
    // Disk closed-loop, then raw-vs-elevator under open-loop arrivals
    // (open loop builds a queue, which is what the elevator exists to
    // reorder; both rows are swamped by queueing — compare them to each
    // other, not to the closed-loop rows).
    {
        let engine = Engine::new();
        let disk = Rc::new(SimDisk::new(
            engine.clone(),
            cal.disk.clone(),
            capacity,
            "hda",
        ));
        let report = replay_closed_loop(&engine, disk, &trace);
        print_row("disk", &report);
    }
    println!();
    for (label, use_elevator) in [("disk open*", false), ("disk+cscan*", true)] {
        let engine = Engine::new();
        let disk = Rc::new(SimDisk::new(
            engine.clone(),
            cal.disk.clone(),
            capacity,
            "hda",
        ));
        let report = if use_elevator {
            let elevator = Rc::new(blockdev::Elevator::new(disk, 1));
            replay_open_loop(&engine, elevator, &trace)
        } else {
            replay_open_loop(&engine, disk, &trace)
        };
        print_row(label, &report);
    }
    println!("\n(*open-loop arrivals at the recorded HPBD-speed timestamps: the disk");
    println!(" queues heavily. Note the two-edged sword: C-SCAN helps streams in");
    println!(" disjoint regions — see blockdev::elevator tests — but on a swap trace");
    println!(" whose read and write runs share a region, globally sorting by offset");
    println!(" can BREAK the bursts' natural contiguity; this is why real kernels");
    println!(" moved to anticipatory/deadline schedulers.)");
}

fn print_row(label: &str, report: &blockdev::ReplayReport) {
    println!(
        "{:<12} {:>12.3} {:>14.1} {:>14.1}",
        label,
        report.makespan.as_secs_f64(),
        report.latency_us.mean(),
        report.latency_us.max().unwrap_or(0.0)
    );
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let mode = argv.next().unwrap_or_default();
    let path = argv.next().unwrap_or_else(|| "/tmp/hpbd.trace".to_string());
    // Remaining args go through the common parser (hack: rebuild argv).
    let rest: Vec<String> = argv.collect();
    let args = {
        let mut a = CommonArgs::default();
        let mut it = rest.iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => a.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(a.scale),
                "--seed" => a.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(a.seed),
                _ => {}
            }
        }
        a
    };
    match mode.as_str() {
        "record" => record(&path, &args),
        "replay" => replay(&path, &args),
        _ => {
            eprintln!("usage: trace record|replay <file> [--scale N] [--seed N]");
            std::process::exit(2);
        }
    }
}
