//! Figure 9: two concurrent quicksort instances, multi-server HPBD.
use bench::figures::fig9;
use bench::report::{hpbd_note, print_metrics, print_paper_note, print_rows, write_trace, Row};
use bench::CommonArgs;
use simcore::TraceSession;

fn main() {
    let args = CommonArgs::parse();
    let mut session = TraceSession::new(args.trace.is_some());
    println!(
        "Figure 9 — Quick Sort Execution Time, Two Concurrent Instances (scale 1/{})",
        args.scale
    );
    let runs = fig9::run_traced(&args, &mut session);
    let rows: Vec<Row> = runs
        .iter()
        .map(|r| {
            Row::new(
                r.label.clone(),
                r.makespan_secs,
                format!(
                    "A={:.2}s B={:.2}s outs={}{}",
                    r.a_secs,
                    r.b_secs,
                    r.swap_outs,
                    hpbd_note(&r.report)
                ),
            )
        })
        .collect();
    print_rows("two-instance makespan", "seconds", &rows);
    println!();
    print_paper_note(&[
        "with 50% of local memory HPBD is 1.7x slower than the 2GB local case,",
        "with 25% it is 2.5x slower; disk paging is ~36x slower",
        "(whence the abstract's 'up to 21 times faster than local disk').",
    ]);
    if args.metrics {
        print_metrics(runs.iter().map(|r| (r.label.as_str(), &r.report.metrics)));
    }
    write_trace(&args, &session);
}
