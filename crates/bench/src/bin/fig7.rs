//! Figure 7: quicksort execution time across swap devices.
use bench::figures::fig7;
use bench::report::{print_paper_note, print_rows, Row};
use bench::CommonArgs;

fn main() {
    let args = CommonArgs::parse();
    println!(
        "Figure 7 — Quick Sort Execution Time (scale 1/{}: {} Mi elements)",
        args.scale,
        (256 << 20) / args.scale / (1 << 20)
    );
    let rows: Vec<Row> = fig7::run(&args)
        .into_iter()
        .map(|r| {
            Row::new(
                r.label.clone(),
                r.elapsed.as_secs_f64(),
                format!(
                    "outs={} ins={} faults={} throttles={}",
                    r.vm.swap_outs, r.vm.swap_ins, r.vm.major_faults, r.vm.throttles
                ),
            )
        })
        .collect();
    print_rows("quicksort execution time", "seconds", &rows);
    println!();
    print_paper_note(&[
        "local 94s, HPBD 138s (memory 1.47x faster than HPBD);",
        "HPBD 4.5x faster than local disk, 1.36x faster than NBD-GigE, 1.13x than NBD-IPoIB.",
    ]);
}
