//! A minimal, dependency-free stand-in for the parts of the `bytes` crate
//! this workspace uses: cheaply-cloneable immutable [`Bytes`], a growable
//! [`BytesMut`] builder, and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the wire protocols need.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `bytes` dependency to this path crate. Only the API
//! surface actually exercised by the suite is provided; semantics match
//! the real crate for that subset.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::rc::Rc;

/// A cheaply cloneable, contiguous, immutable byte buffer.
///
/// Cloning is O(1): clones share the underlying storage. Slicing adjusts
/// a view window without copying.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Rc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice without copying.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes {
            start: 0,
            end: s.len(),
            repr: Repr::Static(s),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of this buffer (no copy).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        let mut out = self.clone();
        out.end = out.start + hi;
        out.start += lo;
        out
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => &s[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            start: 0,
            end: v.len(),
            repr: Repr::Shared(Rc::new(v)),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer used to build messages, frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Split off and return the first `n` bytes, leaving the rest.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.data.len(), "split_to out of range");
        let rest = self.data.split_off(n);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read cursor over a byte buffer: little-endian integer accessors plus
/// explicit advancement, matching the real crate's provided methods.
pub trait Buf {
    /// Bytes remaining ahead of the cursor.
    fn remaining(&self) -> usize;

    /// The bytes ahead of the cursor.
    fn chunk(&self) -> &[u8];

    /// Move the cursor forward by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64` and advance.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Read a single byte and advance.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write cursor used to build messages with little-endian encoders.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0123_4567_89AB_CDEF);
        b.put_u8(7);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(frozen.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        assert_eq!(s.slice(1..3).to_vec(), vec![3, 4]);
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn split_to_partitions() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"hello world");
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
        assert_eq!(&head.freeze()[..], b"hello");
    }

    #[test]
    fn static_bytes_are_zero_copy() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![b'a', b'b', b'c']);
    }
}
