#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # nbd — the TCP network block device baseline
//!
//! A reimplementation of the paper's comparison system: the Linux Network
//! Block Device (paper §3.3), a block device whose backing store lives on a
//! remote server reached over kernel TCP sockets. Run it over
//! [`netmodel::Transport::GigE`] for NBD-GigE and
//! [`netmodel::Transport::IpoIb`] for NBD-IPoIB — above the IP layer the
//! code path is identical, exactly as the paper notes.
//!
//! Fidelity points that matter for the figures:
//!
//! * **Blocking transfer per request**: the client sends one request and
//!   waits for its reply before sending the next ("NBD simply uses blocking
//!   mode transfer for each request and response", §6.2) — no pipelining,
//!   unlike HPBD's credit window.
//! * **Single server**: as of Linux 2.4, one NBD device is served by one
//!   remote server (§3.3), so the multi-server experiments have no NBD bar.
//! * **Page data rides the TCP stream**, paying per-segment and per-byte
//!   host stack costs on both ends (see `tcpsim`), where HPBD moves data by
//!   RDMA.

pub mod client;
pub mod proto;
pub mod server;

pub use client::NbdClient;
pub use server::NbdServer;

use netmodel::{Calibration, Node, Transport, TransportModel};
use simcore::{Engine, SimTime};
use simfault::{FaultEvent, FaultPlan};
use std::rc::Rc;

/// Build a connected NBD client/server pair over `transport`. The server
/// gets its own node; the client lives on `client_node` (shared with the
/// VM). Returns the client block device.
pub fn build_pair(
    engine: &Engine,
    cal: Rc<Calibration>,
    transport: Transport,
    client_node: &Node,
    capacity: u64,
) -> NbdClient {
    build_pair_with_faults(
        engine,
        cal,
        transport,
        client_node,
        capacity,
        &FaultPlan::new(),
    )
}

/// [`build_pair`], arming a deterministic [`FaultPlan`] against the TCP
/// connection. Only [`FaultEvent::TcpReset`] entries apply to NBD; the
/// server/link-targeted InfiniBand faults are ignored, so one plan can be
/// shared between an HPBD cell and its NBD baseline. An empty plan
/// schedules nothing — the run is byte-identical to [`build_pair`].
pub fn build_pair_with_faults(
    engine: &Engine,
    cal: Rc<Calibration>,
    transport: Transport,
    client_node: &Node,
    capacity: u64,
    plan: &FaultPlan,
) -> NbdClient {
    let model: Rc<TransportModel> = Rc::new(match transport {
        Transport::IbRdma => cal.ib.clone(),
        Transport::IpoIb => cal.ipoib.clone(),
        Transport::GigE => cal.gige.clone(),
    });
    let server_node = Node::new(format!("nbd-server-{}", model.name), 9000, 2);
    let (conn_c, conn_s) = tcpsim::connect(engine, model, client_node, &server_node);
    let server = NbdServer::new(engine.clone(), cal.clone(), server_node, capacity);
    server.serve(conn_s);
    for fault in plan.events() {
        if let FaultEvent::TcpReset = fault.event {
            let conn = conn_c.clone();
            engine.schedule_at(SimTime(fault.at_ns), move || conn.reset());
        }
    }
    NbdClient::new(
        engine.clone(),
        cal,
        client_node.clone(),
        conn_c,
        capacity,
        transport,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockdev::{new_buffer, Bio, BlockDevice, IoOp, IoRequest};
    use std::cell::Cell;
    use std::rc::Rc;

    fn pair(transport: Transport) -> (Engine, NbdClient) {
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        let dev = build_pair(&engine, cal, transport, &node, 8 << 20);
        (engine, dev)
    }

    #[test]
    fn roundtrip_over_gige() {
        let (engine, dev) = pair(Transport::GigE);
        let wbuf = new_buffer(8192);
        wbuf.borrow_mut().fill(0x42);
        dev.submit(IoRequest::single(Bio::new(IoOp::Write, 4096, wbuf, |r| {
            r.unwrap()
        })));
        engine.run_until_idle();
        let rbuf = new_buffer(8192);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            4096,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(rbuf.borrow().iter().all(|&b| b == 0x42));
    }

    #[test]
    fn roundtrip_over_ipoib() {
        let (engine, dev) = pair(Transport::IpoIb);
        let wbuf = new_buffer(4096);
        wbuf.borrow_mut().fill(0x17);
        dev.submit(IoRequest::single(Bio::new(IoOp::Write, 0, wbuf, |r| {
            r.unwrap()
        })));
        engine.run_until_idle();
        let rbuf = new_buffer(4096);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            rbuf.clone(),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        assert!(rbuf.borrow().iter().all(|&b| b == 0x17));
    }

    #[test]
    fn requests_are_serialized_not_pipelined() {
        let (engine, dev) = pair(Transport::GigE);
        // Two writes issued back to back: total time ≈ 2x one write
        // (blocking per request), not ~1x (pipelined).
        let t0 = engine.now();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            0,
            new_buffer(64 * 1024),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        let one = (engine.now() - t0).as_nanos();

        let t1 = engine.now();
        for i in 0..2u64 {
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 65536,
                new_buffer(64 * 1024),
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let two = (engine.now() - t1).as_nanos();
        assert!(
            two > one * 17 / 10,
            "two blocking writes ({two}ns) should cost near 2x one ({one}ns)"
        );
    }

    #[test]
    fn gige_slower_than_ipoib() {
        let run = |t: Transport| {
            let (engine, dev) = pair(t);
            let t0 = engine.now();
            for i in 0..4u64 {
                dev.submit(IoRequest::single(Bio::new(
                    IoOp::Write,
                    i * 131072,
                    new_buffer(128 * 1024),
                    |r| r.unwrap(),
                )));
            }
            engine.run_until_idle();
            (engine.now() - t0).as_nanos()
        };
        let gige = run(Transport::GigE);
        let ipoib = run(Transport::IpoIb);
        assert!(
            gige > ipoib,
            "GigE {gige} should be slower than IPoIB {ipoib}"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let (engine, dev) = pair(Transport::GigE);
        let got = Rc::new(Cell::new(None));
        {
            let got = got.clone();
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                dev.capacity(),
                new_buffer(4096),
                move |r| got.set(Some(r)),
            )));
        }
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(blockdev::IoError::OutOfRange)));
    }

    #[test]
    fn interleaved_read_write_alternation() {
        // Write then immediately read the same offset, repeatedly: the
        // serialized protocol must keep them ordered.
        let (engine, dev) = pair(Transport::GigE);
        for round in 0..8u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(round as u8 + 1);
            dev.submit(IoRequest::single(Bio::new(IoOp::Write, 0, buf, |r| {
                r.unwrap()
            })));
            let rbuf = new_buffer(4096);
            let expect = round as u8 + 1;
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Read,
                0,
                rbuf.clone(),
                move |r| r.unwrap(),
            )));
            engine.run_until_idle();
            assert!(
                rbuf.borrow().iter().all(|&b| b == expect),
                "round {round}: read saw stale data"
            );
        }
    }

    #[test]
    fn stats_track_traffic() {
        let (engine, dev) = pair(Transport::IpoIb);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            0,
            new_buffer(8192),
            |r| r.unwrap(),
        )));
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            new_buffer(4096),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        let s = dev.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_out, 8192);
        assert_eq!(s.bytes_in, 4096);
    }

    #[test]
    fn tcp_reset_fails_inflight_and_queued_cleanly() {
        use blockdev::{DeviceHealth, FaultKind, IoError};
        let engine = Engine::new();
        let cal = Rc::new(Calibration::cluster_2005());
        let node = Node::new("client", 0, 2);
        // Reset the connection at t=0: it fires from the event loop while
        // the first request is on the wire.
        let plan = simfault::FaultPlan::new().tcp_reset(0);
        let dev = build_pair_with_faults(&engine, cal, Transport::GigE, &node, 8 << 20, &plan);
        assert_eq!(dev.health(), DeviceHealth::Healthy);
        let results: Vec<_> = (0..3u64)
            .map(|i| {
                let got = Rc::new(Cell::new(None));
                let sink = got.clone();
                dev.submit(IoRequest::single(Bio::new(
                    IoOp::Write,
                    i * 4096,
                    new_buffer(4096),
                    move |r| sink.set(Some(r)),
                )));
                got
            })
            .collect();
        engine.run_until_idle();
        // Every request failed cleanly — no hang, no lost completion.
        for (i, got) in results.iter().enumerate() {
            assert_eq!(
                got.get(),
                Some(Err(IoError::Fault(FaultKind::Reset))),
                "request {i} should fail with Reset"
            );
        }
        assert_eq!(dev.health(), DeviceHealth::Failed);

        // Submissions after the reset also fail cleanly, from the event loop.
        let got = Rc::new(Cell::new(None));
        let sink = got.clone();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            new_buffer(4096),
            move |r| sink.set(Some(r)),
        )));
        assert_eq!(got.get(), None, "completion must not run on submit's stack");
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(IoError::Fault(FaultKind::Reset))));
    }

    #[test]
    fn shutdown_stops_new_submissions() {
        use blockdev::{DeviceHealth, FaultKind, IoError};
        let (engine, dev) = pair(Transport::IpoIb);
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Write,
            0,
            new_buffer(4096),
            |r| r.unwrap(),
        )));
        engine.run_until_idle();
        dev.shutdown();
        assert_eq!(dev.health(), DeviceHealth::Failed);
        let got = Rc::new(Cell::new(None));
        let sink = got.clone();
        dev.submit(IoRequest::single(Bio::new(
            IoOp::Read,
            0,
            new_buffer(4096),
            move |r| sink.set(Some(r)),
        )));
        engine.run_until_idle();
        assert_eq!(got.get(), Some(Err(IoError::Fault(FaultKind::Reset))));
    }

    #[test]
    fn many_pages_integrity() {
        let (engine, dev) = pair(Transport::IpoIb);
        for i in 0..32u64 {
            let buf = new_buffer(4096);
            buf.borrow_mut().fill(i as u8 + 1);
            dev.submit(IoRequest::single(Bio::new(
                IoOp::Write,
                i * 4096,
                buf,
                |r| r.unwrap(),
            )));
        }
        engine.run_until_idle();
        let bufs: Vec<_> = (0..32u64)
            .map(|i| {
                let buf = new_buffer(4096);
                dev.submit(IoRequest::single(Bio::new(
                    IoOp::Read,
                    i * 4096,
                    buf.clone(),
                    |r| r.unwrap(),
                )));
                buf
            })
            .collect();
        engine.run_until_idle();
        for (i, buf) in bufs.iter().enumerate() {
            assert!(buf.borrow().iter().all(|&b| b == i as u8 + 1), "page {i}");
        }
    }
}
