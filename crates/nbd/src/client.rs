//! The NBD client block device.
//!
//! Requests are served strictly one at a time: send the header (and write
//! payload), block until the reply (and read payload) returns, complete,
//! then start the next queued request — the blocking transfer mode the
//! paper contrasts with HPBD's asynchronous design (§6.2).

use crate::proto::{NbdCmd, NbdReply, NbdRequest, REPLY_SIZE};
use blockdev::{BlockDevice, DeviceHealth, FaultKind, IoError, IoOp, IoRequest};
use bytes::Bytes;
use netmodel::{Calibration, Node, Transport};
use simcore::Engine;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use tcpsim::TcpConn;

/// Client statistics.
#[derive(Clone, Debug, Default)]
pub struct NbdStats {
    /// Requests completed.
    pub requests: u64,
    /// Bytes written to the server.
    pub bytes_out: u64,
    /// Bytes read from the server.
    pub bytes_in: u64,
}

struct ClientInner {
    engine: Engine,
    conn: TcpConn,
    capacity: u64,
    queue: RefCell<VecDeque<IoRequest>>,
    /// The single blocking-mode request currently on the wire. Held here
    /// (not moved into the recv continuation) so a connection reset can
    /// fail it: tcpsim drops pending continuations on reset, and a request
    /// captured by one would vanish without ever completing.
    inflight: RefCell<Option<IoRequest>>,
    /// Lifecycle part index of the in-flight request (one at a time, so a
    /// plain cell is enough).
    inflight_part: Cell<u16>,
    busy: Cell<bool>,
    /// Set on TCP reset or shutdown; the device stops serving for good
    /// (Linux 2.4 NBD has no reconnect path — the paper's baseline simply
    /// loses its device when the connection dies).
    failed: Cell<bool>,
    next_handle: Cell<u64>,
    stats: RefCell<NbdStats>,
    name: String,
    ctr_requests: simtrace::LazyCounter,
}

/// The NBD block device. Clone shares the device.
#[derive(Clone)]
pub struct NbdClient {
    inner: Rc<ClientInner>,
}

impl NbdClient {
    /// Wrap an established connection as a block device of `capacity`
    /// bytes.
    pub fn new(
        engine: Engine,
        _cal: Rc<Calibration>,
        _node: Node,
        conn: TcpConn,
        capacity: u64,
        transport: Transport,
    ) -> NbdClient {
        let client = NbdClient {
            inner: Rc::new(ClientInner {
                ctr_requests: engine.metrics().lazy_counter("nbd.requests"),
                engine,
                conn,
                capacity,
                queue: RefCell::new(VecDeque::new()),
                inflight: RefCell::new(None),
                inflight_part: Cell::new(0),
                busy: Cell::new(false),
                failed: Cell::new(false),
                next_handle: Cell::new(1),
                stats: RefCell::new(NbdStats::default()),
                name: format!("nbd0-{}", transport.label()),
            }),
        };
        let this = client.clone();
        client.inner.conn.set_reset_handler(move || this.on_reset());
        client
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NbdStats {
        self.inner.stats.borrow().clone()
    }

    /// Start the next queued request if the single in-flight slot is free.
    fn pump(&self) {
        let inner = &self.inner;
        if inner.busy.get() || inner.failed.get() {
            return;
        }
        let Some(req) = inner.queue.borrow_mut().pop_front() else {
            return;
        };
        inner.busy.set(true);
        let handle = inner.next_handle.get();
        inner.next_handle.set(handle + 1);
        let started = inner.engine.now();
        inner.ctr_requests.inc();
        if let Some(ctx) = req.lifecycle() {
            // One attempt, one part: time before here is queue wait, the
            // stretch from Posted to ReplyReceived is the blocking transfer.
            let part = ctx.alloc_part();
            inner.inflight_part.set(part);
            ctx.mark(part, 0, simtrace::MarkKind::Posted, started.as_nanos());
        }

        let header = NbdRequest::new(
            match req.op() {
                IoOp::Read => NbdCmd::Read,
                IoOp::Write => NbdCmd::Write,
            },
            handle,
            req.offset(),
            req.len() as u32,
        );
        inner.conn.send(header.encode());
        if req.op() == IoOp::Write {
            inner.conn.send(Bytes::from(req.gather()));
        }

        let op = req.op();
        let len = req.len();
        *inner.inflight.borrow_mut() = Some(req);

        // Block on the reply header, then (for reads) the payload.
        let this = self.clone();
        inner.conn.recv(REPLY_SIZE, move |raw| {
            let span_done = {
                let this = this.clone();
                move |ok: bool| {
                    let engine = &this.inner.engine;
                    if engine.trace_enabled() {
                        engine.tracer().span(
                            "nbd",
                            match op {
                                IoOp::Read => "request_read",
                                IoOp::Write => "request_write",
                            },
                            started.as_nanos(),
                            engine.now().as_nanos(),
                            &[("handle", handle), ("bytes", len), ("ok", ok as u64)],
                        );
                    }
                    let us = (engine.now().since(started).as_nanos() / 1_000) as f64;
                    engine.metrics().observe(
                        match op {
                            IoOp::Read => "nbd.swap_in_latency_us",
                            IoOp::Write => "nbd.swap_out_latency_us",
                        },
                        us,
                    );
                }
            };
            let reply = match NbdReply::decode(raw) {
                Ok(reply) => reply,
                Err(_) => {
                    // Stream corruption: the device cannot trust anything
                    // that follows, so fail the request.
                    span_done(false);
                    this.finish(Err(IoError::DeviceError("corrupt NBD reply")));
                    return;
                }
            };
            assert_eq!(reply.handle(), handle, "NBD reply out of order");
            if reply.error() != 0 {
                span_done(false);
                this.finish(Err(IoError::DeviceError("nbd server error")));
                return;
            }
            match op {
                IoOp::Write => {
                    this.inner.stats.borrow_mut().bytes_out += len;
                    span_done(true);
                    this.finish(Ok(()));
                }
                IoOp::Read => {
                    let this2 = this.clone();
                    this.inner.conn.recv(len as usize, move |data| {
                        if let Some(req) = this2.inner.inflight.borrow().as_ref() {
                            req.scatter(&data);
                        }
                        this2.inner.stats.borrow_mut().bytes_in += data.len() as u64;
                        span_done(true);
                        this2.finish(Ok(()));
                    });
                }
            }
        });
    }

    fn finish(&self, result: Result<(), IoError>) {
        let Some(req) = self.inner.inflight.borrow_mut().take() else {
            return; // a reset already failed this request
        };
        self.inner.stats.borrow_mut().requests += 1;
        if let Some(ctx) = req.lifecycle() {
            let part = self.inner.inflight_part.get();
            let now = self.inner.engine.now().as_nanos();
            ctx.mark(part, 0, simtrace::MarkKind::ReplyReceived, now);
            ctx.mark(part, 0, simtrace::MarkKind::Done, now);
        }
        req.complete(result);
        self.inner.busy.set(false);
        // Next request, from the event loop.
        let this = self.clone();
        self.inner
            .engine
            .schedule_at(self.inner.engine.now(), move || this.pump());
    }

    /// The connection died under us. Fail the in-flight request and
    /// everything queued behind it with [`FaultKind::Reset`], and refuse
    /// all future submissions: the paper-era NBD driver has no reconnect.
    /// Runs from the event loop (tcpsim defers the handler), so completing
    /// requests directly preserves callback-after-return ordering.
    fn on_reset(&self) {
        let inner = &self.inner;
        if inner.failed.replace(true) {
            return;
        }
        inner.engine.metrics().inc("nbd.resets");
        if inner.engine.trace_enabled() {
            inner
                .engine
                .tracer()
                .instant("nbd", "reset", inner.engine.now().as_nanos(), &[]);
        }
        let inflight = inner.inflight.borrow_mut().take();
        if let Some(req) = inflight {
            req.complete(Err(IoError::Fault(FaultKind::Reset)));
        }
        inner.busy.set(false);
        let queued: Vec<IoRequest> = inner.queue.borrow_mut().drain(..).collect();
        for req in queued {
            req.complete(Err(IoError::Fault(FaultKind::Reset)));
        }
    }
}

impl BlockDevice for NbdClient {
    fn capacity(&self) -> u64 {
        self.inner.capacity
    }

    fn name(&self) -> &str {
        &self.inner.name
    }

    fn submit(&self, req: IoRequest) {
        let inner = &self.inner;
        if inner.failed.get() {
            let engine = inner.engine.clone();
            engine.schedule_at(engine.now(), move || {
                req.complete(Err(IoError::Fault(FaultKind::Reset)))
            });
            return;
        }
        if req.offset() + req.len() > inner.capacity {
            let engine = inner.engine.clone();
            engine.schedule_at(engine.now(), move || req.complete(Err(IoError::OutOfRange)));
            return;
        }
        inner.queue.borrow_mut().push_back(req);
        self.pump();
    }

    fn shutdown(&self) {
        self.inner.failed.set(true);
    }

    fn health(&self) -> DeviceHealth {
        if self.inner.failed.get() || self.inner.conn.is_reset() {
            DeviceHealth::Failed
        } else {
            DeviceHealth::Healthy
        }
    }
}
