//! The NBD server daemon.
//!
//! Memory-backed (the paper's NBD server exports a RamDisk so that the
//! comparison with HPBD isolates the network path). Serves requests
//! sequentially off the stream: read header → (for writes) read payload →
//! touch the store (memcpy cost) → send reply (+ payload for reads).

use crate::proto::{NbdCmd, NbdReply, NbdRequest, REQUEST_SIZE};
use blockdev::Storage;
use bytes::Bytes;
use netmodel::{Calibration, Node};
use simcore::Engine;
use std::cell::RefCell;
use std::rc::Rc;
use tcpsim::TcpConn;

/// Server statistics.
#[derive(Clone, Debug, Default)]
pub struct NbdServerStats {
    /// Requests served.
    pub requests: u64,
    /// Bytes stored.
    pub bytes_in: u64,
    /// Bytes served.
    pub bytes_out: u64,
}

struct ServerInner {
    engine: Engine,
    cal: Rc<Calibration>,
    node: Node,
    storage: Storage,
    stats: RefCell<NbdServerStats>,
}

/// An NBD memory server. Clone shares the instance.
#[derive(Clone)]
pub struct NbdServer {
    inner: Rc<ServerInner>,
}

impl NbdServer {
    /// Create a server on `node` exporting `capacity` bytes of RamDisk.
    pub fn new(engine: Engine, cal: Rc<Calibration>, node: Node, capacity: u64) -> NbdServer {
        NbdServer {
            inner: Rc::new(ServerInner {
                engine,
                cal,
                node,
                storage: Storage::new(capacity),
                stats: RefCell::new(NbdServerStats::default()),
            }),
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NbdServerStats {
        self.inner.stats.borrow().clone()
    }

    /// Start the serve loop on `conn`. Runs for the life of the simulation.
    pub fn serve(&self, conn: TcpConn) {
        self.await_request(conn);
    }

    fn await_request(&self, conn: TcpConn) {
        let this = self.clone();
        let conn2 = conn.clone();
        conn.recv(REQUEST_SIZE, move |raw| {
            // A corrupt header means the stream framing is lost; stop
            // serving this connection rather than misread payloads.
            if let Ok(request) = NbdRequest::decode(raw) {
                this.dispatch(conn2, request);
            }
        });
    }

    fn dispatch(&self, conn: TcpConn, request: NbdRequest) {
        let inner = &self.inner;
        inner.stats.borrow_mut().requests += 1;
        let ok = inner
            .storage
            .in_range(request.offset(), request.len() as u64);
        match request.cmd() {
            NbdCmd::Write => {
                // Payload follows the header on the stream.
                let this = self.clone();
                let conn2 = conn.clone();
                conn.recv(request.len() as usize, move |data| {
                    let reply = if ok {
                        // memcpy payload -> store, charged to the server CPU.
                        let copy = this.inner.cal.memcpy_time(data.len() as u64);
                        let (_, t) = this.inner.node.cpu().reserve(this.inner.engine.now(), copy);
                        let this2 = this.clone();
                        let conn3 = conn2.clone();
                        this.inner.engine.schedule_at(t, move || {
                            this2.inner.storage.write_at(request.offset(), &data);
                            this2.inner.stats.borrow_mut().bytes_in += data.len() as u64;
                            conn3.send(NbdReply::new(request.handle(), 0).encode());
                            this2.await_request(conn3.clone());
                        });
                        return;
                    } else {
                        NbdReply::new(request.handle(), 5) // EIO-style
                    };
                    conn2.send(reply.encode());
                    this.await_request(conn2.clone());
                });
            }
            NbdCmd::Read => {
                if !ok {
                    conn.send(NbdReply::new(request.handle(), 5).encode());
                    self.await_request(conn);
                    return;
                }
                let mut data = vec![0u8; request.len() as usize];
                inner.storage.read_at(request.offset(), &mut data);
                let copy = inner.cal.memcpy_time(request.len() as u64);
                let (_, t) = inner.node.cpu().reserve(inner.engine.now(), copy);
                let this = self.clone();
                inner.engine.schedule_at(t, move || {
                    this.inner.stats.borrow_mut().bytes_out += data.len() as u64;
                    conn.send(NbdReply::new(request.handle(), 0).encode());
                    conn.send(Bytes::from(data));
                    this.await_request(conn.clone());
                });
            }
        }
    }
}
