//! The NBD wire protocol (TCP-version layout, paper ref \[14\]).
//!
//! Requests are a fixed 28-byte header, with write payloads inline in the
//! stream; replies are a fixed 16-byte header, with read payloads inline.
//! Decoding is total: corruption surfaces as a typed [`NbdProtoError`],
//! never a panic — the driver decides whether the stream is recoverable.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Request magic (`NBD_REQUEST_MAGIC`).
pub const REQUEST_MAGIC: u32 = 0x2560_9513;
/// Reply magic (`NBD_REPLY_MAGIC`).
pub const REPLY_MAGIC: u32 = 0x6744_6698;

/// Encoded request header size.
pub const REQUEST_SIZE: usize = 28;
/// Encoded reply header size.
pub const REPLY_SIZE: usize = 16;

/// A wire-decode failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NbdProtoError {
    /// The buffer is not the fixed header size.
    ShortHeader {
        /// Bytes required.
        expected: usize,
        /// Bytes present.
        got: usize,
    },
    /// The magic word did not match.
    BadMagic(u32),
    /// The command field held an unknown value.
    UnknownCommand(u32),
}

impl std::fmt::Display for NbdProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NbdProtoError::ShortHeader { expected, got } => {
                write!(f, "short NBD header: expected {expected} bytes, got {got}")
            }
            NbdProtoError::BadMagic(m) => write!(f, "bad NBD magic {m:#010x}"),
            NbdProtoError::UnknownCommand(c) => write!(f, "unknown NBD command {c}"),
        }
    }
}

/// NBD command type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NbdCmd {
    /// Device → client.
    Read,
    /// Client → device.
    Write,
}

/// A request header. Fields are sealed so every instance on the wire went
/// through [`NbdRequest::new`] or a checked decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbdRequest {
    cmd: NbdCmd,
    handle: u64,
    offset: u64,
    len: u32,
}

impl NbdRequest {
    /// Build a request header.
    pub fn new(cmd: NbdCmd, handle: u64, offset: u64, len: u32) -> NbdRequest {
        NbdRequest {
            cmd,
            handle,
            offset,
            len,
        }
    }

    /// Command.
    pub fn cmd(&self) -> NbdCmd {
        self.cmd
    }

    /// Client handle echoed in the reply.
    pub fn handle(&self) -> u64 {
        self.handle
    }

    /// Byte offset on the device.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Transfer length.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the request transfers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Serialise the header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REQUEST_SIZE);
        b.put_u32_le(REQUEST_MAGIC);
        b.put_u32_le(match self.cmd {
            NbdCmd::Read => 0,
            NbdCmd::Write => 1,
        });
        b.put_u64_le(self.handle);
        b.put_u64_le(self.offset);
        b.put_u32_le(self.len);
        b.freeze()
    }

    /// Parse a header.
    pub fn decode(mut b: Bytes) -> Result<NbdRequest, NbdProtoError> {
        if b.len() != REQUEST_SIZE {
            return Err(NbdProtoError::ShortHeader {
                expected: REQUEST_SIZE,
                got: b.len(),
            });
        }
        let magic = b.get_u32_le();
        if magic != REQUEST_MAGIC {
            return Err(NbdProtoError::BadMagic(magic));
        }
        let cmd = match b.get_u32_le() {
            0 => NbdCmd::Read,
            1 => NbdCmd::Write,
            other => return Err(NbdProtoError::UnknownCommand(other)),
        };
        Ok(NbdRequest {
            cmd,
            handle: b.get_u64_le(),
            offset: b.get_u64_le(),
            len: b.get_u32_le(),
        })
    }
}

/// A reply header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbdReply {
    handle: u64,
    error: u32,
}

impl NbdReply {
    /// Build a reply header (`error` 0 = success, non-zero = errno-style).
    pub fn new(handle: u64, error: u32) -> NbdReply {
        NbdReply { handle, error }
    }

    /// Echoed handle.
    pub fn handle(&self) -> u64 {
        self.handle
    }

    /// 0 = success; non-zero = errno-style failure.
    pub fn error(&self) -> u32 {
        self.error
    }

    /// Serialise the header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REPLY_SIZE);
        b.put_u32_le(REPLY_MAGIC);
        b.put_u32_le(self.error);
        b.put_u64_le(self.handle);
        b.freeze()
    }

    /// Parse a header.
    pub fn decode(mut b: Bytes) -> Result<NbdReply, NbdProtoError> {
        if b.len() != REPLY_SIZE {
            return Err(NbdProtoError::ShortHeader {
                expected: REPLY_SIZE,
                got: b.len(),
            });
        }
        let magic = b.get_u32_le();
        if magic != REPLY_MAGIC {
            return Err(NbdProtoError::BadMagic(magic));
        }
        let error = b.get_u32_le();
        let handle = b.get_u64_le();
        Ok(NbdReply { handle, error })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = NbdRequest::new(NbdCmd::Write, 0xFEED_BEEF, 12345678, 131072);
        assert_eq!(NbdRequest::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn reply_roundtrip() {
        let r = NbdReply::new(77, 5);
        assert_eq!(NbdReply::decode(r.encode()).unwrap(), r);
    }

    #[test]
    fn corrupt_magic_is_typed() {
        let mut raw = NbdRequest::new(NbdCmd::Read, 0, 0, 0).encode().to_vec();
        raw[0] ^= 0xFF;
        let got = NbdRequest::decode(Bytes::from(raw));
        assert!(matches!(got, Err(NbdProtoError::BadMagic(_))), "{got:?}");
    }

    #[test]
    fn short_buffer_is_typed() {
        let raw = NbdRequest::new(NbdCmd::Read, 0, 0, 0).encode().slice(..10);
        assert_eq!(
            NbdRequest::decode(raw),
            Err(NbdProtoError::ShortHeader {
                expected: REQUEST_SIZE,
                got: 10
            })
        );
    }

    #[test]
    fn unknown_command_is_typed() {
        let mut raw = NbdRequest::new(NbdCmd::Read, 9, 8, 7).encode().to_vec();
        raw[4] = 0x2A; // command field, little-endian
        assert_eq!(
            NbdRequest::decode(Bytes::from(raw)),
            Err(NbdProtoError::UnknownCommand(42))
        );
    }

    #[test]
    fn reply_short_and_magic_errors() {
        let good = NbdReply::new(1, 0).encode();
        assert!(NbdReply::decode(good.slice(..4)).is_err());
        let mut raw = good.to_vec();
        raw[3] ^= 0x80;
        assert!(matches!(
            NbdReply::decode(Bytes::from(raw)),
            Err(NbdProtoError::BadMagic(_))
        ));
    }
}
