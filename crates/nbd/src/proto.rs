//! The NBD wire protocol (TCP-version layout, paper ref \[14\]).
//!
//! Requests are a fixed 28-byte header, with write payloads inline in the
//! stream; replies are a fixed 16-byte header, with read payloads inline.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Request magic (`NBD_REQUEST_MAGIC`).
pub const REQUEST_MAGIC: u32 = 0x2560_9513;
/// Reply magic (`NBD_REPLY_MAGIC`).
pub const REPLY_MAGIC: u32 = 0x6744_6698;

/// Encoded request header size.
pub const REQUEST_SIZE: usize = 28;
/// Encoded reply header size.
pub const REPLY_SIZE: usize = 16;

/// NBD command type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NbdCmd {
    /// Device → client.
    Read,
    /// Client → device.
    Write,
}

/// A request header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbdRequest {
    /// Command.
    pub cmd: NbdCmd,
    /// Client handle echoed in the reply.
    pub handle: u64,
    /// Byte offset on the device.
    pub offset: u64,
    /// Transfer length.
    pub len: u32,
}

impl NbdRequest {
    /// Serialise the header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REQUEST_SIZE);
        b.put_u32_le(REQUEST_MAGIC);
        b.put_u32_le(match self.cmd {
            NbdCmd::Read => 0,
            NbdCmd::Write => 1,
        });
        b.put_u64_le(self.handle);
        b.put_u64_le(self.offset);
        b.put_u32_le(self.len);
        b.freeze()
    }

    /// Parse a header; panics on bad magic (stream corruption is fatal for
    /// a kernel block driver).
    pub fn decode(mut b: Bytes) -> NbdRequest {
        assert_eq!(b.len(), REQUEST_SIZE, "short NBD request");
        assert_eq!(b.get_u32_le(), REQUEST_MAGIC, "bad NBD request magic");
        let cmd = match b.get_u32_le() {
            0 => NbdCmd::Read,
            1 => NbdCmd::Write,
            other => panic!("unknown NBD command {other}"),
        };
        NbdRequest {
            cmd,
            handle: b.get_u64_le(),
            offset: b.get_u64_le(),
            len: b.get_u32_le(),
        }
    }
}

/// A reply header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NbdReply {
    /// Echoed handle.
    pub handle: u64,
    /// 0 = success; non-zero = errno-style failure.
    pub error: u32,
}

impl NbdReply {
    /// Serialise the header.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(REPLY_SIZE);
        b.put_u32_le(REPLY_MAGIC);
        b.put_u32_le(self.error);
        b.put_u64_le(self.handle);
        b.freeze()
    }

    /// Parse a header; panics on bad magic.
    pub fn decode(mut b: Bytes) -> NbdReply {
        assert_eq!(b.len(), REPLY_SIZE, "short NBD reply");
        assert_eq!(b.get_u32_le(), REPLY_MAGIC, "bad NBD reply magic");
        let error = b.get_u32_le();
        let handle = b.get_u64_le();
        NbdReply { handle, error }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = NbdRequest {
            cmd: NbdCmd::Write,
            handle: 0xFEED_BEEF,
            offset: 12345678,
            len: 131072,
        };
        assert_eq!(NbdRequest::decode(r.encode()), r);
    }

    #[test]
    fn reply_roundtrip() {
        let r = NbdReply {
            handle: 77,
            error: 5,
        };
        assert_eq!(NbdReply::decode(r.encode()), r);
    }

    #[test]
    #[should_panic(expected = "bad NBD request magic")]
    fn corrupt_magic_panics() {
        let mut raw = NbdRequest {
            cmd: NbdCmd::Read,
            handle: 0,
            offset: 0,
            len: 0,
        }
        .encode()
        .to_vec();
        raw[0] ^= 0xFF;
        NbdRequest::decode(Bytes::from(raw));
    }
}
