#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # tcpsim — simulated kernel TCP sockets over the modeled fabrics
//!
//! The paper's baseline, NBD, is a TCP/IP network block device; its
//! disadvantage relative to HPBD comes from exactly two modeled effects:
//! TCP/IP *stack processing on the host CPUs* (per-segment and per-byte
//! work on both ends, which competes with the application and the pager for
//! cycles) and *store-and-forward stream delivery* instead of zero-copy
//! RDMA placement. This crate provides connected, ordered, reliable byte
//! streams with those costs, parameterised by a
//! [`netmodel::TransportModel`] — instantiate with `Calibration::gige` for
//! NBD-over-GigE and `Calibration::ipoib` for NBD-over-IPoIB (same code
//! path above the IP layer, as the paper notes).
//!
//! Semantics: [`TcpConn::send`] is asynchronous and never blocks (the
//! paper's NBD deadlock over memory allocation in TCP is out of scope);
//! [`TcpConn::recv`] registers a continuation invoked once exactly `n`
//! bytes are available — stream framing is the caller's job, as with real
//! sockets.

use bytes::{Bytes, BytesMut};
use netmodel::{Node, TransportModel};
use simcore::{Engine, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::{Rc, Weak};

type RecvCallback = Box<dyn FnOnce(Bytes)>;
type ResetHandler = Box<dyn Fn()>;

struct ConnInner {
    engine: Engine,
    model: Rc<TransportModel>,
    node: Node,
    peer: RefCell<Weak<ConnInner>>,
    rx_buf: RefCell<BytesMut>,
    pending: RefCell<VecDeque<(usize, RecvCallback)>>,
    /// Enforces in-order stream delivery even when CPU scheduling would
    /// finish a later segment earlier.
    last_delivery: Cell<SimTime>,
    bytes_sent: Cell<u64>,
    bytes_received: Cell<u64>,
    /// Connection torn down (RST seen). Sends are discarded, buffered bytes
    /// are gone, and pending reads never fire.
    reset: Cell<bool>,
    /// Invoked (from the event loop) when the connection is reset, so
    /// protocol layers can fail their in-flight work instead of stalling.
    reset_handler: RefCell<Option<Rc<ResetHandler>>>,
}

/// One endpoint of a connected simulated TCP stream.
#[derive(Clone)]
pub struct TcpConn {
    inner: Rc<ConnInner>,
}

/// Create a connected socket pair between two nodes over `model`.
pub fn connect(
    engine: &Engine,
    model: Rc<TransportModel>,
    a: &Node,
    b: &Node,
) -> (TcpConn, TcpConn) {
    assert!(!a.same_node(b), "cannot connect a node to itself");
    let mk = |node: &Node| {
        Rc::new(ConnInner {
            engine: engine.clone(),
            model: model.clone(),
            node: node.clone(),
            peer: RefCell::new(Weak::new()),
            rx_buf: RefCell::new(BytesMut::new()),
            pending: RefCell::new(VecDeque::new()),
            last_delivery: Cell::new(SimTime::ZERO),
            bytes_sent: Cell::new(0),
            bytes_received: Cell::new(0),
            reset: Cell::new(false),
            reset_handler: RefCell::new(None),
        })
    };
    let ia = mk(a);
    let ib = mk(b);
    *ia.peer.borrow_mut() = Rc::downgrade(&ib);
    *ib.peer.borrow_mut() = Rc::downgrade(&ia);
    (TcpConn { inner: ia }, TcpConn { inner: ib })
}

impl TcpConn {
    /// The transport this stream runs over.
    pub fn model(&self) -> &TransportModel {
        &self.inner.model
    }

    /// Node this endpoint lives on.
    pub fn node(&self) -> &Node {
        &self.inner.node
    }

    /// Bytes queued for reading at this endpoint.
    pub fn available(&self) -> usize {
        self.inner.rx_buf.borrow().len()
    }

    /// Total payload bytes sent from this endpoint.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent.get()
    }

    /// Total payload bytes delivered to this endpoint.
    pub fn bytes_received(&self) -> u64 {
        self.inner.bytes_received.get()
    }

    /// Queue `data` for transmission. Charges the sending CPU for stack
    /// processing, the ports for serialisation, and the receiving CPU for
    /// stack processing; the bytes become readable at the peer afterwards.
    pub fn send(&self, data: Bytes) {
        let inner = &self.inner;
        if inner.reset.get() {
            // Writing to a reset socket: the bytes go nowhere. The protocol
            // layer learns of the reset through its reset handler.
            return;
        }
        let Some(peer) = inner.peer.borrow().upgrade() else {
            // The peer endpoint was dropped (its node is gone): the bytes
            // vanish on the wire, exactly like a send into a dead host.
            return;
        };
        let len = data.len() as u64;
        inner.bytes_sent.set(inner.bytes_sent.get() + len);
        let now = inner.engine.now();

        // Sender stack occupies the CPU but PIPELINES with the wire: only
        // the first segment's processing delays transmission.
        inner
            .node
            .cpu()
            .reserve(now, inner.model.host_side_time(len));
        let startup_tx = inner.model.segment_startup(len);
        // Wire: tx port, propagation, rx port (cut-through).
        let wire = inner
            .model
            .wire_time(len)
            .max(inner.model.host_side_time(len));
        let prop = inner.model.propagation();
        let (_, tx_end) = inner.node.tx().reserve(now + startup_tx, wire);
        let rx_earliest = SimTime((tx_end + prop).as_nanos().saturating_sub(wire.as_nanos()));
        let (_, rx_end) = peer.node.rx().reserve(rx_earliest, wire);
        // Receiver stack: occupancy on the CPU, last segment's processing
        // in the latency path.
        peer.node
            .cpu()
            .reserve(rx_end, peer.model.host_side_time(len));
        let startup_rx = peer.model.segment_startup(len);
        // In-order delivery.
        let t_deliver = (rx_end + startup_rx).max(peer.last_delivery.get());
        peer.last_delivery.set(t_deliver);

        let peer2 = peer.clone();
        inner.engine.schedule_at(t_deliver, move || {
            if peer2.reset.get() {
                // Connection died while the bytes were in flight.
                return;
            }
            peer2.bytes_received.set(peer2.bytes_received.get() + len);
            peer2.rx_buf.borrow_mut().extend_from_slice(&data);
            drain_pending(&peer2);
        });
    }

    /// Invoke `cb` with exactly `n` bytes once they are available.
    /// Continuations are served FIFO, preserving stream order. On a reset
    /// connection the continuation is dropped without firing (the reset
    /// handler is the error path).
    pub fn recv(&self, n: usize, cb: impl FnOnce(Bytes) + 'static) {
        assert!(n > 0, "zero-byte recv");
        if self.inner.reset.get() {
            return;
        }
        self.inner.pending.borrow_mut().push_back((n, Box::new(cb)));
        // Serve immediately-satisfiable reads from the event loop, not the
        // caller's stack.
        let inner = self.inner.clone();
        self.inner
            .engine
            .schedule_at(self.inner.engine.now(), move || drain_pending(&inner));
    }

    /// True once the connection has been reset.
    pub fn is_reset(&self) -> bool {
        self.inner.reset.get()
    }

    /// Register a handler invoked (from the event loop) when the connection
    /// is reset. One handler per endpoint; later registrations replace it.
    pub fn set_reset_handler(&self, handler: impl Fn() + 'static) {
        *self.inner.reset_handler.borrow_mut() = Some(Rc::new(Box::new(handler)));
    }

    /// Reset the connection (RST): both endpoints stop sending and
    /// receiving, buffered and in-flight bytes are discarded, pending read
    /// continuations are dropped, and each endpoint's reset handler fires
    /// from the event loop at the current virtual instant.
    pub fn reset(&self) {
        let ends = [Some(self.inner.clone()), self.inner.peer.borrow().upgrade()];
        for end in ends.into_iter().flatten() {
            if end.reset.replace(true) {
                continue; // already reset
            }
            {
                // The shimmed BytesMut has no `clear`; drain via split_to.
                let mut buf = end.rx_buf.borrow_mut();
                let len = buf.len();
                let _ = buf.split_to(len);
            }
            end.pending.borrow_mut().clear();
            let handler = end.reset_handler.borrow().clone();
            if let Some(handler) = handler {
                end.engine.schedule_at(end.engine.now(), move || handler());
            }
        }
    }
}

fn drain_pending(inner: &Rc<ConnInner>) {
    loop {
        let ready = {
            let pending = inner.pending.borrow();
            match pending.front() {
                Some(&(n, _)) => inner.rx_buf.borrow().len() >= n,
                None => false,
            }
        };
        if !ready {
            return;
        }
        let Some((n, cb)) = inner.pending.borrow_mut().pop_front() else {
            return;
        };
        let chunk = inner.rx_buf.borrow_mut().split_to(n).freeze();
        cb(chunk);
    }
}

impl fmt::Debug for TcpConn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpConn")
            .field("node", &self.inner.node.name())
            .field("transport", &self.inner.model.name)
            .field("available", &self.available())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netmodel::Calibration;
    use std::cell::RefCell;

    fn setup(which: fn(&Calibration) -> &TransportModel) -> (Engine, TcpConn, TcpConn) {
        let engine = Engine::new();
        let cal = Calibration::cluster_2005();
        let model = Rc::new(which(&cal).clone());
        let a = Node::new("client", 0, 2);
        let b = Node::new("server", 1, 2);
        let (ca, cb) = connect(&engine, model, &a, &b);
        (engine, ca, cb)
    }

    #[test]
    fn bytes_arrive_intact() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        let got: Rc<RefCell<Option<Bytes>>> = Rc::default();
        {
            let got = got.clone();
            cb.recv(11, move |b| *got.borrow_mut() = Some(b));
        }
        ca.send(Bytes::from_static(b"hello world"));
        engine.run_until_idle();
        assert_eq!(got.borrow().as_deref(), Some(b"hello world".as_ref()));
        assert_eq!(ca.bytes_sent(), 11);
        assert_eq!(cb.bytes_received(), 11);
    }

    #[test]
    fn stream_reassembles_across_sends_and_recvs() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        let log: Rc<RefCell<Vec<Bytes>>> = Rc::default();
        // Two reads of 4 and 6 bytes, fed by three sends of other sizes.
        for &n in &[4usize, 6] {
            let log = log.clone();
            cb.recv(n, move |b| log.borrow_mut().push(b));
        }
        ca.send(Bytes::from_static(b"ab"));
        ca.send(Bytes::from_static(b"cdefg"));
        ca.send(Bytes::from_static(b"hij"));
        engine.run_until_idle();
        let log = log.borrow();
        assert_eq!(&log[0][..], b"abcd");
        assert_eq!(&log[1][..], b"efghij");
    }

    #[test]
    fn recv_before_send_waits() {
        let (engine, ca, cb) = setup(|c| &c.ipoib);
        let got: Rc<RefCell<Option<Bytes>>> = Rc::default();
        {
            let got = got.clone();
            cb.recv(3, move |b| *got.borrow_mut() = Some(b));
        }
        engine.run_until_idle();
        assert!(got.borrow().is_none());
        ca.send(Bytes::from_static(b"xyz"));
        engine.run_until_idle();
        assert_eq!(got.borrow().as_deref(), Some(b"xyz".as_ref()));
    }

    #[test]
    fn latency_matches_transport_model() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        let t_arrived: Rc<RefCell<Option<SimTime>>> = Rc::default();
        {
            let t_arrived = t_arrived.clone();
            let eng = engine.clone();
            cb.recv(1024, move |_| *t_arrived.borrow_mut() = Some(eng.now()));
        }
        ca.send(Bytes::from(vec![0u8; 1024]));
        engine.run_until_idle();
        let cal = Calibration::cluster_2005();
        let expect = cal.gige.one_way_latency(1024).as_nanos();
        let got = t_arrived.borrow().expect("delivered").as_nanos();
        // Within 1us of the closed-form model (event rounding only).
        assert!(
            got.abs_diff(expect) < 1_000,
            "got {got}ns expected {expect}ns"
        );
    }

    #[test]
    fn ipoib_beats_gige_on_bulk_transfer() {
        // Same payload is faster over IPoIB than GigE (higher bandwidth),
        // which is the Figure 5 NBD-IPoIB vs NBD-GigE gap at transport level.
        let t = |which: fn(&Calibration) -> &TransportModel| {
            let (engine, ca, cb) = setup(which);
            let done: Rc<RefCell<Option<SimTime>>> = Rc::default();
            {
                let done = done.clone();
                let eng = engine.clone();
                cb.recv(128 * 1024, move |_| *done.borrow_mut() = Some(eng.now()));
            }
            ca.send(Bytes::from(vec![0u8; 128 * 1024]));
            engine.run_until_idle();
            let at = done.borrow().unwrap();
            at
        };
        let ipoib = t(|c| &c.ipoib);
        let gige = t(|c| &c.gige);
        assert!(ipoib < gige, "IPoIB {ipoib} should beat GigE {gige}");
    }

    #[test]
    fn delivery_is_in_order_despite_mixed_sizes() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        // Large send followed by tiny send: the tiny one must not overtake.
        let order: Rc<RefCell<Vec<u8>>> = Rc::default();
        {
            let order = order.clone();
            cb.recv(64 * 1024, move |b| order.borrow_mut().push(b[0]));
        }
        {
            let order = order.clone();
            cb.recv(1, move |b| order.borrow_mut().push(b[0]));
        }
        ca.send(Bytes::from(vec![1u8; 64 * 1024]));
        ca.send(Bytes::from(vec![2u8]));
        engine.run_until_idle();
        assert_eq!(*order.borrow(), vec![1, 2]);
    }

    #[test]
    fn stack_cost_lands_on_cpus() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        let before_tx = ca.node().cpu().busy_total();
        let before_rx = cb.node().cpu().busy_total();
        ca.send(Bytes::from(vec![0u8; 64 * 1024]));
        engine.run_until_idle();
        assert!(
            ca.node().cpu().busy_total() > before_tx,
            "sender stack work"
        );
        assert!(
            cb.node().cpu().busy_total() > before_rx,
            "receiver stack work"
        );
    }

    #[test]
    fn duplex_traffic_works() {
        let (engine, ca, cb) = setup(|c| &c.ipoib);
        let got_a: Rc<RefCell<Option<Bytes>>> = Rc::default();
        let got_b: Rc<RefCell<Option<Bytes>>> = Rc::default();
        {
            let g = got_a.clone();
            ca.recv(2, move |b| *g.borrow_mut() = Some(b));
        }
        {
            let g = got_b.clone();
            cb.recv(2, move |b| *g.borrow_mut() = Some(b));
        }
        ca.send(Bytes::from_static(b"to"));
        cb.send(Bytes::from_static(b"fr"));
        engine.run_until_idle();
        assert_eq!(got_b.borrow().as_deref(), Some(b"to".as_ref()));
        assert_eq!(got_a.borrow().as_deref(), Some(b"fr".as_ref()));
    }

    #[test]
    #[should_panic(expected = "zero-byte recv")]
    fn zero_recv_rejected() {
        let (_engine, _ca, cb) = setup(|c| &c.gige);
        cb.recv(0, |_| {});
    }

    #[test]
    fn reset_fires_both_handlers_and_drops_pending_reads() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        let fired = Rc::new(Cell::new(0u32));
        for conn in [&ca, &cb] {
            let fired = fired.clone();
            conn.set_reset_handler(move || fired.set(fired.get() + 1));
        }
        let read_fired = Rc::new(Cell::new(false));
        {
            let read_fired = read_fired.clone();
            cb.recv(4, move |_| read_fired.set(true));
        }
        engine.run_until_idle();
        ca.reset();
        assert!(ca.is_reset() && cb.is_reset());
        // Handler runs from the event loop, not the reset() call stack.
        assert_eq!(fired.get(), 0);
        engine.run_until_idle();
        assert_eq!(fired.get(), 2);
        // The pending read never fires; sends after reset go nowhere.
        ca.send(Bytes::from_static(b"dead"));
        engine.run_until_idle();
        assert!(!read_fired.get());
        assert_eq!(cb.available(), 0);
    }

    #[test]
    fn bytes_in_flight_at_reset_are_discarded() {
        let (engine, ca, cb) = setup(|c| &c.gige);
        ca.send(Bytes::from_static(b"in-flight"));
        // Reset before the delivery event runs.
        ca.reset();
        engine.run_until_idle();
        assert_eq!(cb.available(), 0);
        assert_eq!(cb.bytes_received(), 0);
    }

    #[test]
    fn reset_is_idempotent() {
        let (engine, ca, cb) = setup(|c| &c.ipoib);
        let fired = Rc::new(Cell::new(0u32));
        {
            let fired = fired.clone();
            cb.set_reset_handler(move || fired.set(fired.get() + 1));
        }
        ca.reset();
        cb.reset();
        ca.reset();
        engine.run_until_idle();
        assert_eq!(fired.get(), 1, "handler fires once per connection death");
    }
}
