#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # simfault — deterministic fault plans for the simulated cluster
//!
//! The paper punts on reliability (§4.1: "these issues are out of the scope
//! of this paper"); this crate supplies the missing half of the story for
//! the reproduction. A [`FaultPlan`] is a *data-only* description of what
//! goes wrong and when, on the **virtual clock**: server crashes and
//! restarts, link degradation, message loss, InfiniBand
//! completion-with-error, and TCP connection resets for the NBD baseline.
//!
//! The plan itself schedules nothing and owns no clocks. Consumers —
//! `hpbd::ClusterBuilder` and `nbd`/`workloads` — walk [`FaultPlan::events`]
//! at build time and arm one engine event per entry. Two consequences:
//!
//! * **Determinism**: fault times are virtual-clock instants, so the same
//!   plan over the same workload produces the identical event sequence,
//!   byte-identical metrics, and byte-identical traces on every run.
//! * **Zero-cost when empty**: an empty plan arms no events, touches no
//!   queues, and registers no metrics — runs with `FaultPlan::default()`
//!   are byte-identical to runs built before this subsystem existed.

use std::fmt;

/// One injectable fault. Server-targeted variants index into the cluster's
/// server list (the same order `ClusterBuilder` creates them in).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Memory server `server` fail-stops: its page store is dropped (the
    /// registered chunks are gone), in-flight RDMA is abandoned, and every
    /// later request to it goes unanswered until a restart.
    ServerCrash {
        /// Index of the victim server.
        server: usize,
    },
    /// Memory server `server` comes back empty: it re-registers its staging
    /// memory (paying the registration CPU cost) and resumes serving.
    /// Stored pages from before the crash are *not* recovered.
    ServerRestart {
        /// Index of the restarting server.
        server: usize,
    },
    /// Degrade the client↔server link: every transfer gains
    /// `added_latency_ns` of propagation delay and the link bandwidth is
    /// multiplied by `bandwidth_factor` (1.0 = undegraded, 0.5 = half).
    LinkDegrade {
        /// Index of the server whose link degrades.
        server: usize,
        /// Extra one-way propagation delay, in nanoseconds.
        added_latency_ns: u64,
        /// Multiplier on link bandwidth; must be in `(0.0, 1.0]`.
        bandwidth_factor: f64,
    },
    /// Silently drop the next `count` messages sent over the
    /// client↔server link (both directions). The bytes vanish in flight:
    /// no completion error is surfaced — recovery relies on timeouts.
    MessageLoss {
        /// Index of the server whose link drops messages.
        server: usize,
        /// How many sends to swallow.
        count: u32,
    },
    /// Complete the next `count` send-side work requests on the
    /// client↔server QP with an error status instead of transferring.
    CompletionError {
        /// Index of the server whose QP misbehaves.
        server: usize,
        /// How many work requests to fail.
        count: u32,
    },
    /// Hold the next `count` messages on the client↔server link (both
    /// directions) in flight for an extra `delay_ns` before delivery. The
    /// send still completes successfully (the RC ack follows the late
    /// arrival); only the in-flight time stretches — the classic reorder
    /// generator: a delayed request can outlive the timeout that gave up
    /// on it and land after the retry that replaced it.
    MessageDelay {
        /// Index of the server whose link delays messages.
        server: usize,
        /// How many deliveries to delay.
        count: u32,
        /// Extra in-flight time per delayed message, in nanoseconds.
        delay_ns: u64,
    },
    /// Deliver the next `count` messages on the client↔server link twice
    /// (a fabric-level ghost copy). The duplicate consumes a posted
    /// receive at the destination; the sender sees a single completion.
    MessageDuplicate {
        /// Index of the server whose link duplicates messages.
        server: usize,
        /// How many deliveries to duplicate.
        count: u32,
    },
    /// Reset the TCP connection of the NBD baseline: both endpoints see
    /// the reset, buffered bytes are discarded, and pending reads fail.
    TcpReset,
}

/// A fault bound to a virtual-clock instant.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedFault {
    /// Virtual time (nanoseconds) at which the fault fires.
    pub at_ns: u64,
    /// What happens.
    pub event: FaultEvent,
}

/// An ordered collection of timed faults: the full failure script for one
/// simulated run. Build with the fluent helpers, then hand to
/// `ClusterBuilder::fault_plan(..)` (or `ScenarioConfig::fault_plan`).
///
/// ```
/// use simfault::{FaultEvent, FaultPlan};
/// let plan = FaultPlan::new()
///     .server_crash(50_000_000, 1)
///     .server_restart(80_000_000, 1)
///     .link_degrade(10_000_000, 0, 5_000, 0.5);
/// assert_eq!(plan.len(), 3);
/// assert!(matches!(
///     plan.events()[0].event,
///     FaultEvent::LinkDegrade { .. }
/// ));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan: nothing fails. Equivalent to `FaultPlan::default()`.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan schedules no faults (the zero-cost case).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Add an arbitrary timed fault.
    pub fn push(&mut self, at_ns: u64, event: FaultEvent) {
        self.events.push(TimedFault { at_ns, event });
    }

    /// Fluent form of [`FaultPlan::push`].
    pub fn with(mut self, at_ns: u64, event: FaultEvent) -> FaultPlan {
        self.push(at_ns, event);
        self
    }

    /// Crash server `server` at `at_ns`.
    pub fn server_crash(self, at_ns: u64, server: usize) -> FaultPlan {
        self.with(at_ns, FaultEvent::ServerCrash { server })
    }

    /// Restart server `server` at `at_ns`.
    pub fn server_restart(self, at_ns: u64, server: usize) -> FaultPlan {
        self.with(at_ns, FaultEvent::ServerRestart { server })
    }

    /// Degrade the link to `server` at `at_ns`.
    ///
    /// # Panics
    /// Panics if `bandwidth_factor` is not in `(0.0, 1.0]`.
    pub fn link_degrade(
        self,
        at_ns: u64,
        server: usize,
        added_latency_ns: u64,
        bandwidth_factor: f64,
    ) -> FaultPlan {
        assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth_factor must be in (0.0, 1.0]"
        );
        self.with(
            at_ns,
            FaultEvent::LinkDegrade {
                server,
                added_latency_ns,
                bandwidth_factor,
            },
        )
    }

    /// Drop the next `count` messages on `server`'s link starting at `at_ns`.
    pub fn message_loss(self, at_ns: u64, server: usize, count: u32) -> FaultPlan {
        self.with(at_ns, FaultEvent::MessageLoss { server, count })
    }

    /// Fail the next `count` send work requests on `server`'s QP with a
    /// completion error, starting at `at_ns`.
    pub fn completion_error(self, at_ns: u64, server: usize, count: u32) -> FaultPlan {
        self.with(at_ns, FaultEvent::CompletionError { server, count })
    }

    /// Delay the next `count` deliveries on `server`'s link by `delay_ns`
    /// each, starting at `at_ns`.
    pub fn message_delay(self, at_ns: u64, server: usize, count: u32, delay_ns: u64) -> FaultPlan {
        self.with(
            at_ns,
            FaultEvent::MessageDelay {
                server,
                count,
                delay_ns,
            },
        )
    }

    /// Deliver the next `count` messages on `server`'s link twice,
    /// starting at `at_ns`.
    pub fn message_duplicate(self, at_ns: u64, server: usize, count: u32) -> FaultPlan {
        self.with(at_ns, FaultEvent::MessageDuplicate { server, count })
    }

    /// Reset the NBD baseline's TCP connection at `at_ns`.
    pub fn tcp_reset(self, at_ns: u64) -> FaultPlan {
        self.with(at_ns, FaultEvent::TcpReset)
    }

    /// The faults, sorted by fire time (stable: insertion order breaks
    /// ties, so arming them in iteration order is deterministic).
    pub fn events(&self) -> Vec<TimedFault> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|f| f.at_ns);
        sorted
    }

    /// Largest server index referenced by any server-targeted fault, if any.
    /// Builders use this to validate the plan against the cluster size.
    pub fn max_server_index(&self) -> Option<usize> {
        self.events
            .iter()
            .filter_map(|f| match f.event {
                FaultEvent::ServerCrash { server }
                | FaultEvent::ServerRestart { server }
                | FaultEvent::LinkDegrade { server, .. }
                | FaultEvent::MessageLoss { server, .. }
                | FaultEvent::CompletionError { server, .. }
                | FaultEvent::MessageDelay { server, .. }
                | FaultEvent::MessageDuplicate { server, .. } => Some(server),
                FaultEvent::TcpReset => None,
            })
            .max()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "fault plan: (empty)");
        }
        writeln!(f, "fault plan ({} events):", self.events.len())?;
        for ev in self.events() {
            writeln!(f, "  t={}ns {:?}", ev.at_ns, ev.event)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_default() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.events().is_empty());
        assert_eq!(plan.max_server_index(), None);
    }

    #[test]
    fn events_sorted_by_time_stable() {
        let plan = FaultPlan::new()
            .server_crash(500, 2)
            .tcp_reset(100)
            .message_loss(500, 0, 3);
        let evs = plan.events();
        assert_eq!(evs[0].at_ns, 100);
        // Ties keep insertion order: crash before loss.
        assert!(matches!(
            evs[1].event,
            FaultEvent::ServerCrash { server: 2 }
        ));
        assert!(matches!(
            evs[2].event,
            FaultEvent::MessageLoss {
                server: 0,
                count: 3
            }
        ));
    }

    #[test]
    fn max_server_index_ignores_tcp() {
        let plan = FaultPlan::new().tcp_reset(5);
        assert_eq!(plan.max_server_index(), None);
        let plan = plan.server_restart(9, 7).link_degrade(1, 3, 10, 0.25);
        assert_eq!(plan.max_server_index(), Some(7));
    }

    #[test]
    fn delay_and_duplicate_are_server_targeted() {
        let plan = FaultPlan::new()
            .message_delay(10, 4, 2, 1_000_000)
            .message_duplicate(20, 6, 1);
        assert_eq!(plan.max_server_index(), Some(6));
        let evs = plan.events();
        assert!(matches!(
            evs[0].event,
            FaultEvent::MessageDelay {
                server: 4,
                count: 2,
                delay_ns: 1_000_000
            }
        ));
        assert!(matches!(
            evs[1].event,
            FaultEvent::MessageDuplicate {
                server: 6,
                count: 1
            }
        ));
    }

    #[test]
    #[should_panic(expected = "bandwidth_factor")]
    fn degrade_factor_validated() {
        let _ = FaultPlan::new().link_degrade(0, 0, 0, 0.0);
    }
}
