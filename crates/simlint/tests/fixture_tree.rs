//! Materializes a fixture tree containing one violation per rule and
//! asserts the workspace linter finds every one of them (i.e. a run over
//! that tree would exit nonzero), plus a clean tree stays clean.

use simlint::config::Config;
use simlint::lint_workspace;
use std::collections::BTreeSet;
use std::path::Path;

fn write(base: &Path, rel: &str, src: &str) {
    let path = base.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, src).unwrap();
}

#[test]
fn fixture_tree_with_one_violation_per_rule_fails() {
    let base = std::env::temp_dir().join("simlint-fixture-tree");
    let _ = std::fs::remove_dir_all(&base);

    // One file per rule, each violating exactly that rule. Every file is a
    // crate root candidate only where I003 is the point; the others carry
    // the forbid attribute so I003 stays quiet for them.
    write(
        &base,
        "crates/d001/src/wallclock.rs",
        "use std::time::Instant;\n",
    );
    write(
        &base,
        "crates/d002/src/hashed.rs",
        "use std::collections::BTreeMap;\nstruct S { m: std::collections::HashMap<u32, u32> }\n",
    );
    write(
        &base,
        "crates/d003/src/random.rs",
        "fn f() { let r = rand::thread_rng(); }\n",
    );
    write(
        &base,
        "crates/d004/src/threads.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    write(
        &base,
        "crates/i001/src/unwraps.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    write(
        &base,
        "crates/i002/src/emits.rs",
        "fn f(e: &Engine) { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n",
    );
    write(&base, "crates/i003/src/lib.rs", "//! no forbid here\n");
    write(
        &base,
        "crates/a001/src/old_api.rs",
        "fn f() { let c = HpbdCluster::build(4, 16); }\n",
    );
    write(
        &base,
        "crates/a002/src/proto.rs",
        "pub struct Wire { pub magic: u32 }\n",
    );
    write(
        &base,
        "crates/w000/src/waived.rs",
        "// simlint: allow(D003)\nfn f() { let r = rand::thread_rng(); }\n",
    );
    write(
        &base,
        "crates/w001/src/stale.rs",
        "// simlint: allow(A001): nothing here uses the old API\nfn f() { fine(); }\n",
    );

    let report = lint_workspace(&base, &Config::builtin()).unwrap();
    let fired: BTreeSet<&str> = report.denied().map(|f| f.rule).collect();
    for rule in [
        "D001", "D002", "D003", "D004", "I001", "I002", "A001", "A002", "W000", "W001",
    ] {
        assert!(fired.contains(rule), "rule {rule} did not fire: {fired:?}");
    }
    // I003 fires on every crate root in the tree that lacks the forbid —
    // at minimum the dedicated one.
    assert!(fired.contains("I003"), "I003 did not fire");
    assert!(report.denied().count() >= 11);

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn clean_tree_passes() {
    let base = std::env::temp_dir().join("simlint-clean-tree");
    let _ = std::fs::remove_dir_all(&base);
    write(
        &base,
        "crates/ok/src/lib.rs",
        "//! A clean crate.\n#![forbid(unsafe_code)]\npub mod good;\n",
    );
    write(
        &base,
        "crates/ok/src/good.rs",
        "use std::collections::BTreeMap;\n\npub fn f(e: &Engine) -> u32 {\n    if e.trace_enabled() {\n        e.tracer().instant(\"c\", \"n\", 0, &[]);\n    }\n    let m: BTreeMap<u32, u32> = BTreeMap::new();\n    m.get(&1).copied().unwrap_or(0)\n}\n",
    );
    // A justified waiver that is actually used: no W000/W001.
    write(
        &base,
        "crates/ok/src/waived.rs",
        "pub fn g(x: Option<u32>) -> u32 {\n    // simlint: allow(I001): boot-time invariant, x is always set by new()\n    x.unwrap()\n}\n",
    );
    let report = lint_workspace(&base, &Config::builtin()).unwrap();
    let denied: Vec<_> = report.denied().collect();
    assert!(denied.is_empty(), "unexpected findings: {denied:?}");
    assert_eq!(report.waived().count(), 1);
    let _ = std::fs::remove_dir_all(&base);
}
