//! Materializes a fixture tree containing one violation per rule and
//! asserts the workspace linter finds every one of them (i.e. a run over
//! that tree would exit nonzero), plus a clean tree stays clean.

use simlint::config::Config;
use simlint::lint_workspace;
use std::collections::BTreeSet;
use std::path::Path;

fn write(base: &Path, rel: &str, src: &str) {
    let path = base.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, src).unwrap();
}

#[test]
fn fixture_tree_with_one_violation_per_rule_fails() {
    let base = std::env::temp_dir().join("simlint-fixture-tree");
    let _ = std::fs::remove_dir_all(&base);

    // One file per rule, each violating exactly that rule. Every file is a
    // crate root candidate only where I003 is the point; the others carry
    // the forbid attribute so I003 stays quiet for them.
    write(
        &base,
        "crates/d001/src/wallclock.rs",
        "use std::time::Instant;\n",
    );
    write(
        &base,
        "crates/d002/src/hashed.rs",
        "use std::collections::BTreeMap;\nstruct S { m: std::collections::HashMap<u32, u32> }\n",
    );
    write(
        &base,
        "crates/d003/src/random.rs",
        "fn f() { let r = rand::thread_rng(); }\n",
    );
    write(
        &base,
        "crates/d004/src/threads.rs",
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    write(
        &base,
        "crates/i001/src/unwraps.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    write(
        &base,
        "crates/i002/src/emits.rs",
        "fn f(e: &Engine) { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n",
    );
    write(&base, "crates/i003/src/lib.rs", "//! no forbid here\n");
    write(
        &base,
        "crates/a001/src/old_api.rs",
        "fn f() { let c = HpbdCluster::build(4, 16); }\n",
    );
    write(
        &base,
        "crates/a002/src/proto.rs",
        "pub struct Wire { pub magic: u32 }\n",
    );
    write(
        &base,
        "crates/w000/src/waived.rs",
        "// simlint: allow(D003)\nfn f() { let r = rand::thread_rng(); }\n",
    );
    write(
        &base,
        "crates/w001/src/stale.rs",
        "// simlint: allow(A001): nothing here uses the old API\nfn f() { fine(); }\n",
    );
    write(
        &base,
        "crates/w002/src/typo.rs",
        "// simlint: allow(I0O1): misremembered the rule id\nfn f() { fine(); }\n",
    );
    // Linked rules: the violation needs workspace-wide evidence, so these
    // fixtures span two files where it matters.
    write(
        &base,
        "crates/d005/src/timeouts.rs",
        "pub fn linger() { wait(std::time::Duration::from_millis(20)); }\n",
    );
    write(
        &base,
        "crates/d005/src/sim.rs",
        "pub fn arm(e: &mut Engine) { e.schedule_in(t, ev); }\n",
    );
    write(
        &base,
        "crates/a005/src/knobs.rs",
        "#[derive(Clone, Debug)]\npub struct RetryConfig { pub max_retries: u32 }\n",
    );
    write(
        &base,
        "crates/x001/src/wire.rs",
        "struct Frame { a: u32 }\n\nimpl Frame {\n    pub fn encode(&self) -> Vec<u8> { Vec::new() }\n}\n",
    );
    write(
        &base,
        "crates/x002/src/submit.rs",
        "fn push(backend: &mut B, s: Slot) { backend.store(s, 0, 4096); }\n",
    );
    write(
        &base,
        "crates/x003/src/metrics.rs",
        "fn setup(m: &mut Metrics) { let ctr = m.counter_handle(\"x.acks\"); }\n",
    );

    let report = lint_workspace(&base, &Config::builtin()).unwrap();
    let fired: BTreeSet<&str> = report.denied().map(|f| f.rule).collect();
    for rule in [
        "D001", "D002", "D003", "D004", "I001", "I002", "A001", "A002", "W000", "W001", "W002",
        "D005", "A005", "X001", "X002", "X003",
    ] {
        assert!(fired.contains(rule), "rule {rule} did not fire: {fired:?}");
    }
    // I003 fires on every crate root in the tree that lacks the forbid —
    // at minimum the dedicated one.
    assert!(fired.contains("I003"), "I003 did not fire");
    assert!(report.denied().count() >= 17);

    let _ = std::fs::remove_dir_all(&base);
}

/// Count findings for one rule over a freshly materialized tree.
fn count_rule(base_name: &str, files: &[(&str, &str)], rule: &str) -> usize {
    let base = std::env::temp_dir().join(base_name);
    let _ = std::fs::remove_dir_all(&base);
    for (rel, src) in files {
        write(&base, rel, src);
    }
    let report = lint_workspace(&base, &Config::builtin()).unwrap();
    let n = report.denied().filter(|f| f.rule == rule).count();
    let _ = std::fs::remove_dir_all(&base);
    n
}

/// Every linked rule must change its verdict when the *other* file of the
/// pair disappears — the finding (or its exoneration) lives in a file the
/// per-file pass never opens, so this is the linking pass at work.
#[test]
fn linked_findings_depend_on_the_second_file() {
    // D005: the Duration file is only wrong because a sibling file drives
    // the virtual clock.
    let duration = (
        "crates/pair/src/timeouts.rs",
        "pub fn linger() { wait(std::time::Duration::from_millis(20)); }\n",
    );
    let clock = (
        "crates/pair/src/sim.rs",
        "pub fn arm(e: &mut Engine) { e.schedule_in(t, ev); }\n",
    );
    assert_eq!(
        count_rule("simlint-pair-d005", &[duration, clock], "D005"),
        1
    );
    assert_eq!(count_rule("simlint-pair-d005", &[duration], "D005"), 0);

    // A005: the knob is only dead until some other file reads it.
    let knobs = (
        "crates/pair/src/knobs.rs",
        "#[derive(Clone, Debug)]\npub struct RetryConfig { pub max_retries: u32 }\n",
    );
    let reader = (
        "crates/pair/src/reader.rs",
        "pub fn budget(c: &RetryConfig) -> u32 { c.max_retries * 2 }\n",
    );
    assert_eq!(count_rule("simlint-pair-a005", &[knobs], "A005"), 1);
    assert_eq!(count_rule("simlint-pair-a005", &[knobs, reader], "A005"), 0);

    // X001: the encode side is only untested until a test file (anywhere
    // in the workspace) decodes the type.
    let wire = (
        "crates/pair/src/wire.rs",
        "struct Frame { a: u32 }\n\nimpl Frame {\n    pub fn encode(&self) -> Vec<u8> { Vec::new() }\n}\n",
    );
    let roundtrip = (
        "crates/pair/tests/roundtrip.rs",
        "#[test]\nfn rt() { let f = Frame::decode(&raw); check(f); }\n",
    );
    assert_eq!(count_rule("simlint-pair-x001", &[wire], "X001"), 1);
    assert_eq!(
        count_rule("simlint-pair-x001", &[wire, roundtrip], "X001"),
        0
    );

    // X002: the submission leaks only while no file in the crate reaps.
    let submit = (
        "crates/pair/src/submit.rs",
        "fn push(backend: &mut B, s: Slot) { backend.store(s, 0, 4096); }\n",
    );
    let reaper = (
        "crates/pair/src/drain.rs",
        "fn drain(backend: &mut B) { while backend.reap() > 0 { step(); } }\n",
    );
    assert_eq!(count_rule("simlint-pair-x002", &[submit], "X002"), 1);
    assert_eq!(
        count_rule("simlint-pair-x002", &[submit, reaper], "X002"),
        0
    );

    // X003: the metric is only dead until another file emits through its
    // handle.
    let registry = (
        "crates/pair/src/metrics.rs",
        "fn setup(m: &mut Metrics) { let ctr = m.counter_handle(\"x.acks\"); }\n",
    );
    let emitter = (
        "crates/pair/src/hot.rs",
        "fn ack(s: &S) { s.ctr.inc(1); }\n",
    );
    assert_eq!(count_rule("simlint-pair-x003", &[registry], "X003"), 1);
    assert_eq!(
        count_rule("simlint-pair-x003", &[registry, emitter], "X003"),
        0
    );
}

#[test]
fn clean_tree_passes() {
    let base = std::env::temp_dir().join("simlint-clean-tree");
    let _ = std::fs::remove_dir_all(&base);
    write(
        &base,
        "crates/ok/src/lib.rs",
        "//! A clean crate.\n#![forbid(unsafe_code)]\npub mod good;\n",
    );
    write(
        &base,
        "crates/ok/src/good.rs",
        "use std::collections::BTreeMap;\n\npub fn f(e: &Engine) -> u32 {\n    if e.trace_enabled() {\n        e.tracer().instant(\"c\", \"n\", 0, &[]);\n    }\n    let m: BTreeMap<u32, u32> = BTreeMap::new();\n    m.get(&1).copied().unwrap_or(0)\n}\n",
    );
    // A justified waiver that is actually used: no W000/W001.
    write(
        &base,
        "crates/ok/src/waived.rs",
        "pub fn g(x: Option<u32>) -> u32 {\n    // simlint: allow(I001): boot-time invariant, x is always set by new()\n    x.unwrap()\n}\n",
    );
    let report = lint_workspace(&base, &Config::builtin()).unwrap();
    let denied: Vec<_> = report.denied().collect();
    assert!(denied.is_empty(), "unexpected findings: {denied:?}");
    assert_eq!(report.waived().count(), 1);
    let _ = std::fs::remove_dir_all(&base);
}
