//! Diagnostic rendering: human `path:line: RULE: message` lines plus a
//! hand-rolled machine-readable JSON report. Output order is fully
//! deterministic (files sorted, findings sorted within a file).

use crate::rules::Finding;

/// Aggregate result of a lint run.
pub struct Report {
    /// All findings, already sorted by (path, line, rule).
    pub findings: Vec<Finding>,
}

impl Report {
    /// Build a report from raw findings (sorts them).
    pub fn new(mut findings: Vec<Finding>) -> Report {
        findings.sort_by(|a, b| {
            (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
        });
        Report { findings }
    }

    /// Unwaived hard findings (these fail the run).
    pub fn denied(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.waived.is_none() && !f.warning)
    }

    /// Unwaived warnings (fail only under `--deny-warnings`).
    pub fn warnings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.waived.is_none() && f.warning)
    }

    /// Waived findings (informational).
    pub fn waived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived.is_some())
    }

    /// Human-readable text report.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for f in self.findings.iter().filter(|f| f.waived.is_none()) {
            let sev = if f.warning { "warning" } else { "error" };
            out.push_str(&format!(
                "{}:{}: {} [{}]: {}\n",
                f.path, f.line, sev, f.rule, f.message
            ));
        }
        if verbose {
            for f in self.waived() {
                out.push_str(&format!(
                    "{}:{}: allowed [{}]: {} (waived: {})\n",
                    f.path,
                    f.line,
                    f.rule,
                    f.message,
                    f.waived.as_deref().unwrap_or("")
                ));
            }
        }
        let denied = self.denied().count();
        let warnings = self.warnings().count();
        let waived = self.waived().count();
        out.push_str(&format!(
            "simlint: {denied} error(s), {warnings} warning(s), {waived} waived\n"
        ));
        out
    }

    /// Machine-readable JSON report.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
            out.push_str(&format!("\"path\": {}, ", json_str(&f.path)));
            out.push_str(&format!("\"line\": {}, ", f.line));
            out.push_str(&format!(
                "\"severity\": {}, ",
                json_str(if f.warning { "warn" } else { "deny" })
            ));
            match &f.waived {
                Some(j) => out.push_str(&format!("\"waived\": {}, ", json_str(j))),
                None => out.push_str("\"waived\": null, "),
            }
            out.push_str(&format!("\"message\": {}", json_str(&f.message)));
            out.push('}');
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"errors\": {},\n", self.denied().count()));
        out.push_str(&format!("  \"warnings\": {},\n", self.warnings().count()));
        out.push_str(&format!("  \"waived\": {}\n", self.waived().count()));
        out.push_str("}\n");
        out
    }
}

/// Escape a string as a JSON literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn finding(rule: &'static str, path: &str, line: u32, waived: bool) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: format!("msg for {rule}"),
            waived: waived.then(|| "because".to_string()),
            warning: false,
        }
    }

    #[test]
    fn text_and_json_are_sorted_and_counted() {
        let r = Report::new(vec![
            finding("I001", "b.rs", 3, false),
            finding("D001", "a.rs", 1, false),
            finding("A002", "a.rs", 9, true),
        ]);
        let text = r.render_text(false);
        let first = text.lines().next().unwrap();
        assert!(first.starts_with("a.rs:1: error [D001]"), "{text}");
        assert!(text.contains("2 error(s), 0 warning(s), 1 waived"));
        let json = r.render_json();
        assert!(json.contains("\"errors\": 2"));
        assert!(json.contains("\"waived\": \"because\""));
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
    }
}
