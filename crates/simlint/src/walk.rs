//! Workspace file discovery: every `.rs` file under the configured roots,
//! in sorted order so diagnostics (and the JSON report) are byte-stable
//! across runs and machines.

use std::path::{Path, PathBuf};

/// Collect repo-relative paths of all `.rs` files under `roots`, skipping
/// `target/` build output and any configured `exclude` prefixes.
pub fn collect(workspace: &Path, roots: &[String], exclude: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for root in roots {
        let dir = workspace.join(root);
        if dir.is_dir() {
            walk_dir(workspace, &dir, exclude, &mut out);
        } else if dir.is_file() && root.ends_with(".rs") {
            out.push(root.replace('\\', "/"));
        }
    }
    out.sort();
    out.dedup();
    out
}

fn walk_dir(workspace: &Path, dir: &Path, exclude: &[String], out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = match path.strip_prefix(workspace) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if exclude.iter().any(|e| {
            let e = e.trim_end_matches('/');
            rel == e || rel.starts_with(&format!("{e}/"))
        }) {
            continue;
        }
        if path.is_dir() {
            walk_dir(workspace, &path, exclude, out);
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_sorted_and_skips_excludes() {
        let base = std::env::temp_dir().join("simlint-walk-test");
        let _ = std::fs::remove_dir_all(&base);
        for p in ["a/src", "a/target/debug", "b/src"] {
            std::fs::create_dir_all(base.join(p)).unwrap();
        }
        for f in [
            "a/src/lib.rs",
            "a/target/debug/gen.rs",
            "b/src/lib.rs",
            "b/src/zz.rs",
        ] {
            std::fs::write(base.join(f), "// x\n").unwrap();
        }
        let got = collect(&base, &["a".into(), "b".into()], &["b/src/zz.rs".into()]);
        assert_eq!(got, ["a/src/lib.rs", "b/src/lib.rs"]);
        let _ = std::fs::remove_dir_all(&base);
    }
}
