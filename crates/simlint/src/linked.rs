//! Pass 2 of the two-phase analysis: linked rules over the workspace
//! index.
//!
//! Each rule runs per file (against that file's [`FileFacts`]) but
//! judges with workspace-wide evidence from the [`WorkspaceIndex`], so
//! waivers keep working exactly like file-local rules: a finding lands
//! on the line that must change, in the file that owns it.
//!
//! * **D005** — wall-clock `Duration` in a crate that also drives the
//!   virtual clock.
//! * **A005** — `*Config` struct hygiene: derives, dead knobs, mutable
//!   statics.
//! * **X001** — wire types with an `encode`/`to_wire` need a decode
//!   call in some test.
//! * **X002** — completion-lifecycle leaks: swap submissions without a
//!   reap loop, `WrChain`s that are never posted.
//! * **X003** — registered metrics must be emitted; `.counter(...)`
//!   reads must name something emitted.

use crate::index::{FileFacts, WorkspaceIndex};

/// Encode-side method names that make a type a sealed wire struct for
/// X001.
const ENCODE_METHODS: &[&str] = &["encode", "to_wire"];

/// Run one linked rule over `facts`, returning (line, message) pairs.
pub(crate) fn check_linked(
    id: &str,
    facts: &FileFacts,
    index: &WorkspaceIndex,
) -> Vec<(u32, String)> {
    match id {
        "D005" => d005(facts, index),
        "A005" => a005(facts, index),
        "X001" => x001(facts, index),
        "X002" => x002(facts, index),
        "X003" => x003(facts, index),
        _ => Vec::new(),
    }
}

/// Wall-clock `Duration` arithmetic in a crate that also touches
/// `Engine`/`SimTime` — the two time bases must not mix.
fn d005(facts: &FileFacts, index: &WorkspaceIndex) -> Vec<(u32, String)> {
    if !index.crate_has_clock(&facts.krate) {
        return Vec::new();
    }
    facts
        .duration_sites
        .iter()
        .map(|&line| {
            (
                line,
                format!(
                    "wall-clock `std::time::Duration` in crate `{}` which also drives the virtual clock — model latencies in SimDuration ticks so simulated time stays deterministic",
                    facts.krate
                ),
            )
        })
        .collect()
}

/// `*Config` struct hygiene: Clone + Debug derives, no dead knobs, no
/// mutable statics holding configs.
fn a005(facts: &FileFacts, index: &WorkspaceIndex) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in facts.types.iter().filter(|t| t.is_struct) {
        if !t.name.ends_with("Config") {
            continue;
        }
        let mut missing = Vec::new();
        for want in ["Clone", "Debug"] {
            if !t.derives.iter().any(|d| d == want) {
                missing.push(want);
            }
        }
        if !missing.is_empty() {
            out.push((
                t.line,
                format!(
                    "config struct `{}` must derive Clone + Debug (missing {}) — configs are copied into scenario matrices and logged on failure",
                    t.name,
                    missing.join(" + ")
                ),
            ));
        }
        for (field, line) in &t.fields {
            if !index.field_read(field) {
                out.push((
                    *line,
                    format!(
                        "config knob `{}.{}` is never read anywhere in the workspace — a dead knob silently drifts from the behaviour it claims to control; wire it up or remove it",
                        t.name, field
                    ),
                ));
            }
        }
    }
    for (name, line) in &facts.static_mut_configs {
        out.push((
            *line,
            format!(
                "mutable static `{name}` holds a config — config flows by value through builders, never through ambient mutable state"
            ),
        ));
    }
    out
}

/// Every sealed wire type with an encode side needs a decode call in
/// some test, somewhere in the workspace.
fn x001(facts: &FileFacts, index: &WorkspaceIndex) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for t in &facts.types {
        let enc = facts
            .methods
            .iter()
            .find(|(ty, m, _)| *ty == t.name && ENCODE_METHODS.contains(&m.as_str()));
        let Some((_, method, line)) = enc else {
            continue;
        };
        if !index.decode_tested(&t.name) {
            out.push((
                *line,
                format!(
                    "wire type `{}` has `{}` but no `{}::decode`/`decode_slice`/`from_wire` call inside any test — add a roundtrip test so the encode and decode sides cannot drift apart",
                    t.name, method, t.name
                ),
            ));
        }
    }
    out
}

/// Completion-lifecycle leaks: submissions that no reap loop can
/// complete, chains that never reach a doorbell.
fn x002(facts: &FileFacts, index: &WorkspaceIndex) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    if index.crate_reaps(&facts.krate) == 0 {
        for (method, line) in &facts.submit_sites {
            out.push((
                *line,
                format!(
                    "SwapBackend `.{method}(...)` submission in crate `{}` which has no `.reap(...)` loop — completions would never be drained (PageDone contract)",
                    facts.krate
                ),
            ));
        }
    }
    for c in &facts.chain_sites {
        if c.posted_locally {
            continue;
        }
        if c.escapes {
            if index.crate_posts(&facts.krate) == 0 {
                out.push((
                    c.line,
                    format!(
                        "WrChain built here flows out of the function but crate `{}` has no `.post(...)` site — every constructed chain must reach a doorbell",
                        facts.krate
                    ),
                ));
            }
        } else {
            out.push((
                c.line,
                "WrChain built here is never posted — a constructed chain must reach `.post()` or its work requests silently vanish".to_string(),
            ));
        }
    }
    out
}

/// Registered metrics must be emitted at least once; `.counter("…")`
/// reads must name a metric something emits.
fn x003(facts: &FileFacts, index: &WorkspaceIndex) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for reg in &facts.metric_regs {
        if !index.metric_emitted(&reg.name) {
            out.push((
                reg.line,
                format!(
                    "metric `{}` is registered but never emitted (its handle is never used and nothing emits the name directly) — dead metrics erode trust in the dashboard",
                    reg.name
                ),
            ));
        }
    }
    for (name, line) in &facts.read_sites {
        if !index.metric_emitted(name) {
            out.push((
                *line,
                format!(
                    "metric `{name}` is read via `.counter(...)` but nothing in the workspace emits it — the read will always observe zero"
                ),
            ));
        }
    }
    out
}
