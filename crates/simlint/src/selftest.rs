//! `simlint --self-test`: runs the lexer plus every rule against embedded
//! positive/negative fixture snippets, so the analyzer checks itself
//! before it is trusted to gate CI. Each fixture is fed through the
//! exact production pipeline — including pass 1, so single-file
//! fixtures see a one-file workspace index and multi-file fixtures
//! exercise the linking pass itself.

use crate::config::Config;
use crate::index::WorkspaceIndex;
use crate::rules::{check_file, FileCtx, RULES};
use std::collections::BTreeSet;

struct Fixture {
    rule: &'static str,
    name: &'static str,
    path: &'static str,
    src: &'static str,
    /// Expected finding count for `rule` on this snippet.
    expect: usize,
}

/// A fixture whose finding depends on the linking pass seeing several
/// files at once: the expectation is the total for `rule` across all of
/// them.
struct MultiFixture {
    rule: &'static str,
    name: &'static str,
    files: &'static [(&'static str, &'static str)],
    expect: usize,
}

const FIXTURES: &[Fixture] = &[
    // ---- D001 ----
    Fixture {
        rule: "D001",
        name: "instant-import",
        path: "crates/x/src/a.rs",
        src: "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n",
        expect: 2,
    },
    Fixture {
        rule: "D001",
        name: "group-import",
        path: "crates/x/src/a.rs",
        src: "use std::time::{Duration, SystemTime};\n",
        expect: 1,
    },
    Fixture {
        rule: "D001",
        name: "duration-and-eventkind-clean",
        path: "crates/x/src/a.rs",
        src: "use std::time::Duration;\nfn f(k: EventKind) -> bool { matches!(k, EventKind::Instant) }\n",
        expect: 0,
    },
    // ---- D002 ----
    Fixture {
        rule: "D002",
        name: "hashmap-field",
        path: "crates/x/src/a.rs",
        src: "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
        expect: 2,
    },
    Fixture {
        rule: "D002",
        name: "btreemap-clean-and-tests-exempt",
        path: "crates/x/src/a.rs",
        src: "use std::collections::BTreeMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        expect: 0,
    },
    // ---- D003 ----
    Fixture {
        rule: "D003",
        name: "thread-rng",
        path: "crates/x/src/a.rs",
        src: "fn f() { let mut r = rand::thread_rng(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "D003",
        name: "simrng-clean",
        path: "crates/x/src/a.rs",
        src: "fn f() { let mut r = SimRng::new(42); }\n",
        expect: 0,
    },
    // ---- D004 ----
    Fixture {
        rule: "D004",
        name: "thread-spawn",
        path: "crates/x/src/a.rs",
        src: "fn f() { std::thread::spawn(|| {}); }\n",
        expect: 1,
    },
    Fixture {
        rule: "D004",
        name: "spawn-in-tests-exempt",
        path: "crates/x/src/a.rs",
        src: "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::scope(|s| {}); }\n}\n",
        expect: 0,
    },
    // ---- I001 ----
    Fixture {
        rule: "I001",
        name: "unwrap-and-expect",
        path: "crates/hpbd/src/client.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n",
        expect: 2,
    },
    Fixture {
        rule: "I001",
        name: "unwrap-or-clean",
        path: "crates/hpbd/src/client.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n",
        expect: 0,
    },
    Fixture {
        rule: "I001",
        name: "string-literal-clean",
        path: "crates/hpbd/src/client.rs",
        src: "const HELP: &str = \"call .unwrap() at your peril\";\n",
        expect: 0,
    },
    // ---- I002 ----
    Fixture {
        rule: "I002",
        name: "naked-emit",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n",
        expect: 1,
    },
    Fixture {
        rule: "I002",
        name: "if-guarded",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { if e.trace_enabled() { e.tracer().instant(\"cat\", \"name\", 0, &[]); } }\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "early-return-guarded",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    if !e.trace_enabled() { return; }\n    e.tracer().span(\"cat\", \"name\", 0, 1, &[]);\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "guard-does-not-leak-across-fns",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { if e.trace_enabled() {} }\nfn g(e: &Engine) { e.tracer().instant(\"c\", \"n\", 0, &[]); }\n",
        expect: 1,
    },
    Fixture {
        rule: "I002",
        name: "guard-variable",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let on = e.trace_enabled();\n    if on { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "guard-variable-early-return",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let on = e.trace_enabled();\n    if !on { return; }\n    e.tracer().span(\"cat\", \"name\", 0, 1, &[]);\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "unrelated-variable-is-no-guard",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let other = e.ready();\n    if other { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n}\n",
        expect: 1,
    },
    // ---- I003 ----
    Fixture {
        rule: "I003",
        name: "missing-forbid",
        path: "crates/x/src/lib.rs",
        src: "//! A crate.\npub mod a;\n",
        expect: 1,
    },
    Fixture {
        rule: "I003",
        name: "forbid-present",
        path: "crates/x/src/lib.rs",
        src: "//! A crate.\n#![forbid(unsafe_code)]\npub mod a;\n",
        expect: 0,
    },
    // ---- A001 ----
    Fixture {
        rule: "A001",
        name: "build-remnant",
        path: "crates/x/src/a.rs",
        src: "fn f() { let c = HpbdCluster::build(4, 16); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A001",
        name: "builder-clean",
        path: "crates/x/src/a.rs",
        src: "fn f() { let c = ClusterBuilder::new().servers(4).run(); }\n",
        expect: 0,
    },
    // ---- A002 ----
    Fixture {
        rule: "A002",
        name: "pub-wire-field",
        path: "crates/hpbd/src/proto.rs",
        src: "pub struct PageRequest { pub req_id: u64, len: u32 }\n",
        expect: 1,
    },
    Fixture {
        rule: "A002",
        name: "sealed-struct-clean",
        path: "crates/hpbd/src/proto.rs",
        src: "pub struct PageRequest { req_id: u64, len: u32 }\nimpl PageRequest { pub fn req_id(&self) -> u64 { self.req_id } }\n",
        expect: 0,
    },
    // ---- A003 ----
    Fixture {
        rule: "A003",
        name: "raw-post-send",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &QueuePair, wr: WorkRequest) { qp.post_send(wr).ok(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A003",
        name: "wrchain-clean",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &Qp, wr: WorkRequest) { let mut c = qp.chain(); c.push(wr); c.post().ok(); }\n",
        expect: 0,
    },
    Fixture {
        rule: "A003",
        name: "post-recv-clean",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &Qp, s: Slice) { qp.post_recv(1, s).ok(); }\n",
        expect: 0,
    },
    // ---- A004 ----
    Fixture {
        rule: "A004",
        name: "raw-queue-in-vmsim",
        path: "crates/vmsim/src/vm.rs",
        src: "fn f(q: Rc<RequestQueue>) { q.flush(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A004",
        name: "adapter-is-exempt",
        path: "crates/vmsim/src/backend.rs",
        src: "pub struct BlockBackend { queue: Rc<RequestQueue> }\n",
        expect: 0,
    },
    Fixture {
        rule: "A004",
        name: "outside-vmsim-is-fine",
        path: "crates/workloads/src/scenario.rs",
        src: "fn f(q: Rc<RequestQueue>) { q.flush(); }\n",
        expect: 0,
    },
    Fixture {
        rule: "A004",
        name: "vmsim-tests-are-covered-too",
        path: "crates/vmsim/src/paged.rs",
        src: "#[cfg(test)]\nmod tests { fn f() { let q = RequestQueue::new(); } }\n",
        expect: 1,
    },
    // ---- W000 ----
    Fixture {
        rule: "W000",
        name: "missing-justification",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I001)\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "W000",
        name: "justified-clean",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I001): init-time invariant, cannot fail\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 0,
    },
    // ---- W002 ----
    Fixture {
        rule: "W002",
        name: "typoed-rule-id",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I0O1): plausible-looking typo for I001\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "W002",
        name: "known-rule-clean",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I001): boot-time invariant\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 0,
    },
];

/// Linked-rule fixtures: each finding (or its absence) requires the
/// pass-1 index to have seen every file in the set.
const MULTI_FIXTURES: &[MultiFixture] = &[
    // ---- D005 ----
    MultiFixture {
        rule: "D005",
        name: "duration-meets-virtual-clock",
        files: &[
            (
                "crates/x/src/wall.rs",
                "fn f(ms: u64) -> u64 { core::time::Duration::from_millis(ms).as_nanos() as u64 }\n",
            ),
            ("crates/x/src/clock.rs", "fn g(e: &Engine) { e.schedule_in(1); }\n"),
        ],
        expect: 1,
    },
    MultiFixture {
        rule: "D005",
        name: "no-virtual-clock-no-finding",
        files: &[(
            "crates/x/src/wall.rs",
            "fn f(ms: u64) -> u64 { core::time::Duration::from_millis(ms).as_nanos() as u64 }\n",
        )],
        expect: 0,
    },
    MultiFixture {
        rule: "D005",
        name: "test-code-exempt",
        files: &[
            (
                "crates/x/src/wall.rs",
                "#[cfg(test)]\nmod tests { use std::time::Duration; }\n",
            ),
            ("crates/x/src/clock.rs", "fn g(e: &Engine) { e.schedule_in(1); }\n"),
        ],
        expect: 0,
    },
    // ---- A005 ----
    MultiFixture {
        rule: "A005",
        name: "missing-debug-and-dead-knob",
        files: &[
            (
                "crates/x/src/config.rs",
                "#[derive(Clone)]\npub struct PoolConfig { depth: u32, width: u32 }\n",
            ),
            ("crates/x/src/user.rs", "fn f(c: &PoolConfig) -> u32 { c.depth }\n"),
        ],
        expect: 2,
    },
    MultiFixture {
        rule: "A005",
        name: "clean-config",
        files: &[
            (
                "crates/x/src/config.rs",
                "#[derive(Clone, Debug)]\npub struct PoolConfig { depth: u32 }\n",
            ),
            ("crates/x/src/user.rs", "fn f(c: &PoolConfig) -> u32 { c.depth }\n"),
        ],
        expect: 0,
    },
    MultiFixture {
        rule: "A005",
        name: "mutable-static-config",
        files: &[
            (
                "crates/x/src/config.rs",
                "#[derive(Clone, Debug)]\npub struct PoolConfig { depth: u32 }\nstatic mut ACTIVE: Option<PoolConfig> = None;\n",
            ),
            ("crates/x/src/user.rs", "fn f(c: &PoolConfig) -> u32 { c.depth }\n"),
        ],
        expect: 1,
    },
    // ---- X001 ----
    MultiFixture {
        rule: "X001",
        name: "encode-without-roundtrip",
        files: &[
            (
                "crates/x/src/proto.rs",
                "pub struct Frame { a: u32 }\nimpl Frame { pub fn encode(&self, out: &mut Vec<u8>) { out.push(1); } }\n",
            ),
            ("crates/x/src/other.rs", "fn noop() {}\n"),
        ],
        expect: 1,
    },
    MultiFixture {
        rule: "X001",
        name: "roundtrip-in-another-file",
        files: &[
            (
                "crates/x/src/proto.rs",
                "pub struct Frame { a: u32 }\nimpl Frame { pub fn encode(&self, out: &mut Vec<u8>) { out.push(1); } }\n",
            ),
            (
                "crates/x/src/other.rs",
                "#[cfg(test)]\nmod tests {\n    #[test]\n    fn rt() { let f = Frame::decode(&[1u8]); }\n}\n",
            ),
        ],
        expect: 0,
    },
    // ---- X002 ----
    MultiFixture {
        rule: "X002",
        name: "submission-without-reap",
        files: &[(
            "crates/x/src/vm.rs",
            "fn pump(backend: &mut dyn SwapBackend, f: Frame) { backend.store(1, 2, f); }\n",
        )],
        expect: 1,
    },
    MultiFixture {
        rule: "X002",
        name: "reap-loop-elsewhere-in-crate",
        files: &[
            (
                "crates/x/src/vm.rs",
                "fn pump(backend: &mut dyn SwapBackend, f: Frame) { backend.store(1, 2, f); }\n",
            ),
            (
                "crates/x/src/pump.rs",
                "fn drain(backend: &mut dyn SwapBackend, done: &mut Vec<PageDone>) { while backend.reap(done) > 0 {} }\n",
            ),
        ],
        expect: 0,
    },
    MultiFixture {
        rule: "X002",
        name: "chain-never-posted",
        files: &[(
            "crates/x/src/send.rs",
            "fn f(qp: &Qp, wr: Wr) { let mut c = qp.chain(); c.push(wr); }\n",
        )],
        expect: 1,
    },
    MultiFixture {
        rule: "X002",
        name: "chain-posted-locally",
        files: &[(
            "crates/x/src/send.rs",
            "fn f(qp: &Qp, wr: Wr) { let mut c = qp.chain(); c.push(wr); c.post().ok(); }\n",
        )],
        expect: 0,
    },
    MultiFixture {
        rule: "X002",
        name: "escaping-chain-no-crate-post",
        files: &[("crates/x/src/build.rs", "fn build(qp: &Qp) -> WrChain { qp.chain() }\n")],
        expect: 1,
    },
    MultiFixture {
        rule: "X002",
        name: "escaping-chain-posted-elsewhere",
        files: &[
            ("crates/x/src/build.rs", "fn build(qp: &Qp) -> WrChain { qp.chain() }\n"),
            ("crates/x/src/send.rs", "fn send(c: WrChain) { c.post().ok(); }\n"),
        ],
        expect: 0,
    },
    // ---- X003 ----
    MultiFixture {
        rule: "X003",
        name: "dead-metric",
        files: &[(
            "crates/x/src/metrics.rs",
            "fn setup(m: &Metrics) { let ctr = m.counter_handle(\"x.requests\"); }\n",
        )],
        expect: 1,
    },
    MultiFixture {
        rule: "X003",
        name: "handle-used-in-another-file",
        files: &[
            (
                "crates/x/src/metrics.rs",
                "fn setup(m: &Metrics) { let ctr = m.counter_handle(\"x.requests\"); }\n",
            ),
            ("crates/x/src/hot.rs", "fn hot(s: &State) { s.ctr.inc(1); }\n"),
        ],
        expect: 0,
    },
    MultiFixture {
        rule: "X003",
        name: "phantom-counter-read",
        files: &[(
            "crates/x/src/report.rs",
            "fn total(m: &Metrics) -> u64 { m.counter(\"x.acks\") }\n",
        )],
        expect: 1,
    },
    MultiFixture {
        rule: "X003",
        name: "read-with-direct-emit",
        files: &[
            (
                "crates/x/src/report.rs",
                "fn total(m: &Metrics) -> u64 { m.counter(\"x.acks\") }\n",
            ),
            ("crates/x/src/hot.rs", "fn tick(m: &Metrics) { m.inc(\"x.acks\", 1); }\n"),
        ],
        expect: 0,
    },
];

/// Run the embedded fixtures; returns (passed, failed, distinct rule ids
/// exercised) and prints one line per fixture.
pub fn run() -> (usize, usize, usize) {
    let config = Config::builtin();
    let mut passed = 0usize;
    let mut failed = 0usize;
    let mut rules_seen: BTreeSet<&'static str> = BTreeSet::new();
    for fx in FIXTURES {
        let ctx = FileCtx::new(fx.path, fx.src);
        let index = WorkspaceIndex::build(std::slice::from_ref(&ctx));
        let mut ctx = ctx;
        let findings = check_file(&mut ctx, &config, Some(fx.rule), Some(&index));
        let got = findings.iter().filter(|f| f.rule == fx.rule).count();
        let ok = got == fx.expect;
        if ok {
            passed += 1;
            rules_seen.insert(fx.rule);
        } else {
            failed += 1;
        }
        println!(
            "self-test {} {}/{}: expected {} finding(s), got {}",
            if ok { "ok  " } else { "FAIL" },
            fx.rule,
            fx.name,
            fx.expect,
            got
        );
    }
    // Linked-rule fixtures: index over the whole file set, then lint
    // each file against it.
    for fx in MULTI_FIXTURES {
        let ctxs: Vec<FileCtx> = fx.files.iter().map(|(p, s)| FileCtx::new(p, s)).collect();
        let index = WorkspaceIndex::build(&ctxs);
        let mut ctxs = ctxs;
        let mut got = 0usize;
        for ctx in &mut ctxs {
            got += check_file(ctx, &config, Some(fx.rule), Some(&index))
                .iter()
                .filter(|f| f.rule == fx.rule)
                .count();
        }
        let ok = got == fx.expect;
        if ok {
            passed += 1;
            rules_seen.insert(fx.rule);
        } else {
            failed += 1;
        }
        println!(
            "self-test {} {}/{} ({} files): expected {} finding(s), got {}",
            if ok { "ok  " } else { "FAIL" },
            fx.rule,
            fx.name,
            fx.files.len(),
            fx.expect,
            got
        );
    }
    // W001 exercises the full (un-restricted) pipeline, so run it directly.
    {
        let mut ctx = FileCtx::new(
            "crates/x/src/a.rs",
            "// simlint: allow(D003): nothing random here\nfn f() { ok(); }\n",
        );
        let findings = check_file(&mut ctx, &config, None, None);
        let got = findings.iter().filter(|f| f.rule == "W001").count();
        let ok = got == 1;
        if ok {
            passed += 1;
            rules_seen.insert("W001");
        } else {
            failed += 1;
        }
        println!(
            "self-test {} W001/stale-waiver: expected 1 finding(s), got {}",
            if ok { "ok  " } else { "FAIL" },
            got
        );
    }
    let known: BTreeSet<&str> = RULES.iter().map(|r| r.id).collect();
    for r in &rules_seen {
        debug_assert!(known.contains(r), "fixture references unknown rule {r}");
    }
    println!(
        "self-test: {passed} passed, {failed} failed, {} distinct rules exercised",
        rules_seen.len()
    );
    (passed, failed, rules_seen.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_fixtures_pass() {
        let (_, failed, rules) = super::run();
        assert_eq!(failed, 0);
        assert!(rules >= 18, "only {rules} rules exercised");
    }
}
