//! `simlint --self-test`: runs the lexer plus every rule against embedded
//! positive/negative fixture snippets, so the analyzer checks itself
//! before it is trusted to gate CI. Each fixture is a (virtual path,
//! source) pair fed through the exact production pipeline.

use crate::config::Config;
use crate::rules::{check_file, FileCtx, RULES};
use std::collections::BTreeSet;

struct Fixture {
    rule: &'static str,
    name: &'static str,
    path: &'static str,
    src: &'static str,
    /// Expected finding count for `rule` on this snippet.
    expect: usize,
}

const FIXTURES: &[Fixture] = &[
    // ---- D001 ----
    Fixture {
        rule: "D001",
        name: "instant-import",
        path: "crates/x/src/a.rs",
        src: "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n",
        expect: 2,
    },
    Fixture {
        rule: "D001",
        name: "group-import",
        path: "crates/x/src/a.rs",
        src: "use std::time::{Duration, SystemTime};\n",
        expect: 1,
    },
    Fixture {
        rule: "D001",
        name: "duration-and-eventkind-clean",
        path: "crates/x/src/a.rs",
        src: "use std::time::Duration;\nfn f(k: EventKind) -> bool { matches!(k, EventKind::Instant) }\n",
        expect: 0,
    },
    // ---- D002 ----
    Fixture {
        rule: "D002",
        name: "hashmap-field",
        path: "crates/x/src/a.rs",
        src: "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
        expect: 2,
    },
    Fixture {
        rule: "D002",
        name: "btreemap-clean-and-tests-exempt",
        path: "crates/x/src/a.rs",
        src: "use std::collections::BTreeMap;\n#[cfg(test)]\nmod tests { use std::collections::HashSet; }\n",
        expect: 0,
    },
    // ---- D003 ----
    Fixture {
        rule: "D003",
        name: "thread-rng",
        path: "crates/x/src/a.rs",
        src: "fn f() { let mut r = rand::thread_rng(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "D003",
        name: "simrng-clean",
        path: "crates/x/src/a.rs",
        src: "fn f() { let mut r = SimRng::new(42); }\n",
        expect: 0,
    },
    // ---- D004 ----
    Fixture {
        rule: "D004",
        name: "thread-spawn",
        path: "crates/x/src/a.rs",
        src: "fn f() { std::thread::spawn(|| {}); }\n",
        expect: 1,
    },
    Fixture {
        rule: "D004",
        name: "spawn-in-tests-exempt",
        path: "crates/x/src/a.rs",
        src: "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::scope(|s| {}); }\n}\n",
        expect: 0,
    },
    // ---- I001 ----
    Fixture {
        rule: "I001",
        name: "unwrap-and-expect",
        path: "crates/hpbd/src/client.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n",
        expect: 2,
    },
    Fixture {
        rule: "I001",
        name: "unwrap-or-clean",
        path: "crates/hpbd/src/client.rs",
        src: "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n",
        expect: 0,
    },
    Fixture {
        rule: "I001",
        name: "string-literal-clean",
        path: "crates/hpbd/src/client.rs",
        src: "const HELP: &str = \"call .unwrap() at your peril\";\n",
        expect: 0,
    },
    // ---- I002 ----
    Fixture {
        rule: "I002",
        name: "naked-emit",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n",
        expect: 1,
    },
    Fixture {
        rule: "I002",
        name: "if-guarded",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { if e.trace_enabled() { e.tracer().instant(\"cat\", \"name\", 0, &[]); } }\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "early-return-guarded",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    if !e.trace_enabled() { return; }\n    e.tracer().span(\"cat\", \"name\", 0, 1, &[]);\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "guard-does-not-leak-across-fns",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) { if e.trace_enabled() {} }\nfn g(e: &Engine) { e.tracer().instant(\"c\", \"n\", 0, &[]); }\n",
        expect: 1,
    },
    Fixture {
        rule: "I002",
        name: "guard-variable",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let on = e.trace_enabled();\n    if on { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "guard-variable-early-return",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let on = e.trace_enabled();\n    if !on { return; }\n    e.tracer().span(\"cat\", \"name\", 0, 1, &[]);\n}\n",
        expect: 0,
    },
    Fixture {
        rule: "I002",
        name: "unrelated-variable-is-no-guard",
        path: "crates/x/src/a.rs",
        src: "fn f(e: &Engine) {\n    let other = e.ready();\n    if other { e.tracer().instant(\"cat\", \"name\", 0, &[]); }\n}\n",
        expect: 1,
    },
    // ---- I003 ----
    Fixture {
        rule: "I003",
        name: "missing-forbid",
        path: "crates/x/src/lib.rs",
        src: "//! A crate.\npub mod a;\n",
        expect: 1,
    },
    Fixture {
        rule: "I003",
        name: "forbid-present",
        path: "crates/x/src/lib.rs",
        src: "//! A crate.\n#![forbid(unsafe_code)]\npub mod a;\n",
        expect: 0,
    },
    // ---- A001 ----
    Fixture {
        rule: "A001",
        name: "build-remnant",
        path: "crates/x/src/a.rs",
        src: "fn f() { let c = HpbdCluster::build(4, 16); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A001",
        name: "builder-clean",
        path: "crates/x/src/a.rs",
        src: "fn f() { let c = ClusterBuilder::new().servers(4).run(); }\n",
        expect: 0,
    },
    // ---- A002 ----
    Fixture {
        rule: "A002",
        name: "pub-wire-field",
        path: "crates/hpbd/src/proto.rs",
        src: "pub struct PageRequest { pub req_id: u64, len: u32 }\n",
        expect: 1,
    },
    Fixture {
        rule: "A002",
        name: "sealed-struct-clean",
        path: "crates/hpbd/src/proto.rs",
        src: "pub struct PageRequest { req_id: u64, len: u32 }\nimpl PageRequest { pub fn req_id(&self) -> u64 { self.req_id } }\n",
        expect: 0,
    },
    // ---- A003 ----
    Fixture {
        rule: "A003",
        name: "raw-post-send",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &QueuePair, wr: WorkRequest) { qp.post_send(wr).ok(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A003",
        name: "wrchain-clean",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &Qp, wr: WorkRequest) { let mut c = qp.chain(); c.push(wr); c.post().ok(); }\n",
        expect: 0,
    },
    Fixture {
        rule: "A003",
        name: "post-recv-clean",
        path: "crates/x/src/a.rs",
        src: "fn f(qp: &Qp, s: Slice) { qp.post_recv(1, s).ok(); }\n",
        expect: 0,
    },
    // ---- A004 ----
    Fixture {
        rule: "A004",
        name: "raw-queue-in-vmsim",
        path: "crates/vmsim/src/vm.rs",
        src: "fn f(q: Rc<RequestQueue>) { q.flush(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "A004",
        name: "adapter-is-exempt",
        path: "crates/vmsim/src/backend.rs",
        src: "pub struct BlockBackend { queue: Rc<RequestQueue> }\n",
        expect: 0,
    },
    Fixture {
        rule: "A004",
        name: "outside-vmsim-is-fine",
        path: "crates/workloads/src/scenario.rs",
        src: "fn f(q: Rc<RequestQueue>) { q.flush(); }\n",
        expect: 0,
    },
    Fixture {
        rule: "A004",
        name: "vmsim-tests-are-covered-too",
        path: "crates/vmsim/src/paged.rs",
        src: "#[cfg(test)]\nmod tests { fn f() { let q = RequestQueue::new(); } }\n",
        expect: 1,
    },
    // ---- W000 ----
    Fixture {
        rule: "W000",
        name: "missing-justification",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I001)\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 1,
    },
    Fixture {
        rule: "W000",
        name: "justified-clean",
        path: "crates/x/src/a.rs",
        src: "// simlint: allow(I001): init-time invariant, cannot fail\nfn f(x: Option<u32>) { x.unwrap(); }\n",
        expect: 0,
    },
];

/// Run the embedded fixtures; returns (passed, failed, distinct rule ids
/// exercised) and prints one line per fixture.
pub fn run() -> (usize, usize, usize) {
    let config = Config::builtin();
    let mut passed = 0usize;
    let mut failed = 0usize;
    let mut rules_seen: BTreeSet<&'static str> = BTreeSet::new();
    for fx in FIXTURES {
        let mut ctx = FileCtx::new(fx.path, fx.src);
        let findings = check_file(&mut ctx, &config, Some(fx.rule));
        let got = findings.iter().filter(|f| f.rule == fx.rule).count();
        let ok = got == fx.expect;
        if ok {
            passed += 1;
            rules_seen.insert(fx.rule);
        } else {
            failed += 1;
        }
        println!(
            "self-test {} {}/{}: expected {} finding(s), got {}",
            if ok { "ok  " } else { "FAIL" },
            fx.rule,
            fx.name,
            fx.expect,
            got
        );
    }
    // W001 exercises the full (un-restricted) pipeline, so run it directly.
    {
        let mut ctx = FileCtx::new(
            "crates/x/src/a.rs",
            "// simlint: allow(D003): nothing random here\nfn f() { ok(); }\n",
        );
        let findings = check_file(&mut ctx, &config, None);
        let got = findings.iter().filter(|f| f.rule == "W001").count();
        let ok = got == 1;
        if ok {
            passed += 1;
            rules_seen.insert("W001");
        } else {
            failed += 1;
        }
        println!(
            "self-test {} W001/stale-waiver: expected 1 finding(s), got {}",
            if ok { "ok  " } else { "FAIL" },
            got
        );
    }
    let known: BTreeSet<&str> = RULES.iter().map(|r| r.id).collect();
    for r in &rules_seen {
        debug_assert!(known.contains(r), "fixture references unknown rule {r}");
    }
    println!(
        "self-test: {passed} passed, {failed} failed, {} distinct rules exercised",
        rules_seen.len()
    );
    (passed, failed, rules_seen.len())
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_fixtures_pass() {
        let (_, failed, rules) = super::run();
        assert_eq!(failed, 0);
        assert!(rules >= 6, "only {rules} rules exercised");
    }
}
