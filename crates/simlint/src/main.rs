//! simlint CLI.
//!
//! ```text
//! simlint --workspace [--config simlint.toml] [--json PATH] [--verbose]
//!         [--deny-warnings] [--index-json PATH] [--changed-only REF]
//! simlint --path DIR [...]      lint a specific tree (fixture testing)
//! simlint --self-test           run embedded rule fixtures
//! simlint --list-rules          print the rule catalog
//! ```
//!
//! `--changed-only REF` reports findings only for files that differ from
//! the git ref (plus untracked files) — the full symbol index is still
//! built over the whole workspace, so linked rules keep their evidence.
//! `--index-json PATH` dumps the pass-1 symbol index (CI artifact).
//!
//! Exit codes: 0 clean, 1 unwaived findings (or self-test failure),
//! 2 usage/config error.

use simlint::config::Config;
use simlint::rules::RULES;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    workspace: bool,
    paths: Vec<PathBuf>,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    index_json: Option<PathBuf>,
    changed_only: Option<String>,
    deny_warnings: bool,
    verbose: bool,
    self_test: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        paths: Vec::new(),
        config: None,
        json: None,
        index_json: None,
        changed_only: None,
        deny_warnings: false,
        verbose: false,
        self_test: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--path" => {
                let p = it.next().ok_or("--path needs a directory argument")?;
                args.paths.push(PathBuf::from(p));
            }
            "--config" => {
                let p = it.next().ok_or("--config needs a file argument")?;
                args.config = Some(PathBuf::from(p));
            }
            "--json" => {
                let p = it.next().ok_or("--json needs a file argument")?;
                args.json = Some(PathBuf::from(p));
            }
            "--index-json" => {
                let p = it.next().ok_or("--index-json needs a file argument")?;
                args.index_json = Some(PathBuf::from(p));
            }
            "--changed-only" => {
                let r = it.next().ok_or("--changed-only needs a git ref argument")?;
                args.changed_only = Some(r);
            }
            "--deny-warnings" => args.deny_warnings = true,
            "--verbose" | "-v" => args.verbose = true,
            "--self-test" => args.self_test = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: simlint --workspace | --path DIR | --self-test | --list-rules \
                            [--config FILE] [--json FILE] [--index-json FILE] \
                            [--changed-only REF] [--deny-warnings] [--verbose]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory that contains `Cargo.toml` with a `[workspace]` table.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Repo-relative `.rs` files that differ from `git_ref`, plus untracked
/// ones — the report filter for `--changed-only`.
fn changed_files(root: &Path, git_ref: &str) -> Result<BTreeSet<String>, String> {
    let run = |argv: &[&str]| -> Result<String, String> {
        let out = std::process::Command::new("git")
            .arg("-C")
            .arg(root)
            .args(argv)
            .output()
            .map_err(|e| format!("cannot run git: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "`git {}` failed: {}",
                argv.join(" "),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        Ok(String::from_utf8_lossy(&out.stdout).into_owned())
    };
    let mut set = BTreeSet::new();
    for text in [
        run(&["diff", "--name-only", git_ref, "--"])?,
        run(&["ls-files", "--others", "--exclude-standard"])?,
    ] {
        for line in text.lines() {
            let line = line.trim();
            if line.ends_with(".rs") {
                set.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(set)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            println!("{}  {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if args.self_test {
        let (_, failed, rules) = simlint::selftest::run();
        // Every rule in the catalog except W001 (exercised separately
        // inside run()) must have fixtures; the floor catches a rule
        // added without any.
        return if failed == 0 && rules >= 18 {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    if !args.workspace && args.paths.is_empty() {
        eprintln!("simlint: nothing to do (pass --workspace, --path, --self-test or --list-rules)");
        return ExitCode::from(2);
    }

    // Resolve the tree to lint and the config to lint it with.
    let root = if args.workspace {
        match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("simlint: no workspace Cargo.toml found above the current directory");
                return ExitCode::from(2);
            }
        }
    } else {
        args.paths[0].clone()
    };

    let config_path = args.config.clone().or_else(|| {
        let p = root.join("simlint.toml");
        p.is_file().then_some(p)
    });
    let config = match config_path {
        Some(p) => match std::fs::read_to_string(&p) {
            Ok(text) => match Config::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("simlint: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("simlint: cannot read {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
        None => Config::builtin(),
    };

    let mut all = Vec::new();
    let roots: Vec<PathBuf> = if args.workspace {
        vec![root.clone()]
    } else {
        args.paths.clone()
    };
    for tree in &roots {
        match simlint::analyze_workspace(tree, &config) {
            Ok((report, index)) => {
                all.extend(report.findings);
                if let Some(index_path) = &args.index_json {
                    if let Err(e) = std::fs::write(index_path, index.render_json()) {
                        eprintln!("simlint: cannot write {}: {e}", index_path.display());
                        return ExitCode::from(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("simlint: error walking {}: {e}", tree.display());
                return ExitCode::from(2);
            }
        }
    }

    // --changed-only filters the *report*, not the analysis: the symbol
    // index above was built over the whole tree, so linked rules judged
    // changed files with full workspace evidence.
    if let Some(git_ref) = &args.changed_only {
        let changed = match changed_files(&root, git_ref) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        };
        let before = all.len();
        all.retain(|f| changed.contains(&f.path));
        eprintln!(
            "simlint: --changed-only {git_ref}: {} of {} finding(s) on the {} changed file(s)",
            all.len(),
            before,
            changed.len()
        );
    }
    let report = simlint::report::Report::new(all);

    print!("{}", report.render_text(args.verbose));
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.render_json()) {
            eprintln!("simlint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    let errors = report.denied().count();
    let warnings = report.warnings().count();
    if errors > 0 || (args.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
