//! Pass 1 of the two-phase analysis: the workspace symbol index.
//!
//! Built once per lint run from the already-lexed token streams, before
//! any linked rule fires. Per file it records the declarations and call
//! sites the cross-file rules need — type/impl/method declarations with
//! derive lists and field sets, `store`/`load`/`reap`/`chain`/`post`
//! sites, metric registrations and emits, wall-clock `Duration` uses and
//! virtual-clock touches — keyed by crate (the `crates/<name>/` path
//! segment). Pass 2 (`linked.rs`) then runs D005/A005/X001/X002/X003
//! against the index; no rule re-lexes anything.
//!
//! Everything here is a token-level heuristic, deliberately: simlint has
//! no AST and no name resolution. Each extractor errs toward *lenience*
//! (a binding it cannot track counts as used) so the linked rules stay
//! low-noise, and the self-test fixtures pin both the fire and the
//! no-fire side of every heuristic.

use crate::lexer::TokKind;
use crate::rules::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// Idents whose presence (outside tests) marks a crate as driving the
/// virtual clock — the anchor for D005.
const CLOCK_IDENTS: &[&str] = &[
    "Engine",
    "SimTime",
    "SimDuration",
    "schedule_in",
    "schedule_at",
];

/// Methods that register a named metric with simtrace (and return a
/// handle). `declare_histogram` is deliberately absent: declaring a
/// histogram with no samples yet is part of its contract.
const METRIC_REGS: &[&str] = &["counter_handle", "lazy_counter", "histogram_handle"];

/// Methods that emit a sample directly by metric name.
const METRIC_EMITS: &[&str] = &["inc", "add", "observe", "set_gauge"];

/// Test-context call names that prove a wire type's decode side is
/// exercised (X001).
const DECODE_CALLS: &[&str] = &["decode", "decode_slice", "from_wire"];

/// A `struct`/`enum` declaration.
pub struct TypeFact {
    /// Type name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// `struct` (as opposed to `enum`).
    pub is_struct: bool,
    /// Idents inside `#[derive(...)]` attributes on the declaration.
    pub derives: Vec<String>,
    /// Named fields (structs with brace bodies only): (name, line).
    pub fields: Vec<(String, u32)>,
}

/// One metric registration site.
pub struct MetricReg {
    /// The metric name string literal.
    pub name: String,
    /// Local/field binding the handle was stored into, when the
    /// backward scan could identify one.
    pub binding: Option<String>,
    /// 1-based line.
    pub line: u32,
}

/// One `.chain()` construction site with the local lifecycle verdict.
pub struct ChainSite {
    /// 1-based line.
    pub line: u32,
    /// `.post` reached on the chain within the enclosing function.
    pub posted_locally: bool,
    /// The chain value flows out of the function (returned / passed as
    /// an argument) — resolvable only at crate scope.
    pub escapes: bool,
}

/// Everything pass 1 knows about one file.
pub struct FileFacts {
    /// Repo-relative path.
    pub rel: String,
    /// Owning crate: `crates/<name>/…` → `<name>`; top-level `src/`,
    /// `tests/`, `examples/` each form their own group.
    pub krate: String,
    /// Type declarations.
    pub types: Vec<TypeFact>,
    /// Methods from `impl` blocks: (type, method, line).
    pub methods: Vec<(String, String, u32)>,
    /// Types `T` with a `T::decode`/`decode_slice`/`from_wire` call in
    /// test context.
    pub decode_tested: BTreeSet<String>,
    /// Non-test wall-clock `Duration` sites (D005).
    pub duration_sites: Vec<u32>,
    /// Non-test virtual-clock ident count.
    pub clock_sites: usize,
    /// Non-test `<…backend>.store(` / `.load(` submission sites:
    /// (method, line).
    pub submit_sites: Vec<(String, u32)>,
    /// Non-test `.reap(` call count.
    pub reap_sites: usize,
    /// Non-test `.chain()` construction sites.
    pub chain_sites: Vec<ChainSite>,
    /// Non-test `.post(` call count.
    pub post_sites: usize,
    /// Non-test metric registrations.
    pub metric_regs: Vec<MetricReg>,
    /// Metric names emitted directly (`.inc("n", …)` …), non-test.
    pub emit_names: BTreeSet<String>,
    /// Non-test `.counter("n")` read sites: (name, line).
    pub read_sites: Vec<(String, u32)>,
    /// Idents used adjacent to a `.` (receiver or field position) —
    /// the "this handle binding is actually used" evidence.
    pub handle_uses: BTreeSet<String>,
    /// Idents read as `.<field>` (no call parens), non-test — the
    /// workspace-wide "this config knob is read" evidence.
    pub field_reads: BTreeSet<String>,
    /// Mutable statics whose type names a `*Config`: (static name, line).
    pub static_mut_configs: Vec<(String, u32)>,
}

/// The whole-workspace index pass 2 runs against.
pub struct WorkspaceIndex {
    files: Vec<FileFacts>,
    by_rel: BTreeMap<String, usize>,
    crate_clock: BTreeSet<String>,
    crate_reaps: BTreeMap<String, usize>,
    crate_posts: BTreeMap<String, usize>,
    decode_tested: BTreeSet<String>,
    field_reads: BTreeSet<String>,
    emitted_names: BTreeSet<String>,
}

/// Owning crate of a repo-relative path (see [`FileFacts::krate`]).
pub fn crate_of(rel: &str) -> String {
    let mut segs = rel.split('/');
    match segs.next() {
        Some("crates") => segs.next().unwrap_or("crates").to_string(),
        Some(first) => first.trim_end_matches(".rs").to_string(),
        None => String::new(),
    }
}

impl WorkspaceIndex {
    /// Build the index over every lexed file of the run.
    pub fn build(ctxs: &[FileCtx]) -> WorkspaceIndex {
        let files: Vec<FileFacts> = ctxs.iter().map(extract).collect();
        let mut by_rel = BTreeMap::new();
        let mut crate_clock = BTreeSet::new();
        let mut crate_reaps: BTreeMap<String, usize> = BTreeMap::new();
        let mut crate_posts: BTreeMap<String, usize> = BTreeMap::new();
        let mut decode_tested = BTreeSet::new();
        let mut field_reads = BTreeSet::new();
        let mut handle_uses: BTreeSet<String> = BTreeSet::new();
        let mut emitted_names = BTreeSet::new();
        for (i, f) in files.iter().enumerate() {
            by_rel.insert(f.rel.clone(), i);
            if f.clock_sites > 0 {
                crate_clock.insert(f.krate.clone());
            }
            *crate_reaps.entry(f.krate.clone()).or_default() += f.reap_sites;
            *crate_posts.entry(f.krate.clone()).or_default() += f.post_sites;
            decode_tested.extend(f.decode_tested.iter().cloned());
            field_reads.extend(f.field_reads.iter().cloned());
            handle_uses.extend(f.handle_uses.iter().cloned());
            emitted_names.extend(f.emit_names.iter().cloned());
        }
        // A registered metric counts as emitted when its handle binding
        // is used anywhere — or when no binding could be tracked (the
        // lenient direction).
        for f in &files {
            for reg in &f.metric_regs {
                let used = reg
                    .binding
                    .as_ref()
                    .map(|b| handle_uses.contains(b))
                    .unwrap_or(true);
                if used {
                    emitted_names.insert(reg.name.clone());
                }
            }
        }
        WorkspaceIndex {
            files,
            by_rel,
            crate_clock,
            crate_reaps,
            crate_posts,
            decode_tested,
            field_reads,
            emitted_names,
        }
    }

    /// Facts for one file, by repo-relative path.
    pub fn facts(&self, rel: &str) -> Option<&FileFacts> {
        self.by_rel.get(rel).map(|&i| &self.files[i])
    }

    /// Does this crate touch the virtual clock anywhere (non-test)?
    pub fn crate_has_clock(&self, krate: &str) -> bool {
        self.crate_clock.contains(krate)
    }

    /// Non-test `.reap(` sites in the crate.
    pub fn crate_reaps(&self, krate: &str) -> usize {
        self.crate_reaps.get(krate).copied().unwrap_or(0)
    }

    /// Non-test `.post(` sites in the crate.
    pub fn crate_posts(&self, krate: &str) -> usize {
        self.crate_posts.get(krate).copied().unwrap_or(0)
    }

    /// Is `T::decode`-style call present in any test context?
    pub fn decode_tested(&self, type_name: &str) -> bool {
        self.decode_tested.contains(type_name)
    }

    /// Is this field name read (`.name` without a call) anywhere?
    pub fn field_read(&self, field: &str) -> bool {
        self.field_reads.contains(field)
    }

    /// Is this metric name emitted (directly or through a used handle)?
    pub fn metric_emitted(&self, name: &str) -> bool {
        self.emitted_names.contains(name)
    }

    /// Serialize the index (schema `simlint-index-v1`) for the CI
    /// artifact. Deterministic: files arrive sorted from the walk.
    pub fn render_json(&self) -> String {
        use crate::report::json_str;
        let mut out = String::from("{\n  \"schema\": \"simlint-index-v1\",\n  \"files\": [");
        for (i, f) in self.files.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"path\": {}, ", json_str(&f.rel)));
            out.push_str(&format!("\"crate\": {}, ", json_str(&f.krate)));
            out.push_str("\"types\": [");
            for (j, t) in f.types.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let derives: Vec<String> = t.derives.iter().map(|d| json_str(d)).collect();
                let fields: Vec<String> = t.fields.iter().map(|(n, _)| json_str(n)).collect();
                out.push_str(&format!(
                    "{{\"name\": {}, \"line\": {}, \"kind\": {}, \"derives\": [{}], \"fields\": [{}]}}",
                    json_str(&t.name),
                    t.line,
                    json_str(if t.is_struct { "struct" } else { "enum" }),
                    derives.join(", "),
                    fields.join(", ")
                ));
            }
            out.push_str("], \"methods\": [");
            for (j, (ty, m, line)) in f.methods.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"type\": {}, \"fn\": {}, \"line\": {}}}",
                    json_str(ty),
                    json_str(m),
                    line
                ));
            }
            out.push_str("], ");
            out.push_str(&format!("\"clock_sites\": {}, ", f.clock_sites));
            let nums = |v: &[u32]| {
                v.iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "\"duration_sites\": [{}], ",
                nums(&f.duration_sites)
            ));
            let submits: Vec<String> = f
                .submit_sites
                .iter()
                .map(|(m, l)| format!("{{\"method\": {}, \"line\": {l}}}", json_str(m)))
                .collect();
            out.push_str(&format!("\"submit_sites\": [{}], ", submits.join(", ")));
            out.push_str(&format!("\"reap_sites\": {}, ", f.reap_sites));
            out.push_str(&format!("\"post_sites\": {}, ", f.post_sites));
            let chains: Vec<String> = f
                .chain_sites
                .iter()
                .map(|c| {
                    format!(
                        "{{\"line\": {}, \"posted_locally\": {}, \"escapes\": {}}}",
                        c.line, c.posted_locally, c.escapes
                    )
                })
                .collect();
            out.push_str(&format!("\"chains\": [{}], ", chains.join(", ")));
            let regs: Vec<String> = f
                .metric_regs
                .iter()
                .map(|r| {
                    let b = r
                        .binding
                        .as_deref()
                        .map(json_str)
                        .unwrap_or_else(|| "null".to_string());
                    format!(
                        "{{\"name\": {}, \"binding\": {b}, \"line\": {}}}",
                        json_str(&r.name),
                        r.line
                    )
                })
                .collect();
            let emits: Vec<String> = f.emit_names.iter().map(|n| json_str(n)).collect();
            let reads: Vec<String> = f
                .read_sites
                .iter()
                .map(|(n, l)| format!("{{\"name\": {}, \"line\": {l}}}", json_str(n)))
                .collect();
            out.push_str(&format!(
                "\"metrics\": {{\"registered\": [{}], \"emitted\": [{}], \"reads\": [{}]}}, ",
                regs.join(", "),
                emits.join(", "),
                reads.join(", ")
            ));
            let dec: Vec<String> = f.decode_tested.iter().map(|n| json_str(n)).collect();
            out.push_str(&format!("\"decode_tested\": [{}]", dec.join(", ")));
            out.push('}');
        }
        if !self.files.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Extract the per-file facts (the whole of pass 1 for one file).
fn extract(ctx: &FileCtx) -> FileFacts {
    let mut facts = FileFacts {
        rel: ctx.rel.clone(),
        krate: crate_of(&ctx.rel),
        types: Vec::new(),
        methods: Vec::new(),
        decode_tested: BTreeSet::new(),
        duration_sites: Vec::new(),
        clock_sites: 0,
        submit_sites: Vec::new(),
        reap_sites: 0,
        chain_sites: Vec::new(),
        post_sites: 0,
        metric_regs: Vec::new(),
        emit_names: BTreeSet::new(),
        read_sites: Vec::new(),
        handle_uses: BTreeSet::new(),
        field_reads: BTreeSet::new(),
        static_mut_configs: Vec::new(),
    };
    let fn_spans = find_fn_spans(ctx);
    collect_types(ctx, &mut facts);
    collect_sites(ctx, &fn_spans, &mut facts);
    collect_metrics(ctx, &mut facts);
    facts
}

/// Code-index spans (open brace, close brace) of every `fn` body.
fn find_fn_spans(ctx: &FileCtx) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let n = ctx.code_len();
    for k in 0..n {
        if !ctx.ident_at(k, "fn") {
            continue;
        }
        let mut j = k + 1;
        while j < n {
            let t = ctx.tok(j);
            if t.is_punct(';') {
                break; // trait method declaration, no body
            }
            if t.is_punct('{') {
                spans.push((j, ctx.matching_brace(j)));
                break;
            }
            j += 1;
        }
    }
    spans
}

/// Innermost `fn` body containing code index `k` (falls back to the
/// whole file).
fn enclosing_fn(spans: &[(usize, usize)], k: usize, file_len: usize) -> (usize, usize) {
    spans
        .iter()
        .filter(|(o, c)| *o < k && k < *c)
        .min_by_key(|(o, c)| c - o)
        .copied()
        .unwrap_or((0, file_len.saturating_sub(1)))
}

/// Walk type declarations: structs/enums with derives and fields, plus
/// mutable `*Config` statics.
fn collect_types(ctx: &FileCtx, facts: &mut FileFacts) {
    let n = ctx.code_len();
    let mut pending_derives: Vec<String> = Vec::new();
    let mut k = 0usize;
    while k < n {
        // Attributes: harvest #[derive(...)], keep pending across others.
        if ctx.punct_at(k, '#') && ctx.punct_at(k + 1, '[') {
            let end = skip_attr(ctx, k);
            if ctx.ident_at(k + 2, "derive") {
                for j in k + 3..end {
                    if ctx.tok(j).kind == TokKind::Ident {
                        pending_derives.push(ctx.tok(j).text.clone());
                    }
                }
            }
            k = end;
            continue;
        }
        if (ctx.ident_at(k, "struct") || ctx.ident_at(k, "enum"))
            && k + 1 < n
            && ctx.tok(k + 1).kind == TokKind::Ident
        {
            let is_struct = ctx.ident_at(k, "struct");
            let name = ctx.tok(k + 1).text.clone();
            let line = ctx.tok(k).line;
            let derives = std::mem::take(&mut pending_derives);
            // Find the body opener, stopping at `;` (unit struct).
            let mut j = k + 2;
            let mut open = None;
            while j < n {
                let t = ctx.tok(j);
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('{') {
                    open = Some(j);
                    break;
                }
                if is_struct && t.is_punct('(') {
                    break; // tuple struct: no named fields
                }
                j += 1;
            }
            let mut fields = Vec::new();
            let mut resume = j + 1;
            if let Some(open) = open {
                let close = ctx.matching_brace(open);
                if is_struct {
                    fields = struct_fields(ctx, open, close);
                }
                resume = close + 1;
            }
            facts.types.push(TypeFact {
                name,
                line,
                is_struct,
                derives,
                fields,
            });
            k = resume;
            continue;
        }
        if ctx.ident_at(k, "impl") {
            pending_derives.clear();
            k = collect_impl(ctx, k, facts);
            continue;
        }
        if ctx.ident_at(k, "static") && !ctx.in_test_at(k) {
            collect_static(ctx, k, facts);
        }
        // Visibility tokens between a derive and its item keep the
        // pending list alive; anything else invalidates it.
        let keeps = ctx.ident_at(k, "pub")
            || ctx.ident_at(k, "crate")
            || ctx.ident_at(k, "super")
            || ctx.punct_at(k, '(')
            || ctx.punct_at(k, ')');
        if !keeps {
            pending_derives.clear();
        }
        k += 1;
    }
}

/// Named fields of a brace-body struct: idents at brace depth 1 followed
/// by a single `:`.
fn struct_fields(ctx: &FileCtx, open: usize, close: usize) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    for k in open..=close.min(ctx.code_len().saturating_sub(1)) {
        let t = ctx.tok(k);
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 1
            && t.kind == TokKind::Ident
            && ctx.punct_at(k + 1, ':')
            && !ctx.punct_at(k + 2, ':')
            && !(k > open && ctx.punct_at(k - 1, ':'))
        {
            fields.push((t.text.clone(), t.line));
        }
    }
    fields
}

/// Parse an `impl` header at `k`, record its methods, return the resume
/// index.
fn collect_impl(ctx: &FileCtx, k: usize, facts: &mut FileFacts) -> usize {
    let n = ctx.code_len();
    let mut j = k + 1;
    if ctx.punct_at(j, '<') {
        j = skip_angles(ctx, j);
    }
    let Some((first, after)) = parse_path(ctx, j) else {
        return k + 1;
    };
    j = after;
    let type_name = if ctx.ident_at(j, "for") {
        match parse_path(ctx, j + 1) {
            Some((ty, after)) => {
                j = after;
                ty
            }
            None => first,
        }
    } else {
        first
    };
    // Skip any `where` clause to the body.
    let mut open = None;
    while j < n {
        let t = ctx.tok(j);
        if t.is_punct(';') {
            break;
        }
        if t.is_punct('{') {
            open = Some(j);
            break;
        }
        j += 1;
    }
    let Some(open) = open else {
        return j + 1;
    };
    let close = ctx.matching_brace(open);
    for m in open + 1..close {
        if ctx.ident_at(m, "fn") && m + 1 < n && ctx.tok(m + 1).kind == TokKind::Ident {
            facts.methods.push((
                type_name.clone(),
                ctx.tok(m + 1).text.clone(),
                ctx.tok(m + 1).line,
            ));
        }
    }
    close + 1
}

/// Last segment of a `path::like::This<...>` starting at `j`, plus the
/// index just past it.
fn parse_path(ctx: &FileCtx, mut j: usize) -> Option<(String, usize)> {
    if j >= ctx.code_len() || ctx.tok(j).kind != TokKind::Ident {
        return None;
    }
    let mut last = ctx.tok(j).text.clone();
    j += 1;
    loop {
        if ctx.punct_at(j, ':')
            && ctx.punct_at(j + 1, ':')
            && j + 2 < ctx.code_len()
            && ctx.tok(j + 2).kind == TokKind::Ident
        {
            last = ctx.tok(j + 2).text.clone();
            j += 3;
        } else if ctx.punct_at(j, '<') {
            j = skip_angles(ctx, j);
        } else {
            break;
        }
    }
    Some((last, j))
}

/// Skip a balanced `<...>` group starting at `j` (the `<`). `->` arrows
/// inside do not close the group.
fn skip_angles(ctx: &FileCtx, j: usize) -> usize {
    let mut depth = 0i32;
    let mut m = j;
    while m < ctx.code_len() {
        let t = ctx.tok(m);
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(m > 0 && ctx.punct_at(m - 1, '-')) {
            depth -= 1;
            if depth == 0 {
                return m + 1;
            }
        }
        m += 1;
    }
    m
}

/// Given code index of `#`, return the code index just past the `]`.
fn skip_attr(ctx: &FileCtx, k: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k + 1;
    while j < ctx.code_len() {
        let t = ctx.tok(j);
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// `static` item at `k`: record it when it is mutable (or
/// interior-mutable) and its type names a `*Config`.
fn collect_static(ctx: &FileCtx, k: usize, facts: &mut FileFacts) {
    let n = ctx.code_len();
    let (name_at, is_mut) = if ctx.ident_at(k + 1, "mut") {
        (k + 2, true)
    } else {
        (k + 1, false)
    };
    if name_at >= n || ctx.tok(name_at).kind != TokKind::Ident || !ctx.punct_at(name_at + 1, ':') {
        return;
    }
    let name = ctx.tok(name_at).text.clone();
    let mut has_config = false;
    let mut has_cell = false;
    let mut j = name_at + 2;
    while j < n {
        let t = ctx.tok(j);
        if t.is_punct('=') || t.is_punct(';') {
            break;
        }
        if t.kind == TokKind::Ident {
            if t.text.ends_with("Config") {
                has_config = true;
            }
            if matches!(
                t.text.as_str(),
                "RefCell" | "Cell" | "Mutex" | "RwLock" | "UnsafeCell" | "AtomicPtr"
            ) {
                has_cell = true;
            }
        }
        j += 1;
    }
    if has_config && (is_mut || has_cell) {
        facts.static_mut_configs.push((name, ctx.tok(k).line));
    }
}

/// Walk call/use sites: clock and Duration touches, swap submissions,
/// reap/post/chain, and test-context decode calls.
fn collect_sites(ctx: &FileCtx, fn_spans: &[(usize, usize)], facts: &mut FileFacts) {
    let n = ctx.code_len();
    for k in 0..n {
        let t = ctx.tok(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        let non_test = !ctx.in_test_at(k);
        if non_test && CLOCK_IDENTS.contains(&t.text.as_str()) {
            facts.clock_sites += 1;
        }
        // Wall-clock Duration: full path, brace-group import, or a bare
        // `Duration::` path head after an import.
        if non_test
            && (ctx.path2(k, "std", "time") || ctx.path2(k, "core", "time"))
            && ctx.punct_at(k + 4, ':')
            && ctx.punct_at(k + 5, ':')
        {
            if ctx.ident_at(k + 6, "Duration") {
                facts.duration_sites.push(ctx.tok(k + 6).line);
            } else if ctx.punct_at(k + 6, '{') {
                let close = ctx.matching_brace(k + 6);
                for j in k + 7..close {
                    if ctx.ident_at(j, "Duration") {
                        facts.duration_sites.push(ctx.tok(j).line);
                    }
                }
            }
        }
        if non_test
            && t.is_ident("Duration")
            && ctx.punct_at(k + 1, ':')
            && ctx.punct_at(k + 2, ':')
            && !(k >= 1 && ctx.punct_at(k - 1, ':'))
        {
            facts.duration_sites.push(t.line);
        }
        // Test-context `T::decode(...)` — attributes the decode to `T`.
        if ctx.in_test_at(k)
            && t.text.chars().next().is_some_and(|c| c.is_uppercase())
            && ctx.punct_at(k + 1, ':')
            && ctx.punct_at(k + 2, ':')
            && k + 3 < n
            && DECODE_CALLS.contains(&ctx.tok(k + 3).text.as_str())
            && ctx.punct_at(k + 4, '(')
        {
            facts.decode_tested.insert(t.text.clone());
        }
        // Dot-call families.
        if !non_test || k == 0 || !ctx.punct_at(k - 1, '.') || !ctx.punct_at(k + 1, '(') {
            continue;
        }
        match t.text.as_str() {
            // A swap submission only when the receiver is a `…backend`
            // binding — `value.store(...)` codec writes don't count.
            "store" | "load"
                if k >= 2
                    && ctx.tok(k - 2).kind == TokKind::Ident
                    && ctx
                        .tok(k - 2)
                        .text
                        .to_ascii_lowercase()
                        .ends_with("backend") =>
            {
                facts.submit_sites.push((t.text.clone(), t.line));
            }
            "reap" => facts.reap_sites += 1,
            "post" => facts.post_sites += 1,
            "chain" if ctx.punct_at(k + 2, ')') => {
                facts.chain_sites.push(analyze_chain(ctx, fn_spans, k));
            }
            _ => {}
        }
    }
}

/// Local lifecycle analysis of one `.chain()` site at code index `k`.
fn analyze_chain(ctx: &FileCtx, fn_spans: &[(usize, usize)], k: usize) -> ChainSite {
    let n = ctx.code_len();
    let line = ctx.tok(k).line;
    let (_, fn_close) = enclosing_fn(fn_spans, k, n);
    let binding = backward_binding(ctx, k.saturating_sub(2));
    if let Some(name) = binding {
        // Statement end, then scan the rest of the function for uses of
        // the binding.
        let mut j = k + 3;
        let mut depth = 0i32;
        while j < fn_close {
            let t = ctx.tok(j);
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                break;
            }
            j += 1;
        }
        let mut posted = false;
        let mut escapes = false;
        for m in j..fn_close {
            if !ctx.tok(m).is_ident(&name) {
                continue;
            }
            if ctx.punct_at(m + 1, '.') {
                if ctx.ident_at(m + 2, "post") {
                    posted = true;
                }
            } else {
                escapes = true;
            }
        }
        return ChainSite {
            line,
            posted_locally: posted,
            escapes: escapes && !posted,
        };
    }
    // No binding: either consumed inline (`qp.chain().…`), dropped on
    // the spot (`qp.chain();`), or flowing out as part of a larger
    // expression.
    let mut j = k + 3;
    let mut depth = 0i32;
    let mut posted = false;
    let mut escapes = true; // tail expression / argument by default
    while j < fn_close {
        let t = ctx.tok(j);
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                break; // part of an enclosing call: escapes
            }
        } else if t.is_punct('}') {
            depth -= 1;
        } else if t.is_ident("post") && depth >= 0 {
            posted = true;
            escapes = false;
            break;
        } else if (t.is_punct(';') || t.is_punct(',')) && depth <= 0 {
            // `,` hands the chain to an enclosing call; a bare `;`
            // drops it un-posted.
            escapes = t.is_punct(',');
            break;
        }
        j += 1;
    }
    ChainSite {
        line,
        posted_locally: posted,
        escapes,
    }
}

/// Walk metric registrations, direct emits, `.counter("…")` reads, and
/// the two workspace-wide use sets (handle uses, field reads).
fn collect_metrics(ctx: &FileCtx, facts: &mut FileFacts) {
    let n = ctx.code_len();
    for k in 0..n {
        let t = ctx.tok(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        let non_test = !ctx.in_test_at(k);
        let after_dot = k >= 1 && ctx.punct_at(k - 1, '.');
        // Dot-adjacent idents are "used as a value/receiver" — the
        // evidence a registered handle binding is alive. Ranges
        // (`lo..hi`) are not adjacency.
        let before_dot = ctx.punct_at(k + 1, '.') && !ctx.punct_at(k + 2, '.');
        if non_test && (after_dot || before_dot) {
            facts.handle_uses.insert(t.text.clone());
        }
        if non_test && after_dot && !ctx.punct_at(k + 1, '(') {
            facts.field_reads.insert(t.text.clone());
        }
        if !after_dot || !ctx.punct_at(k + 1, '(') || !non_test {
            continue;
        }
        let name_tok = if k + 2 < n && ctx.tok(k + 2).kind == TokKind::Str {
            Some(ctx.tok(k + 2))
        } else {
            None
        };
        if METRIC_REGS.contains(&t.text.as_str()) {
            if let Some(name) = name_tok {
                facts.metric_regs.push(MetricReg {
                    name: name.text.clone(),
                    binding: backward_binding(ctx, k.saturating_sub(2)),
                    line: t.line,
                });
            }
        } else if METRIC_EMITS.contains(&t.text.as_str()) {
            if let Some(name) = name_tok {
                facts.emit_names.insert(name.text.clone());
            }
        } else if t.is_ident("counter") {
            if let Some(name) = name_tok {
                facts.read_sites.push((name.text.clone(), t.line));
            }
        }
    }
}

/// Walk backwards from `start` to find the `let` / struct-field binding
/// this expression is assigned into, if any. Bounded and heuristic:
/// anything it cannot resolve returns `None` (treated leniently by the
/// rules).
fn backward_binding(ctx: &FileCtx, start: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = start as isize;
    let mut steps = 0usize;
    while j >= 0 && steps < 64 {
        let t = ctx.tok(j as usize);
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            depth -= 1;
        } else if t.is_punct('{')
            || t.is_punct('}')
            || t.is_punct(';')
            || (t.is_punct(',') && depth <= 0)
        {
            return None;
        } else if t.is_punct('=') && depth <= 0 {
            // `let name = …` (skip `==`, `>=`-style operators).
            if j >= 1 && ctx.tok((j - 1) as usize).is_punct('=') {
                return None;
            }
            let mut m = j - 1;
            // Rewind to a `let` within the statement (skipping a
            // `: Type` annotation between name and `=`).
            let mut guard = 0usize;
            while m >= 1 && guard < 16 && !ctx.tok((m - 1) as usize).is_ident("let") {
                m -= 1;
                guard += 1;
            }
            if m >= 1 && ctx.tok((m - 1) as usize).is_ident("let") {
                let name_at = if ctx.tok(m as usize).is_ident("mut") {
                    (m + 1) as usize
                } else {
                    m as usize
                };
                let cand = ctx.tok(name_at);
                if cand.kind == TokKind::Ident {
                    return Some(cand.text.clone());
                }
            }
            // No `let` found nearby: plain assignment `name = …`.
            let cand = ctx.tok((j - 1) as usize);
            if cand.kind == TokKind::Ident {
                return Some(cand.text.clone());
            }
            return None;
        } else if t.is_punct(':') && depth <= 0 {
            // Struct-literal field init `name: …` — but not a `::` path.
            if (j >= 1 && ctx.tok((j - 1) as usize).is_punct(':'))
                || ctx.punct_at((j + 1) as usize, ':')
            {
                j -= 2;
                steps += 1;
                continue;
            }
            if j >= 1 {
                let cand = ctx.tok((j - 1) as usize);
                if cand.kind == TokKind::Ident {
                    return Some(cand.text.clone());
                }
            }
            return None;
        }
        j -= 1;
        steps += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(rel: &str, src: &str) -> FileFacts {
        extract(&FileCtx::new(rel, src))
    }

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/vmsim/src/vm.rs"), "vmsim");
        assert_eq!(crate_of("src/lib.rs"), "src");
        assert_eq!(crate_of("tests/properties.rs"), "tests");
    }

    #[test]
    fn types_with_derives_and_fields() {
        let f = facts(
            "crates/x/src/a.rs",
            "#[derive(Clone, Debug)]\npub struct FooConfig { depth: u32, width: Vec<u32> }\n#[derive(Clone)]\nenum Mode { A, B }\n",
        );
        assert_eq!(f.types.len(), 2);
        assert_eq!(f.types[0].name, "FooConfig");
        assert_eq!(f.types[0].derives, ["Clone", "Debug"]);
        let names: Vec<&str> = f.types[0].fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["depth", "width"]);
        assert_eq!(f.types[1].name, "Mode");
        assert!(!f.types[1].is_struct);
    }

    #[test]
    fn impl_methods_including_trait_impls() {
        let f = facts(
            "crates/x/src/a.rs",
            "impl Frame { pub fn encode(&self) {} }\nimpl SwapBackend for StubBackend { fn store(&mut self) {} }\n",
        );
        assert!(f.methods.contains(&("Frame".into(), "encode".into(), 1)));
        assert!(f
            .methods
            .iter()
            .any(|(t, m, _)| t == "StubBackend" && m == "store"));
    }

    #[test]
    fn duration_and_clock_sites() {
        let f = facts(
            "crates/x/src/a.rs",
            "use std::time::Duration;\nfn f(e: &Engine) { let d = Duration::from_millis(1); }\n",
        );
        assert_eq!(f.duration_sites, [1, 2]);
        assert_eq!(f.clock_sites, 1);
        // Test code is exempt on the Duration side.
        let f = facts(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests { use std::time::Duration; }\n",
        );
        assert!(f.duration_sites.is_empty());
    }

    #[test]
    fn submission_requires_backend_receiver() {
        let f = facts(
            "crates/x/src/a.rs",
            "fn f(backend: &mut B, value: &V) { backend.store(1, 2, cb); value.store(buf); }\n",
        );
        assert_eq!(f.submit_sites.len(), 1);
    }

    #[test]
    fn chain_lifecycle_verdicts() {
        let posted = facts(
            "crates/x/src/a.rs",
            "fn f(qp: &Qp) { let mut c = qp.chain(); c.push(wr); c.post().ok(); }\n",
        );
        assert!(posted.chain_sites[0].posted_locally);
        let leaked = facts(
            "crates/x/src/a.rs",
            "fn f(qp: &Qp) { let c = qp.chain(); c.push(wr); }\n",
        );
        assert!(!leaked.chain_sites[0].posted_locally);
        assert!(!leaked.chain_sites[0].escapes);
        let escaping = facts(
            "crates/x/src/a.rs",
            "fn build(qp: &Qp) -> WrChain { qp.chain() }\n",
        );
        assert!(escaping.chain_sites[0].escapes);
        let inline = facts(
            "crates/x/src/a.rs",
            "fn f(qp: &Qp) { qp.chain().push(wr).post().ok(); }\n",
        );
        assert!(inline.chain_sites[0].posted_locally);
        let dropped = facts("crates/x/src/a.rs", "fn f(qp: &Qp) { qp.chain(); }\n");
        assert!(!dropped.chain_sites[0].posted_locally);
        assert!(!dropped.chain_sites[0].escapes);
    }

    #[test]
    fn metric_registration_bindings() {
        let f = facts(
            "crates/x/src/a.rs",
            "fn s(m: &Metrics) { let ctr = m.counter_handle(\"a.b\"); let h = Rc::new(m.histogram_handle(\"c.d\"));\n    Stats { e: m.lazy_counter(\"e.f\") };\n}\n",
        );
        let got: Vec<(&str, Option<&str>)> = f
            .metric_regs
            .iter()
            .map(|r| (r.name.as_str(), r.binding.as_deref()))
            .collect();
        assert_eq!(
            got,
            [("a.b", Some("ctr")), ("c.d", Some("h")), ("e.f", Some("e"))]
        );
    }

    #[test]
    fn emits_reads_and_uses() {
        let f = facts(
            "crates/x/src/a.rs",
            "fn f(m: &M, s: &S) { m.inc(\"x.y\", 1); let v = m.counter(\"p.q\"); s.ctr.observe(3); }\n",
        );
        assert!(f.emit_names.contains("x.y"));
        assert_eq!(f.read_sites, [("p.q".to_string(), 1)]);
        assert!(f.handle_uses.contains("ctr"));
        assert!(f.field_reads.contains("ctr"));
    }

    #[test]
    fn static_mut_config_detection() {
        let f = facts(
            "crates/x/src/a.rs",
            "static mut CURRENT: Option<VmConfig> = None;\nstatic OK: u32 = 1;\nstatic SHARED: Mutex<HpbdConfig> = Mutex::new(c);\n",
        );
        let names: Vec<&str> = f
            .static_mut_configs
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(names, ["CURRENT", "SHARED"]);
    }

    #[test]
    fn decode_calls_count_only_in_tests() {
        let f = facts(
            "crates/x/src/a.rs",
            "fn f() { let a = Frame::decode(buf); }\n#[cfg(test)]\nmod tests { fn t() { let b = Frame::decode(buf); let c = Reply::decode_slice(buf); } }\n",
        );
        assert!(f.decode_tested.contains("Frame"));
        assert!(f.decode_tested.contains("Reply"));
        assert_eq!(f.decode_tested.len(), 2);
    }

    #[test]
    fn index_links_across_files() {
        let a = FileCtx::new("crates/x/src/a.rs", "fn f(e: &Engine) {}\n");
        let b = FileCtx::new(
            "crates/x/src/b.rs",
            "fn g() -> Duration { Duration::from_millis(1) }\n",
        );
        let idx = WorkspaceIndex::build(&[a, b]);
        assert!(idx.crate_has_clock("x"));
        assert_eq!(
            idx.facts("crates/x/src/b.rs").unwrap().duration_sites.len(),
            1
        );
        let json = idx.render_json();
        assert!(json.contains("simlint-index-v1"));
        assert!(json.contains("crates/x/src/a.rs"));
    }
}
