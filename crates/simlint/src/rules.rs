//! The rule set and the token-pattern engine that drives it.
//!
//! Three families, mirroring the determinism contract the differentials
//! depend on (DESIGN.md §12):
//!
//! * **D-rules** — determinism: no wall-clock time sources, no
//!   iteration-order-sensitive containers in simulation crates, no ambient
//!   randomness, no OS threads outside the bench fan-out.
//! * **I-rules** — invariants: no `unwrap()`/`expect()` on protocol paths,
//!   every tracer emit guarded by `trace_enabled()`, `forbid(unsafe_code)`
//!   in every crate root.
//! * **A-rules** — API hygiene: no resurrected pre-builder cluster API, no
//!   public fields on wire structs.
//!
//! Waivers are inline comments with a mandatory justification:
//! `// simlint: allow(I001): completion invariants keep the parent alive`.
//! A waiver covers its own line and the next line that carries code. The
//! meta-rules W000 (missing justification) and W001 (unused waiver) police
//! the waivers themselves and cannot be waived.

use crate::config::{Config, RulePolicy};
use crate::lexer::{lex, Tok, TokKind};

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule id, e.g. `D001`.
    pub rule: &'static str,
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human message.
    pub message: String,
    /// Waiver justification when the finding is covered by an allow
    /// comment (waived findings never fail the run).
    pub waived: Option<String>,
    /// Demoted to a warning by config (`severity = "warn"`).
    pub warning: bool,
}

/// Static description of a rule, for `--list-rules` and the self-test.
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo { id: "D001", summary: "no wall-clock time sources (std::time::{Instant,SystemTime})" },
    RuleInfo { id: "D002", summary: "no HashMap/HashSet in determinism-scoped code (iteration order feeds traces/scheduling)" },
    RuleInfo { id: "D003", summary: "no ambient randomness (thread_rng/from_entropy/OsRng) — use seeded SimRng" },
    RuleInfo { id: "D004", summary: "no std::thread spawn/scope outside the sanctioned fan-out sites" },
    RuleInfo { id: "I001", summary: "no unwrap()/expect() on protocol paths — surface typed IoError/ProtoError" },
    RuleInfo { id: "I002", summary: "tracer/lifecycle emit sites must be guarded by trace_enabled()/lifecycle_enabled()" },
    RuleInfo { id: "I003", summary: "crate roots must carry #![forbid(unsafe_code)]" },
    RuleInfo { id: "A001", summary: "no HpbdCluster::build/build_on remnants — use ClusterBuilder" },
    RuleInfo { id: "A002", summary: "no pub fields on wire/protocol structs" },
    RuleInfo { id: "A003", summary: "no raw post_send outside ibsim — submit through the typed WrChain builder" },
    RuleInfo { id: "A004", summary: "no raw RequestQueue in vmsim outside the BlockBackend adapter — go through SwapBackend" },
    RuleInfo { id: "D005", summary: "no wall-clock Duration in crates that drive the virtual clock (linked: needs the workspace index)" },
    RuleInfo { id: "A005", summary: "*Config hygiene: derive Clone + Debug, no mutable statics, every knob read somewhere (linked)" },
    RuleInfo { id: "X001", summary: "every wire type with encode/to_wire needs a decode call in some test (linked)" },
    RuleInfo { id: "X002", summary: "completion-lifecycle leaks: swap submissions need a reap loop, WrChains must be posted (linked)" },
    RuleInfo { id: "X003", summary: "registered metrics must be emitted; counter reads must name an emitted metric (linked)" },
    RuleInfo { id: "W000", summary: "waiver without a justification" },
    RuleInfo { id: "W001", summary: "waiver that matched no finding (stale)" },
    RuleInfo { id: "W002", summary: "waiver naming a rule id that does not exist (typo — the allow can never match)" },
];

/// Rule ids that need the pass-1 workspace index (pass 2 skips them when
/// no index was built, e.g. in single-rule unit tests).
pub const LINKED_RULES: &[&str] = &["D005", "A005", "X001", "X002", "X003"];

/// An inline waiver comment.
#[derive(Debug)]
struct Waiver {
    rule: String,
    line: u32,
    /// First line after `line` that carries code (second covered line).
    next_code_line: u32,
    justification: String,
    used: bool,
}

/// Lexed file plus the derived per-token context rules need.
pub struct FileCtx {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    toks: Vec<Tok>,
    /// Indices of non-comment tokens.
    code: Vec<usize>,
    /// Per-token: inside `#[cfg(test)]` / `#[test]` items or a `tests/`
    /// file.
    in_test: Vec<bool>,
    waivers: Vec<Waiver>,
}

impl FileCtx {
    /// Lex and annotate one file.
    pub fn new(rel: &str, src: &str) -> FileCtx {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut ctx = FileCtx {
            rel: rel.replace('\\', "/"),
            in_test: vec![false; toks.len()],
            waivers: Vec::new(),
            toks,
            code,
        };
        ctx.mark_test_regions();
        if ctx.path_is_test_file() {
            ctx.in_test.iter_mut().for_each(|f| *f = true);
        }
        ctx.collect_waivers();
        ctx
    }

    fn path_is_test_file(&self) -> bool {
        self.rel.split('/').any(|seg| seg == "tests")
    }

    /// Number of non-comment tokens (the index the pass-1 walk runs over).
    pub(crate) fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Token (not code-index) accessor.
    pub(crate) fn tok(&self, code_idx: usize) -> &Tok {
        &self.toks[self.code[code_idx]]
    }

    pub(crate) fn ident_at(&self, code_idx: usize, name: &str) -> bool {
        code_idx < self.code.len() && self.tok(code_idx).is_ident(name)
    }

    pub(crate) fn punct_at(&self, code_idx: usize, c: char) -> bool {
        code_idx < self.code.len() && self.tok(code_idx).is_punct(c)
    }

    /// `a :: b` path-segment test: ident `a` at k, `::`, ident `b`.
    pub(crate) fn path2(&self, k: usize, a: &str, b: &str) -> bool {
        self.ident_at(k, a)
            && self.punct_at(k + 1, ':')
            && self.punct_at(k + 2, ':')
            && self.ident_at(k + 3, b)
    }

    pub(crate) fn in_test_at(&self, code_idx: usize) -> bool {
        self.in_test[self.code[code_idx]]
    }

    /// Mark the bodies of `#[cfg(test)]` / `#[test]` items.
    fn mark_test_regions(&mut self) {
        let mut k = 0usize;
        while k < self.code.len() {
            if self.is_test_attr(k) {
                // Skip this and any further attributes.
                let mut j = k;
                while self.punct_at(j, '#') {
                    j = self.skip_attr(j);
                }
                // Find the item body: `{ ... }` before any `;`.
                let mut body = None;
                let mut scan = j;
                while scan < self.code.len() {
                    let t = self.tok(scan);
                    if t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('{') {
                        body = Some(scan);
                        break;
                    }
                    scan += 1;
                }
                if let Some(open) = body {
                    let close = self.matching_brace(open);
                    let (lo, hi) = (self.code[open], self.code[close.min(self.code.len() - 1)]);
                    for flag in &mut self.in_test[lo..=hi] {
                        *flag = true;
                    }
                    k = close + 1;
                    continue;
                }
                k = scan + 1;
                continue;
            }
            k += 1;
        }
    }

    /// Does an attribute starting at code index k (`#`) mean test code?
    fn is_test_attr(&self, k: usize) -> bool {
        if !(self.punct_at(k, '#') && self.punct_at(k + 1, '[')) {
            return false;
        }
        let end = self.skip_attr(k);
        // `#[test]`
        if self.ident_at(k + 2, "test") && self.punct_at(k + 3, ']') {
            return true;
        }
        // `#[cfg(...test...)]`
        if self.ident_at(k + 2, "cfg") {
            for j in k + 3..end {
                if self.ident_at(j, "test") {
                    return true;
                }
            }
        }
        false
    }

    /// Given code index of `#`, return the code index just past the
    /// closing `]`.
    fn skip_attr(&self, k: usize) -> usize {
        let mut j = k + 1;
        if !self.punct_at(j, '[') {
            return k + 1;
        }
        let mut depth = 0i32;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Code index of the `}` matching the `{` at `open`.
    pub(crate) fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.code.len().saturating_sub(1)
    }

    fn collect_waivers(&mut self) {
        let mut found: Vec<(String, u32, String)> = Vec::new();
        for t in &self.toks {
            if !t.is_comment() {
                continue;
            }
            // A waiver must be the whole comment: `// simlint: allow(...)`.
            // (Prose that merely mentions the syntax does not count.)
            let body = t
                .text
                .trim_start_matches('/')
                .trim_start_matches(['*', '!'])
                .trim_start();
            let Some(rest) = body.strip_prefix("simlint:") else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let justification = after
                .strip_prefix(':')
                .map(|j| j.trim().trim_end_matches("*/").trim().to_string())
                .unwrap_or_default();
            found.push((rule, t.line, justification));
        }
        for (rule, line, justification) in found {
            let next_code_line = self
                .code
                .iter()
                .map(|&i| self.toks[i].line)
                .find(|&l| l > line)
                .unwrap_or(line);
            self.waivers.push(Waiver {
                rule,
                line,
                next_code_line,
                justification,
                used: false,
            });
        }
    }

    /// Try to waive a finding; returns the justification if covered.
    fn try_waive(&mut self, rule: &str, line: u32) -> Option<String> {
        for w in &mut self.waivers {
            if w.rule == rule
                && !w.justification.is_empty()
                && (w.line == line || w.next_code_line == line)
            {
                w.used = true;
                return Some(w.justification.clone());
            }
        }
        None
    }
}

/// Is `rel` under any of the given repo-relative prefixes?
fn under_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        let p = p.trim_end_matches('/');
        rel == p || rel.starts_with(&format!("{p}/"))
    })
}

/// Does the rule apply to this file at all, given its policy?
fn rule_applies(rel: &str, policy: &RulePolicy) -> bool {
    if policy.enabled == Some(false) {
        return false;
    }
    if under_any(rel, &policy.allow) {
        return false;
    }
    if !policy.paths.is_empty() && !under_any(rel, &policy.paths) {
        return false;
    }
    true
}

/// A004 built-in scope: vmsim sources, minus the one adapter that is
/// *supposed* to hold the queue. Hardcoded (not config `paths`) so the
/// self-test exercises the real scope and a missing `simlint.toml`
/// section cannot silently widen or disable it.
fn a004_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/vmsim/") && rel != "crates/vmsim/src/backend.rs"
}

/// Crate-root check: `src/lib.rs` at the workspace root or in a crate.
fn is_crate_root(rel: &str) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    matches!(segs.as_slice(), ["src", "lib.rs"])
        || matches!(segs.as_slice(), ["crates", _, "src", "lib.rs"])
}

/// Run every enabled rule over one file. `only` restricts to a single rule
/// id (used by the self-test); pass `None` for all. `index` is the pass-1
/// workspace symbol index: linked rules (D005/A005/X001/X002/X003) run
/// only when it is present.
pub fn check_file(
    ctx: &mut FileCtx,
    config: &Config,
    only: Option<&str>,
    index: Option<&crate::index::WorkspaceIndex>,
) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    let enabled = |id: &str| only.map(|o| o == id).unwrap_or(true);
    let rel = ctx.rel.clone();

    let mut push = |ctx: &mut FileCtx, id: &'static str, line: u32, message: String| {
        let policy = config.rule(id);
        let waived = ctx.try_waive(id, line);
        out.push(Finding {
            rule: id,
            path: rel.clone(),
            line,
            message,
            waived,
            warning: policy.warn,
        });
    };

    // ---- token-pattern rules ------------------------------------------------
    for id in [
        "D001", "D002", "D003", "D004", "I001", "A001", "A003", "A004",
    ] {
        if !enabled(id) || !rule_applies(&ctx.rel, &config.rule(id)) {
            continue;
        }
        let skip_tests = matches!(id, "D002" | "D004" | "I001");
        let n = ctx.code.len();
        for k in 0..n {
            if skip_tests && ctx.in_test_at(k) {
                continue;
            }
            let line = ctx.tok(k).line;
            match id {
                "D001" => {
                    // std::time::{Instant,SystemTime} — direct path or
                    // brace-group import.
                    if ctx.path2(k, "std", "time")
                        && ctx.punct_at(k + 4, ':')
                        && ctx.punct_at(k + 5, ':')
                    {
                        if ctx.ident_at(k + 6, "Instant") || ctx.ident_at(k + 6, "SystemTime") {
                            let name = ctx.tok(k + 6).text.clone();
                            push(ctx, "D001", line, format!("wall-clock time source `std::time::{name}` breaks run determinism (virtual SimTime only)"));
                        } else if ctx.punct_at(k + 6, '{') {
                            let close = ctx.matching_brace(k + 6);
                            for j in k + 7..close {
                                if ctx.ident_at(j, "Instant") || ctx.ident_at(j, "SystemTime") {
                                    let name = ctx.tok(j).text.clone();
                                    let l = ctx.tok(j).line;
                                    push(ctx, "D001", l, format!("wall-clock time source `std::time::{name}` breaks run determinism (virtual SimTime only)"));
                                }
                            }
                        }
                    }
                    // Instant::now() / SystemTime::now() after an import.
                    if (ctx.ident_at(k, "Instant") || ctx.ident_at(k, "SystemTime"))
                        && ctx.punct_at(k + 1, ':')
                        && ctx.punct_at(k + 2, ':')
                        && ctx.ident_at(k + 3, "now")
                        && !(k >= 2 && ctx.punct_at(k - 1, ':') && ctx.punct_at(k - 2, ':'))
                    {
                        let name = ctx.tok(k).text.clone();
                        push(ctx, "D001", line, format!("wall-clock call `{name}::now()` breaks run determinism (use Engine::now)"));
                    }
                }
                "D002" => {
                    if ctx.ident_at(k, "HashMap") || ctx.ident_at(k, "HashSet") {
                        let name = ctx.tok(k).text.clone();
                        push(ctx, "D002", line, format!("`{name}` iteration order is nondeterministic and this crate feeds trace emission/scheduling — use BTreeMap/BTreeSet or a Vec"));
                    }
                }
                "D003" => {
                    for bad in ["thread_rng", "from_entropy", "OsRng"] {
                        if ctx.ident_at(k, bad) {
                            push(ctx, "D003", line, format!("ambient randomness `{bad}` breaks seeded reproducibility — use simcore::SimRng"));
                        }
                    }
                }
                "D004" => {
                    if ctx.ident_at(k, "thread")
                        && ctx.punct_at(k + 1, ':')
                        && ctx.punct_at(k + 2, ':')
                        && (ctx.ident_at(k + 3, "spawn") || ctx.ident_at(k + 3, "scope"))
                    {
                        let what = ctx.tok(k + 3).text.clone();
                        push(ctx, "D004", line, format!("`thread::{what}` outside the sanctioned fan-out sites (bench::runner, simcore::parallel) — simulation code is single-threaded by contract"));
                    }
                }
                "I001" => {
                    if k >= 1
                        && ctx.punct_at(k - 1, '.')
                        && (ctx.ident_at(k, "unwrap") || ctx.ident_at(k, "expect"))
                        && ctx.punct_at(k + 1, '(')
                    {
                        let what = ctx.tok(k).text.clone();
                        push(ctx, "I001", line, format!("`.{what}()` on a protocol path — convert to a typed ProtoError/IoError (or waive with a justification)"));
                    }
                }
                "A001" => {
                    if ctx.ident_at(k, "HpbdCluster")
                        && ctx.punct_at(k + 1, ':')
                        && ctx.punct_at(k + 2, ':')
                        && (ctx.ident_at(k + 3, "build") || ctx.ident_at(k + 3, "build_on"))
                    {
                        let what = ctx.tok(k + 3).text.clone();
                        push(ctx, "A001", line, format!("`HpbdCluster::{what}` is the removed positional API — use ClusterBuilder"));
                    }
                }
                "A003" => {
                    if k >= 1
                        && ctx.punct_at(k - 1, '.')
                        && ctx.ident_at(k, "post_send")
                        && ctx.punct_at(k + 1, '(')
                    {
                        push(ctx, "A003", line, "raw `.post_send(...)` bypasses the typed WrChain builder — build a chain with Qp::chain() so doorbell accounting stays uniform".to_string());
                    }
                }
                "A004" => {
                    if a004_in_scope(&ctx.rel) && ctx.ident_at(k, "RequestQueue") {
                        push(ctx, "A004", line, "raw `RequestQueue` inside vmsim bypasses the SwapBackend boundary — submit pages through a SwapBackend (BlockBackend wraps the queue)".to_string());
                    }
                }
                _ => unreachable!("pattern rule list"),
            }
        }
    }

    // ---- I002: guarded tracer emits ----------------------------------------
    if enabled("I002") && rule_applies(&ctx.rel, &config.rule("I002")) {
        let findings = check_emit_guards(ctx);
        for (line, message) in findings {
            push(ctx, "I002", line, message);
        }
    }

    // ---- I003: forbid(unsafe_code) in crate roots ---------------------------
    if enabled("I003") && rule_applies(&ctx.rel, &config.rule("I003")) && is_crate_root(&ctx.rel) {
        let mut found = false;
        for k in 0..ctx.code.len() {
            if ctx.punct_at(k, '#')
                && ctx.punct_at(k + 1, '!')
                && ctx.punct_at(k + 2, '[')
                && ctx.ident_at(k + 3, "forbid")
                && ctx.punct_at(k + 4, '(')
                && ctx.ident_at(k + 5, "unsafe_code")
            {
                found = true;
                break;
            }
        }
        if !found {
            push(
                ctx,
                "I003",
                1,
                "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }

    // ---- A002: pub fields on wire structs -----------------------------------
    if enabled("A002") && rule_applies(&ctx.rel, &config.rule("A002")) {
        let findings = check_pub_fields(ctx);
        for (line, message) in findings {
            push(ctx, "A002", line, message);
        }
    }

    // ---- linked rules (pass 2, need the workspace index) --------------------
    // These run BEFORE the waiver police so a justified waiver on a
    // linked finding is marked used and does not trip W001.
    if let Some(index) = index {
        if let Some(facts) = index.facts(&ctx.rel) {
            for info in RULES.iter().filter(|r| LINKED_RULES.contains(&r.id)) {
                let id = info.id;
                if !enabled(id) || !rule_applies(&ctx.rel, &config.rule(id)) {
                    continue;
                }
                for (line, message) in crate::linked::check_linked(id, facts, index) {
                    push(ctx, id, line, message);
                }
            }
        }
    }

    // ---- W000 / W001 / W002: waiver police ----------------------------------
    if only.is_none() || matches!(only, Some("W000") | Some("W001") | Some("W002")) {
        let mut meta: Vec<(&'static str, u32, String)> = Vec::new();
        for w in &ctx.waivers {
            let known = RULES.iter().any(|r| r.id == w.rule);
            if !known {
                // A typo'd rule id can never match a finding — W001's
                // "stale" message would misdiagnose it, so W002 owns it.
                if only.is_none() || only == Some("W002") {
                    meta.push((
                        "W002",
                        w.line,
                        format!(
                            "waiver names unknown rule `{}` — no such rule exists, so this allow can never match (typo?)",
                            w.rule
                        ),
                    ));
                }
            } else if w.justification.is_empty() && (only.is_none() || only == Some("W000")) {
                meta.push((
                    "W000",
                    w.line,
                    format!("waiver for {} carries no justification — write `// simlint: allow({}): <why>`", w.rule, w.rule),
                ));
            } else if !w.justification.is_empty() && !w.used && only.is_none() {
                meta.push((
                    "W001",
                    w.line,
                    format!(
                        "waiver for {} matched no finding — remove the stale allow",
                        w.rule
                    ),
                ));
            }
        }
        for (id, line, message) in meta {
            // Waiver meta-findings are themselves unwaivable.
            let policy = config.rule(id);
            out.push(Finding {
                rule: id,
                path: rel.clone(),
                line,
                message,
                waived: None,
                warning: policy.warn,
            });
        }
    }

    // Deduplicate (a token can match two patterns of the same rule).
    out.sort_by(|a, b| (a.rule, a.line, &a.message).cmp(&(b.rule, b.line, &b.message)));
    out.dedup_by(|a, b| {
        a.rule == b.rule && a.line == b.line && a.path == b.path && a.message == b.message
    });
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Scope-tracking walk for I002. Two families of hot-path emits, each with
/// its own guard predicate:
///
/// * `tracer().<emit>(...)` must be lexically inside an `if` whose
///   condition mentions `trace_enabled` (or a local bound from it, e.g.
///   `let on = e.trace_enabled(); if on { .. }`), or after an early-return
///   guard (`if !...trace_enabled() { return; }`) in the same function.
/// * `lifecycle().<emit>(...)` for the per-request emit methods (`begin`,
///   `mark_phys`, `note_fault`, `register_phys`, `unregister_phys`) must
///   likewise sit under `lifecycle_enabled`, or under a span-context
///   presence check (`if let Some(ctx) = ...` / `...ctx.is_some()`) —
///   a context only exists when the hub was enabled at `begin`. Cold
///   query/dump methods (`summary`, `dump_json`, ...) are exempt.
fn check_emit_guards(ctx: &FileCtx) -> Vec<(u32, String)> {
    /// Which enable flags a scope (or variable) proves are on. The two
    /// dimensions are independent: `trace_enabled()` says nothing about
    /// the lifecycle hub and vice versa.
    #[derive(Clone, Copy, Default, PartialEq)]
    struct Guards {
        trace: bool,
        lifecycle: bool,
    }
    impl Guards {
        fn or(self, other: Guards) -> Guards {
            Guards {
                trace: self.trace || other.trace,
                lifecycle: self.lifecycle || other.lifecycle,
            }
        }
        fn any(self) -> bool {
            self.trace || self.lifecycle
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Kind {
        Block,
        If { cond_guards: Guards },
        Fn,
    }
    struct Scope {
        guarded: Guards,
        kind: Kind,
        saw_return: bool,
        /// `let` bindings in this scope whose initialiser mentions
        /// `trace_enabled`/`lifecycle_enabled` (or another guard
        /// variable): naming one in an `if` condition counts as a guard
        /// for the same dimension(s).
        guard_vars: Vec<(String, Guards)>,
    }
    /// Guards carried by variable `name` here, if any. Bindings are
    /// function-local: the walk stops after the innermost `fn` scope.
    fn guard_var(stack: &[Scope], name: &str) -> Guards {
        for scope in stack.iter().rev() {
            if let Some((_, g)) = scope.guard_vars.iter().find(|(v, _)| v == name) {
                return *g;
            }
            if matches!(scope.kind, Kind::Fn) {
                break;
            }
        }
        Guards::default()
    }
    /// Lifecycle hub methods that run per request on the hot path; the
    /// cold query/dump surface is exempt from the guard requirement.
    const LIFECYCLE_EMITS: [&str; 5] = [
        "begin",
        "mark_phys",
        "note_fault",
        "register_phys",
        "unregister_phys",
    ];
    let mut out = Vec::new();
    let mut stack: Vec<Scope> = vec![Scope {
        guarded: Guards::default(),
        kind: Kind::Block,
        saw_return: false,
        guard_vars: Vec::new(),
    }];
    let mut pending: Option<Kind> = None;
    let n = ctx.code.len();
    for k in 0..n {
        let t = ctx.tok(k);
        if t.is_ident("if") {
            // Scan the condition up to the body `{` at paren depth 0.
            let mut guards = Guards::default();
            let mut saw_ctx = false;
            let mut saw_presence = false;
            let mut depth = 0i32;
            let mut j = k + 1;
            while j < n {
                let c = ctx.tok(j);
                if c.is_punct('(') || c.is_punct('[') {
                    depth += 1;
                } else if c.is_punct(')') || c.is_punct(']') {
                    depth -= 1;
                } else if c.is_punct('{') && depth == 0 {
                    break;
                } else if c.is_ident("trace_enabled") {
                    guards.trace = true;
                } else if c.is_ident("lifecycle_enabled") {
                    guards.lifecycle = true;
                } else if c.kind == TokKind::Ident {
                    guards = guards.or(guard_var(&stack, &c.text));
                    if c.text == "ctx" {
                        saw_ctx = true;
                    }
                    if c.text == "Some" || c.text == "is_some" {
                        saw_presence = true;
                    }
                    // `has_ctx()` helpers assert span-context presence by
                    // name: they exist only to wrap the Some-check.
                    if c.text == "has_ctx" {
                        saw_ctx = true;
                        saw_presence = true;
                    }
                }
                j += 1;
            }
            // `if let Some(ctx) = req.lifecycle()` / `if ....ctx.is_some()`:
            // a span context exists only when the hub was enabled, so
            // presence of `ctx` proves the lifecycle dimension.
            if saw_ctx && saw_presence {
                guards.lifecycle = true;
            }
            pending = Some(Kind::If {
                cond_guards: guards,
            });
        } else if t.is_ident("fn") {
            pending = Some(Kind::Fn);
        } else if t.is_ident("let") {
            // `let [mut] name [: ty] = <init>;` — record `name` as a guard
            // variable when the initialiser mentions trace_enabled /
            // lifecycle_enabled (or an existing guard variable). Pattern
            // bindings (`let Some(x)`) are skipped: the next token after
            // the name must be `=`/`:`.
            let mut j = k + 1;
            if j < n && ctx.tok(j).is_ident("mut") {
                j += 1;
            }
            if j < n
                && ctx.tok(j).kind == TokKind::Ident
                && (ctx.punct_at(j + 1, '=') || ctx.punct_at(j + 1, ':'))
            {
                let name = ctx.tok(j).text.clone();
                let mut depth = 0i32;
                let mut m = j + 1;
                let mut from_guard = Guards::default();
                while m < n {
                    let c = ctx.tok(m);
                    if c.is_punct('(') || c.is_punct('[') || c.is_punct('{') {
                        depth += 1;
                    } else if c.is_punct(')') || c.is_punct(']') || c.is_punct('}') {
                        depth -= 1;
                    } else if c.is_punct(';') && depth == 0 {
                        break;
                    } else if c.is_ident("trace_enabled") {
                        from_guard.trace = true;
                    } else if c.is_ident("lifecycle_enabled") {
                        from_guard.lifecycle = true;
                    } else if c.kind == TokKind::Ident {
                        from_guard = from_guard.or(guard_var(&stack, &c.text));
                    }
                    m += 1;
                }
                if from_guard.any() {
                    if let Some(top) = stack.last_mut() {
                        top.guard_vars.push((name, from_guard));
                    }
                }
            }
        } else if t.is_ident("return") {
            if let Some(top) = stack.last_mut() {
                top.saw_return = true;
            }
        } else if t.is_punct('{') {
            let kind = pending.take().unwrap_or(Kind::Block);
            let parent_guarded = stack.last().map(|s| s.guarded).unwrap_or_default();
            let guarded = match kind {
                Kind::Fn => Guards::default(),
                Kind::If { cond_guards } => parent_guarded.or(cond_guards),
                Kind::Block => parent_guarded,
            };
            stack.push(Scope {
                guarded,
                kind,
                saw_return: false,
                guard_vars: Vec::new(),
            });
        } else if t.is_punct('}') {
            if stack.len() > 1 {
                let done = stack.pop().expect("non-empty scope stack");
                if let Kind::If { cond_guards } = done.kind {
                    if cond_guards.any() && done.saw_return {
                        // `if !trace_enabled() { return; }`: the rest of the
                        // enclosing scope runs only when the emit is on.
                        if let Some(top) = stack.last_mut() {
                            top.guarded = top.guarded.or(cond_guards);
                        }
                    }
                }
            }
        } else if (t.is_ident("tracer") || t.is_ident("lifecycle"))
            && ctx.punct_at(k + 1, '(')
            && ctx.punct_at(k + 2, ')')
            && ctx.punct_at(k + 3, '.')
            && k + 4 < n
            && ctx.tok(k + 4).kind == TokKind::Ident
            && ctx.punct_at(k + 5, '(')
            && !(k >= 1 && ctx.punct_at(k - 1, ':'))
            && !(k >= 1 && ctx.tok(k - 1).is_ident("fn"))
        {
            if ctx.in_test_at(k) {
                continue;
            }
            let guarded = stack.last().map(|s| s.guarded).unwrap_or_default();
            let method = &ctx.tok(k + 4).text;
            if t.is_ident("tracer") && !guarded.trace {
                out.push((
                    t.line,
                    format!("tracer().{method}(...) emit is not guarded by trace_enabled() — hot paths must skip argument marshalling when tracing is off"),
                ));
            } else if t.is_ident("lifecycle")
                && LIFECYCLE_EMITS.contains(&method.as_str())
                && !guarded.lifecycle
            {
                out.push((
                    t.line,
                    format!("lifecycle().{method}(...) emit is not guarded by lifecycle_enabled() (or a span-context presence check) — hot paths must skip attribution marshalling when the flight recorder is off"),
                ));
            }
        }
    }
    out
}

/// A002 walk: `pub` fields inside `struct Name { ... }` / `struct Name(...)`
/// bodies.
fn check_pub_fields(ctx: &FileCtx) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let n = ctx.code.len();
    let mut k = 0usize;
    while k < n {
        if ctx.ident_at(k, "struct") && k + 1 < n && ctx.tok(k + 1).kind == TokKind::Ident {
            let name = ctx.tok(k + 1).text.clone();
            // Find the body opener, stopping at `;` (unit struct).
            let mut j = k + 2;
            let mut body: Option<(usize, char)> = None;
            while j < n {
                let t = ctx.tok(j);
                if t.is_punct(';') {
                    break;
                }
                if t.is_punct('{') {
                    body = Some((j, '}'));
                    break;
                }
                if t.is_punct('(') {
                    body = Some((j, ')'));
                    break;
                }
                j += 1;
            }
            if let Some((open, close_ch)) = body {
                let open_ch = if close_ch == '}' { '{' } else { '(' };
                let mut depth = 0i32;
                let mut m = open;
                while m < n {
                    let t = ctx.tok(m);
                    if t.is_punct(open_ch) {
                        depth += 1;
                    } else if t.is_punct(close_ch) {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth == 1 && t.is_ident("pub") {
                        out.push((
                            t.line,
                            format!("wire struct `{name}` exposes a pub field — keep wire layouts sealed behind constructors/accessors so checksummed invariants hold"),
                        ));
                    }
                    m += 1;
                }
                k = m + 1;
                continue;
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str, only: &str) -> Vec<Finding> {
        let mut ctx = FileCtx::new(rel, src);
        check_file(&mut ctx, &Config::builtin(), Some(only), None)
    }

    #[test]
    fn d001_catches_paths_imports_and_now() {
        let f = run("crates/x/src/a.rs", "use std::time::Instant;\n", "D001");
        assert_eq!(f.len(), 1);
        let f = run(
            "crates/x/src/a.rs",
            "use std::time::{Duration, SystemTime};\n",
            "D001",
        );
        assert_eq!(f.len(), 1);
        let f = run("crates/x/src/a.rs", "let t = Instant::now();\n", "D001");
        assert_eq!(f.len(), 1);
        // EventKind::Instant is not a time source.
        let f = run(
            "crates/x/src/a.rs",
            "match k { EventKind::Instant => 1 }\n",
            "D001",
        );
        assert!(f.is_empty());
        // Duration alone is fine.
        let f = run("crates/x/src/a.rs", "use std::time::Duration;\n", "D001");
        assert!(f.is_empty());
    }

    #[test]
    fn i001_skips_test_modules_and_unwrap_or() {
        let src = "fn f() { x.unwrap(); y.unwrap_or(0); }\n#[cfg(test)]\nmod tests { fn g() { z.unwrap(); } }\n";
        let f = run("crates/x/src/a.rs", src, "I001");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn i002_guard_forms() {
        let guarded = "fn f(&self) { if self.engine.trace_enabled() { self.engine.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert!(run("crates/x/src/a.rs", guarded, "I002").is_empty());
        let early = "fn f(&self) { if !engine.trace_enabled() { return; } engine.tracer().span(\"a\", \"b\", 0, 1, &[]); }";
        assert!(run("crates/x/src/a.rs", early, "I002").is_empty());
        let naked = "fn f(&self) { engine.tracer().instant(\"a\", \"b\", 0, &[]); }";
        assert_eq!(run("crates/x/src/a.rs", naked, "I002").len(), 1);
        // The guard does not leak across fn boundaries.
        let leak = "fn f() { if trace_enabled() { } }\nfn g() { engine.tracer().instant(\"a\", \"b\", 0, &[]); }";
        assert_eq!(run("crates/x/src/a.rs", leak, "I002").len(), 1);
    }

    #[test]
    fn i002_guard_variables() {
        // A local bound from trace_enabled() carries the guard.
        let var = "fn f() { let on = engine.trace_enabled(); if on { engine.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert!(run("crates/x/src/a.rs", var, "I002").is_empty());
        // Early-return through the variable guards the rest of the fn.
        let early = "fn f() { let on = e.trace_enabled(); if !on { return; } e.tracer().span(\"a\", \"b\", 0, 1, &[]); }";
        assert!(run("crates/x/src/a.rs", early, "I002").is_empty());
        // Aliasing propagates: a guard var copied into another binding.
        let alias = "fn f() { let on = e.trace_enabled(); let go = on; if go { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert!(run("crates/x/src/a.rs", alias, "I002").is_empty());
        // An unrelated boolean does NOT guard.
        let unrelated = "fn f() { let other = e.ready(); if other { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert_eq!(run("crates/x/src/a.rs", unrelated, "I002").len(), 1);
        // Guard variables are function-local.
        let cross = "fn f() { let on = e.trace_enabled(); }\nfn g(on: bool) { if on { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert_eq!(run("crates/x/src/a.rs", cross, "I002").len(), 1);
        // `let mut` and a type annotation still register the binding.
        let muts = "fn f() { let mut on: bool = e.trace_enabled(); if on { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert!(run("crates/x/src/a.rs", muts, "I002").is_empty());
    }

    #[test]
    fn i002_lifecycle_emits() {
        // The enabled() guard covers direct hub emits.
        let guarded = "fn f() { if e.lifecycle_enabled() { e.lifecycle().mark_phys(1, MarkKind::Posted, 0); } }";
        assert!(run("crates/x/src/a.rs", guarded, "I002").is_empty());
        // A span-context presence check proves the hub was enabled.
        let presence = "fn f() { if let Some(ctx) = &phys.parent.ctx { e.lifecycle().register_phys(1, ctx, 0, 0); } }";
        assert!(run("crates/x/src/a.rs", presence, "I002").is_empty());
        let is_some =
            "fn f() { if phys.parent.ctx.is_some() { e.lifecycle().unregister_phys(1); } }";
        assert!(run("crates/x/src/a.rs", is_some, "I002").is_empty());
        // A has_ctx() presence helper proves the same thing.
        let helper = "fn f() { if phys.has_ctx() { e.lifecycle().unregister_phys(1); } }";
        assert!(run("crates/x/src/a.rs", helper, "I002").is_empty());
        // Naked hot-path emits are findings.
        let naked = "fn f() { e.lifecycle().note_fault(true); }";
        assert_eq!(run("crates/x/src/a.rs", naked, "I002").len(), 1);
        // The two guard dimensions are independent: trace_enabled() does
        // not license a lifecycle emit, nor the other way around.
        let wrong = "fn f() { if e.trace_enabled() { e.lifecycle().begin(d, false, 0, 0); } }";
        assert_eq!(run("crates/x/src/a.rs", wrong, "I002").len(), 1);
        let wrong2 =
            "fn f() { if e.lifecycle_enabled() { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert_eq!(run("crates/x/src/a.rs", wrong2, "I002").len(), 1);
        // Cold query/dump methods need no guard.
        let cold =
            "fn f() { let s = e.lifecycle().dump_json(\"hpbd0\"); e.lifecycle().summary(); }";
        assert!(run("crates/x/src/a.rs", cold, "I002").is_empty());
        // A guard variable bound from lifecycle_enabled() carries only
        // the lifecycle dimension.
        let var =
            "fn f() { let on = e.lifecycle_enabled(); if on { e.lifecycle().note_fault(false); } }";
        assert!(run("crates/x/src/a.rs", var, "I002").is_empty());
        let varwrong = "fn f() { let on = e.lifecycle_enabled(); if on { e.tracer().instant(\"a\", \"b\", 0, &[]); } }";
        assert_eq!(run("crates/x/src/a.rs", varwrong, "I002").len(), 1);
    }

    #[test]
    fn i003_requires_forbid_in_crate_roots() {
        assert_eq!(run("crates/x/src/lib.rs", "//! docs\n", "I003").len(), 1);
        assert!(run("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\n", "I003").is_empty());
        // Non-roots are exempt.
        assert!(run("crates/x/src/other.rs", "//! docs\n", "I003").is_empty());
    }

    #[test]
    fn a002_pub_fields_and_waivers() {
        let src = "pub struct Wire { pub a: u32, b: u64 }\n";
        let f = run("crates/x/src/proto.rs", src, "A002");
        assert_eq!(f.len(), 1);
        let waived = "pub struct Wire {\n    // simlint: allow(A002): stats snapshot, not a wire layout\n    pub a: u32,\n}\n";
        let f = run("crates/x/src/proto.rs", waived, "A002");
        assert_eq!(f.len(), 1);
        assert!(f[0].waived.is_some());
    }

    #[test]
    fn w000_flags_missing_justification() {
        let src = "// simlint: allow(I001)\nfn f() { x.unwrap(); }\n";
        let mut ctx = FileCtx::new("crates/x/src/a.rs", src);
        let f = check_file(&mut ctx, &Config::builtin(), None, None);
        assert!(f.iter().any(|f| f.rule == "W000"));
        // ...and the unjustified waiver does not actually waive.
        assert!(f.iter().any(|f| f.rule == "I001" && f.waived.is_none()));
    }

    #[test]
    fn w001_flags_stale_waivers() {
        let src = "// simlint: allow(I001): nothing here needs it\nfn f() { ok(); }\n";
        let mut ctx = FileCtx::new("crates/x/src/a.rs", src);
        let f = check_file(&mut ctx, &Config::builtin(), None, None);
        assert!(f.iter().any(|f| f.rule == "W001"));
    }

    #[test]
    fn w002_flags_unknown_rule_ids() {
        // The classic typo: I0O1 for I001. Justified or not, it can
        // never match — W002, not W000/W001.
        let src = "// simlint: allow(I0O1): looks plausible\nfn f() { x.unwrap(); }\n";
        let mut ctx = FileCtx::new("crates/x/src/a.rs", src);
        let f = check_file(&mut ctx, &Config::builtin(), None, None);
        assert!(f.iter().any(|f| f.rule == "W002"), "{f:?}");
        assert!(!f.iter().any(|f| f.rule == "W000" || f.rule == "W001"));
    }

    #[test]
    fn linked_rules_run_only_with_an_index() {
        use crate::index::WorkspaceIndex;
        let src = "use std::time::Duration;\nfn f(e: &Engine) { e.schedule_in(1); }\n";
        // Without an index the linked pass is skipped entirely.
        let f = run("crates/x/src/a.rs", src, "D005");
        assert!(f.is_empty());
        // With one, the same file fires (its own crate has clock sites).
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        let index = WorkspaceIndex::build(std::slice::from_ref(&ctx));
        let mut ctx = ctx;
        let f = check_file(&mut ctx, &Config::builtin(), Some("D005"), Some(&index));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn linked_findings_are_waivable_without_tripping_w001() {
        use crate::index::WorkspaceIndex;
        let src = "fn f(e: &Engine) {\n    // simlint: allow(D005): interop with a host API that wants Duration\n    let d = std::time::Duration::from_millis(1);\n}\n";
        let ctx = FileCtx::new("crates/x/src/a.rs", src);
        let index = WorkspaceIndex::build(std::slice::from_ref(&ctx));
        let mut ctx = ctx;
        let f = check_file(&mut ctx, &Config::builtin(), None, Some(&index));
        let d005: Vec<_> = f.iter().filter(|f| f.rule == "D005").collect();
        assert_eq!(d005.len(), 1);
        assert!(d005[0].waived.is_some());
        assert!(!f.iter().any(|f| f.rule == "W001"), "{f:?}");
    }

    #[test]
    fn trailing_same_line_waiver() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(I001): boot-time invariant\n";
        let mut ctx = FileCtx::new("crates/x/src/a.rs", src);
        let f = check_file(&mut ctx, &Config::builtin(), Some("I001"), None);
        assert_eq!(f.len(), 1);
        assert!(f[0].waived.is_some());
    }
}
