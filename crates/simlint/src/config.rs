//! `simlint.toml` — a hand-rolled parser for the small TOML subset the
//! lint policy needs: `[section]` headers, string / bool values, and
//! arrays of strings (single- or multi-line). Anything else is a parse
//! error, loudly — a silently misread policy is worse than none.

use std::collections::BTreeMap;

/// A parsed configuration value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `key = "text"`
    Str(String),
    /// `key = true`
    Bool(bool),
    /// `key = ["a", "b"]`
    List(Vec<String>),
}

/// Per-rule policy knobs.
#[derive(Clone, Debug, Default)]
pub struct RulePolicy {
    /// `enabled = false` turns the rule off entirely.
    pub enabled: Option<bool>,
    /// `severity = "warn"` demotes findings to warnings (non-fatal unless
    /// `--deny-warnings`).
    pub warn: bool,
    /// `allow = [...]` — repo-relative path prefixes exempt from the rule.
    pub allow: Vec<String>,
    /// `paths = [...]` — if non-empty, the rule only applies to files under
    /// these repo-relative path prefixes (replaces the built-in scope).
    pub paths: Vec<String>,
}

/// The whole lint policy.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Directories to walk, relative to the workspace root.
    pub roots: Vec<String>,
    /// Path prefixes skipped entirely.
    pub exclude: Vec<String>,
    /// Per-rule overrides, keyed by rule id (e.g. "D001").
    pub rules: BTreeMap<String, RulePolicy>,
}

impl Config {
    /// The built-in policy used when no `simlint.toml` is present: walk the
    /// standard workspace layout with every rule at its default scope.
    pub fn builtin() -> Config {
        Config {
            roots: vec![
                "crates".to_string(),
                "src".to_string(),
                "tests".to_string(),
                "examples".to_string(),
            ],
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        }
    }

    /// Policy for a rule id (a default if the file has no section for it).
    pub fn rule(&self, id: &str) -> RulePolicy {
        self.rules.get(id).cloned().unwrap_or_default()
    }

    /// Parse the `simlint.toml` text.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::builtin();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((n, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((key, mut value_text)) = line.split_once('=') else {
                return Err(format!("simlint.toml:{}: expected `key = value`", n + 1));
            };
            let key = key.trim().to_string();
            let mut value_buf = value_text.trim().to_string();
            // Multi-line arrays: keep consuming until the bracket closes.
            if value_buf.starts_with('[') {
                while !bracket_closed(&value_buf) {
                    let Some((_, cont)) = lines.next() else {
                        return Err(format!("simlint.toml:{}: unterminated array", n + 1));
                    };
                    value_buf.push(' ');
                    value_buf.push_str(strip_comment(cont).trim());
                }
                value_text = &value_buf;
            } else {
                value_text = &value_buf;
            }
            let value =
                parse_value(value_text).map_err(|e| format!("simlint.toml:{}: {e}", n + 1))?;
            config.apply(&section, &key, value, n + 1)?;
        }
        Ok(config)
    }

    fn apply(&mut self, section: &str, key: &str, value: Value, line: usize) -> Result<(), String> {
        let fail = |what: &str| Err(format!("simlint.toml:{line}: {what}"));
        match section {
            "simlint" => match (key, value) {
                ("roots", Value::List(v)) => self.roots = v,
                ("exclude", Value::List(v)) => self.exclude = v,
                _ => return fail("unknown key in [simlint] (expected roots/exclude lists)"),
            },
            s if s.starts_with("rule.") => {
                let id = s["rule.".len()..].to_string();
                let policy = self.rules.entry(id).or_default();
                match (key, value) {
                    ("enabled", Value::Bool(b)) => policy.enabled = Some(b),
                    ("severity", Value::Str(sev)) => match sev.as_str() {
                        "warn" => policy.warn = true,
                        "deny" => policy.warn = false,
                        _ => return fail("severity must be \"warn\" or \"deny\""),
                    },
                    ("allow", Value::List(v)) => policy.allow = v,
                    ("paths", Value::List(v)) => policy.paths = v,
                    _ => {
                        return fail(
                            "unknown key in [rule.*] (expected enabled/severity/allow/paths)",
                        )
                    }
                }
            }
            "" => return fail("key outside any section"),
            _ => return fail("unknown section (expected [simlint] or [rule.<ID>])"),
        }
        Ok(())
    }
}

/// Strip a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn bracket_closed(buf: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    let mut closed = false;
    for c in buf.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    closed = true;
                }
            }
            _ => {}
        }
    }
    closed
}

fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = text.strip_prefix('"') {
        let Some(s) = s.strip_suffix('"') else {
            return Err("unterminated string".to_string());
        };
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in split_top_level(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("arrays may only contain strings".to_string()),
            }
        }
        return Ok(Value::List(items));
    }
    Err(format!("unparseable value `{text}`"))
}

fn split_top_level(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut buf = String::new();
    let mut in_str = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                buf.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut buf));
            }
            _ => buf.push(c),
        }
    }
    parts.push(buf);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_lists() {
        let cfg = Config::parse(
            r#"
# policy
[simlint]
roots = ["crates", "src"]
exclude = ["crates/bench"]

[rule.D001]
enabled = true
allow = [
    "crates/bench/src/bin/perfbench.rs",  # wall timing
]

[rule.A002]
severity = "warn"
"#,
        )
        .unwrap();
        assert_eq!(cfg.roots, ["crates", "src"]);
        assert_eq!(cfg.exclude, ["crates/bench"]);
        assert_eq!(
            cfg.rule("D001").allow,
            ["crates/bench/src/bin/perfbench.rs"]
        );
        assert!(cfg.rule("A002").warn);
        assert!(!cfg.rule("D001").warn);
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(Config::parse("[simlint]\nbogus = true\n").is_err());
        assert!(Config::parse("[rule.D001]\nseverity = \"maybe\"\n").is_err());
        assert!(Config::parse("loose = 1\n").is_err());
    }
}
