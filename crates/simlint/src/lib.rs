//! simlint — the workspace determinism & invariant analysis pass.
//!
//! A dependency-free static analyzer for the HPBD suite. It lexes every
//! `.rs` file with a small hand-rolled lexer and runs token-pattern rules
//! that protect the properties the differential tests rely on: no wall
//! clocks, no hash-order iteration feeding traces or scheduling, typed
//! errors on protocol paths, guarded trace emits, no `unsafe`, and no
//! resurrected pre-builder APIs. See DESIGN.md §12 for the rule catalog
//! and the waiver format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod selftest;
pub mod walk;

use config::Config;
use report::Report;
use rules::{check_file, FileCtx};
use std::path::Path;

/// Lint every file under the configured roots of `workspace`.
pub fn lint_workspace(workspace: &Path, config: &Config) -> std::io::Result<Report> {
    let files = walk::collect(workspace, &config.roots, &config.exclude);
    let mut findings = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(workspace.join(&rel))?;
        let mut ctx = FileCtx::new(&rel, &src);
        findings.extend(check_file(&mut ctx, config, None));
    }
    Ok(Report::new(findings))
}

/// Lint a single file (repo-relative `rel` controls rule scoping).
pub fn lint_source(rel: &str, src: &str, config: &Config) -> Report {
    let mut ctx = FileCtx::new(rel, src);
    Report::new(check_file(&mut ctx, config, None))
}
