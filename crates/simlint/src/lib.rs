//! simlint — the workspace determinism & invariant analysis pass.
//!
//! A dependency-free static analyzer for the HPBD suite. It lexes every
//! `.rs` file with a small hand-rolled lexer and runs rules in two
//! phases: pass 1 builds a workspace symbol index from the token
//! streams (declarations, call sites, metric names — see `index`),
//! pass 2 runs the rules. File-local token-pattern rules protect the
//! properties the differential tests rely on (no wall clocks, no
//! hash-order iteration feeding traces or scheduling, typed errors on
//! protocol paths, guarded trace emits, no `unsafe`, no resurrected
//! pre-builder APIs); linked rules judge each file with workspace-wide
//! evidence (wall-clock/virtual-clock mixing, config-knob liveness,
//! encode/decode roundtrip coverage, completion-lifecycle leaks, metric
//! registration/emission agreement). See DESIGN.md §12 for the rule
//! catalog and the waiver format.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod index;
pub mod lexer;
mod linked;
pub mod report;
pub mod rules;
pub mod selftest;
pub mod walk;

use config::Config;
use index::WorkspaceIndex;
use report::Report;
use rules::{check_file, FileCtx};
use std::path::Path;

/// Lint every file under the configured roots of `workspace`, returning
/// the report together with the pass-1 symbol index (for `--index-json`).
pub fn analyze_workspace(
    workspace: &Path,
    config: &Config,
) -> std::io::Result<(Report, WorkspaceIndex)> {
    let files = walk::collect(workspace, &config.roots, &config.exclude);
    // Pass 1: lex everything and build the symbol index.
    let mut ctxs = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(workspace.join(&rel))?;
        ctxs.push(FileCtx::new(&rel, &src));
    }
    let index = WorkspaceIndex::build(&ctxs);
    // Pass 2: run every rule per file against the index.
    let mut findings = Vec::new();
    for ctx in &mut ctxs {
        findings.extend(check_file(ctx, config, None, Some(&index)));
    }
    Ok((Report::new(findings), index))
}

/// Lint every file under the configured roots of `workspace`.
pub fn lint_workspace(workspace: &Path, config: &Config) -> std::io::Result<Report> {
    analyze_workspace(workspace, config).map(|(report, _)| report)
}

/// Lint a single file (repo-relative `rel` controls rule scoping). The
/// symbol index covers just this file, so linked rules see a one-file
/// workspace.
pub fn lint_source(rel: &str, src: &str, config: &Config) -> Report {
    let ctx = FileCtx::new(rel, src);
    let index = WorkspaceIndex::build(std::slice::from_ref(&ctx));
    let mut ctx = ctx;
    Report::new(check_file(&mut ctx, config, None, Some(&index)))
}
